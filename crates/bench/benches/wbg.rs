//! E-A3: batch scheduling scalability — Algorithm 2 and Algorithm 3 run
//! in `O(|J| log |J|)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvfs_core::{schedule_homogeneous, schedule_single_core, schedule_wbg};
use dvfs_model::task::batch_workload;
use dvfs_model::{CostParams, Platform, RateTable};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn workload(n: usize) -> Vec<dvfs_model::Task> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let cycles: Vec<u64> = (0..n).map(|_| rng.gen_range(1..20_000_000_000)).collect();
    batch_workload(&cycles)
}

fn bench_batch(c: &mut Criterion) {
    let params = CostParams::batch_paper();
    let table = RateTable::i7_950_table2();

    let mut group = c.benchmark_group("algorithm2_single_core");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let tasks = workload(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &tasks, |b, tasks| {
            b.iter(|| schedule_single_core(black_box(tasks), &table, params));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("algorithm3_wbg_quad");
    group.sample_size(10);
    let platform = Platform::i7_950_quad();
    for n in [1_000usize, 10_000, 100_000] {
        let tasks = workload(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &tasks, |b, tasks| {
            b.iter(|| schedule_wbg(black_box(tasks), &platform, params));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("theorem4_round_robin_vs_heap");
    group.sample_size(10);
    let tasks = workload(100_000);
    group.bench_function("round_robin", |b| {
        b.iter(|| schedule_homogeneous(black_box(&tasks), &table, 4, params));
    });
    group.bench_function("heap_wbg", |b| {
        b.iter(|| schedule_wbg(black_box(&tasks), &platform, params));
    });
    group.finish();

    // Heterogeneous platform.
    let hetero = Platform::big_little(2, 2);
    let tasks = workload(100_000);
    c.bench_function("wbg_big_little_100k", |b| {
        b.iter(|| schedule_wbg(black_box(&tasks), &hetero, params));
    });
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
