//! E-A2: Algorithm 1 runs in Θ(|P|).
//!
//! Sweeps the rate-table size and measures the dominating-position-range
//! computation; the reported time should grow linearly in |P|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvfs_core::DominatingRanges;
use dvfs_model::{CostParams, RateTable};
use std::hint::black_box;

fn bench_dominating(c: &mut Criterion) {
    let params = CostParams::batch_paper();
    let mut group = c.benchmark_group("algorithm1_dominating_ranges");
    for levels in [4usize, 16, 64, 256, 1024, 4096] {
        let table = RateTable::synthetic_quadratic(levels, 0.2, 4.2);
        group.throughput(Throughput::Elements(levels as u64));
        group.bench_with_input(BenchmarkId::from_parameter(levels), &table, |b, t| {
            b.iter(|| DominatingRanges::compute(black_box(t), black_box(params)));
        });
    }
    group.finish();

    // Position lookups are O(log |P̂|).
    let table = RateTable::synthetic_quadratic(1024, 0.2, 4.2);
    let dr = DominatingRanges::compute(&table, params);
    c.bench_function("rate_for_position_lookup", |b| {
        let mut k = 1u64;
        b.iter(|| {
            k = k % 1_000_000 + 1;
            black_box(dr.rate_for(black_box(k)))
        });
    });
}

criterion_group!(benches, bench_dominating);
criterion_main!(benches);
