//! E-A4: per-event overhead of the online policies — full trace replays
//! of LMC, OLB, and On-demand, reported per task, plus the policy's
//! bare decision latency through the `dvfs_core::sched` trait object
//! with the executor stripped out entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvfs_baselines::{OlbOnline, OnDemandOnline};
use dvfs_core::sched::{ExecutorView, Scheduler};
use dvfs_core::LeastMarginalCost;
use dvfs_model::{CoreId, CostParams, Platform, RateIdx, RateTable, TaskId};
use dvfs_sim::{GovernorKind, SimConfig, Simulator};
use dvfs_workloads::JudgeTraceConfig;

/// The cheapest possible [`ExecutorView`]: no clock, no events, no
/// accounting — just enough occupancy state to keep a policy's
/// invariants honest. Benchmarking a policy against it isolates the
/// *decision* latency (Equation 27 scans, ledger insertions) from any
/// engine overhead; it is also the minimal worked example of writing a
/// new executor against the `dvfs_core::sched` interface.
struct NullExecutor {
    table: RateTable,
    running: Vec<Option<TaskId>>,
    rates: Vec<RateIdx>,
    max_rate: RateIdx,
}

impl NullExecutor {
    fn new(platform: &Platform) -> Self {
        let table = platform.cores()[0].rates.clone();
        let max_rate = table.max_rate();
        NullExecutor {
            table,
            running: vec![None; platform.cores().len()],
            rates: vec![0; platform.cores().len()],
            max_rate,
        }
    }
}

impl ExecutorView for NullExecutor {
    fn now(&self) -> f64 {
        0.0
    }
    fn num_cores(&self) -> usize {
        self.running.len()
    }
    fn rate_table(&self, _j: CoreId) -> &RateTable {
        &self.table
    }
    fn max_allowed_rate(&self, _j: CoreId) -> RateIdx {
        self.max_rate
    }
    fn current_rate(&self, j: CoreId) -> RateIdx {
        self.rates[j]
    }
    fn running_task(&self, j: CoreId) -> Option<TaskId> {
        self.running[j]
    }
    fn remaining_cycles(&self, _t: TaskId) -> f64 {
        0.0
    }
    fn set_rate(&mut self, j: CoreId, rate: RateIdx) {
        assert!(rate <= self.max_rate, "rate above cap");
        self.rates[j] = rate;
    }
    fn dispatch(&mut self, j: CoreId, task: TaskId, rate: Option<RateIdx>) {
        assert!(self.running[j].is_none(), "dispatch to busy core");
        if let Some(r) = rate {
            self.set_rate(j, r);
        }
        self.running[j] = Some(task);
    }
    fn preempt(&mut self, j: CoreId) -> TaskId {
        self.running[j].take().expect("preempt of idle core")
    }
}

/// Per-arrival decision latency of LMC through `&mut dyn ExecutorView`:
/// every task in the trace is fed to `on_arrival` against the null
/// executor, so the measurement is the policy alone — core selection,
/// marginal-cost evaluation, ledger maintenance — with dynamic dispatch
/// included, exactly as both real executors invoke it.
fn bench_decision_latency(c: &mut Criterion) {
    let platform = Platform::i7_950_quad();
    let params = CostParams::online_paper();
    let mut group = c.benchmark_group("lmc_decision_latency");
    group.sample_size(10);
    for scale in [32usize, 8] {
        let mut cfg = JudgeTraceConfig::paper_heavy(1);
        cfg.non_interactive = (cfg.non_interactive / scale).max(1);
        cfg.interactive = (cfg.interactive / scale).max(1);
        let trace = cfg.generate();
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("per_arrival", trace.len()),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut policy = LeastMarginalCost::new(&platform, params);
                    let mut exec = NullExecutor::new(&platform);
                    let view: &mut dyn ExecutorView = &mut exec;
                    for task in trace {
                        policy.on_arrival(view, task);
                    }
                    exec.running.iter().filter(|r| r.is_some()).count()
                });
            },
        );
    }
    group.finish();
}

fn bench_online(c: &mut Criterion) {
    let platform = Platform::i7_950_quad();
    let params = CostParams::online_paper();
    let mut group = c.benchmark_group("online_trace_replay");
    group.sample_size(10);
    for scale in [32usize, 8] {
        let mut cfg = JudgeTraceConfig::paper_heavy(1);
        cfg.non_interactive = (cfg.non_interactive / scale).max(1);
        cfg.interactive = (cfg.interactive / scale).max(1);
        let trace = cfg.generate();
        group.throughput(Throughput::Elements(trace.len() as u64));

        group.bench_with_input(BenchmarkId::new("lmc", trace.len()), &trace, |b, trace| {
            b.iter(|| {
                let mut policy = LeastMarginalCost::new(&platform, params);
                let mut sim = Simulator::new(SimConfig::new(platform.clone()));
                sim.add_tasks(trace);
                sim.run(&mut policy).completed()
            });
        });
        group.bench_with_input(BenchmarkId::new("olb", trace.len()), &trace, |b, trace| {
            b.iter(|| {
                let mut policy = OlbOnline::new(4);
                let mut sim = Simulator::new(SimConfig::new(platform.clone()));
                sim.add_tasks(trace);
                sim.run(&mut policy).completed()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("ondemand", trace.len()),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut policy = OnDemandOnline::new(4);
                    let mut sim = Simulator::new(
                        SimConfig::new(platform.clone())
                            .with_governor(GovernorKind::ondemand_paper()),
                    );
                    sim.add_tasks(trace);
                    sim.run(&mut policy).completed()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_online, bench_decision_latency);
criterion_main!(benches);
