//! E-A4: per-event overhead of the online policies — full trace replays
//! of LMC, OLB, and On-demand, reported per task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvfs_baselines::{OlbOnline, OnDemandOnline};
use dvfs_core::LeastMarginalCost;
use dvfs_model::{CostParams, Platform};
use dvfs_sim::{GovernorKind, SimConfig, Simulator};
use dvfs_workloads::JudgeTraceConfig;

fn bench_online(c: &mut Criterion) {
    let platform = Platform::i7_950_quad();
    let params = CostParams::online_paper();
    let mut group = c.benchmark_group("online_trace_replay");
    group.sample_size(10);
    for scale in [32usize, 8] {
        let mut cfg = JudgeTraceConfig::paper_heavy(1);
        cfg.non_interactive = (cfg.non_interactive / scale).max(1);
        cfg.interactive = (cfg.interactive / scale).max(1);
        let trace = cfg.generate();
        group.throughput(Throughput::Elements(trace.len() as u64));

        group.bench_with_input(BenchmarkId::new("lmc", trace.len()), &trace, |b, trace| {
            b.iter(|| {
                let mut policy = LeastMarginalCost::new(&platform, params);
                let mut sim = Simulator::new(SimConfig::new(platform.clone()));
                sim.add_tasks(trace);
                sim.run(&mut policy).completed()
            });
        });
        group.bench_with_input(BenchmarkId::new("olb", trace.len()), &trace, |b, trace| {
            b.iter(|| {
                let mut policy = OlbOnline::new(4);
                let mut sim = Simulator::new(SimConfig::new(platform.clone()));
                sim.add_tasks(trace);
                sim.run(&mut policy).completed()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("ondemand", trace.len()),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut policy = OnDemandOnline::new(4);
                    let mut sim = Simulator::new(
                        SimConfig::new(platform.clone())
                            .with_governor(GovernorKind::ondemand_paper()),
                    );
                    sim.add_tasks(trace);
                    sim.run(&mut policy).completed()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
