//! E-A1: the Section IV-A complexity claims.
//!
//! * insertion/deletion in `O(|P̂| + log N)` — measured against queue
//!   length N;
//! * Θ(1) total-cost retrieval — the maintained value against the
//!   `O(|P̂| log N)` query-based recomputation and the `O(N)` naive walk
//!   (the ablation of the paper's data-structure contribution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvfs_core::CostLedger;
use dvfs_model::{CostParams, RateTable};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn filled_ledger(n: usize) -> CostLedger {
    let mut l = CostLedger::new(&RateTable::i7_950_table2(), CostParams::batch_paper());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for _ in 0..n {
        l.insert(rng.gen_range(1..10_000_000_000));
    }
    l
}

fn bench_insert_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger_insert_delete");
    group.sample_size(20);
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut l = filled_ledger(n);
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            b.iter(|| {
                let h = l.insert(black_box(rng.gen_range(1..10_000_000_000)));
                black_box(l.total_cost());
                l.remove(h);
            });
        });
    }
    group.finish();
}

fn bench_cost_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("total_cost_retrieval");
    for n in [1_000usize, 10_000, 100_000] {
        let l = filled_ledger(n);
        group.bench_with_input(BenchmarkId::new("maintained_O1", n), &l, |b, l| {
            b.iter(|| black_box(l.total_cost()));
        });
        group.bench_with_input(BenchmarkId::new("queries_OlogN", n), &l, |b, l| {
            b.iter(|| black_box(l.recompute_via_queries()));
        });
        group.bench_with_input(BenchmarkId::new("naive_ON", n), &l, |b, l| {
            b.iter(|| black_box(l.naive_cost()));
        });
    }
    group.finish();
}

fn bench_marginal_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("lmc_marginal_cost_probe");
    for n in [100usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut l = filled_ledger(n);
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            b.iter(|| black_box(l.marginal_insert_cost(rng.gen_range(1..10_000_000_000))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_delete,
    bench_cost_paths,
    bench_marginal_cost
);
criterion_main!(benches);
