//! E-A5: raw simulator event throughput — batch plan replays across core
//! counts, and the cost of the contention model's full-resync path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvfs_core::schedule_wbg;
use dvfs_core::PlanPolicy;
use dvfs_model::task::batch_workload;
use dvfs_model::{CoreSpec, CostParams, Platform, RateTable};
use dvfs_power::memory_contention;
use dvfs_sim::{SimConfig, Simulator};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn tasks(n: usize) -> Vec<dvfs_model::Task> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    batch_workload(
        &(0..n)
            .map(|_| rng.gen_range(1_000_000..1_000_000_000))
            .collect::<Vec<_>>(),
    )
}

fn bench_sim(c: &mut Criterion) {
    let params = CostParams::batch_paper();
    let mut group = c.benchmark_group("sim_batch_replay");
    group.sample_size(20);
    for ncores in [1usize, 4, 16, 64] {
        let platform =
            Platform::homogeneous(ncores, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        let work = tasks(20_000);
        let plan = schedule_wbg(&work, &platform, params);
        group.throughput(Throughput::Elements(work.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(ncores),
            &(platform, work, plan),
            |b, (platform, work, plan)| {
                b.iter(|| {
                    let mut sim = Simulator::new(SimConfig::new(platform.clone()));
                    sim.add_tasks(work);
                    sim.run(&mut PlanPolicy::new(plan.clone())).completed()
                });
            },
        );
    }
    group.finish();

    // Contention forces an all-core resync per event: measure the tax.
    let platform = Platform::i7_950_quad();
    let work = tasks(20_000);
    let plan = schedule_wbg(&work, &platform, params);
    let mut group = c.benchmark_group("sim_contention_tax");
    group.sample_size(20);
    group.bench_function("ideal", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SimConfig::new(platform.clone()));
            sim.add_tasks(&work);
            sim.run(&mut PlanPolicy::new(plan.clone())).completed()
        });
    });
    group.bench_function("contended", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                SimConfig::new(platform.clone()).with_contention(memory_contention(0.03)),
            );
            sim.add_tasks(&work);
            sim.run(&mut PlanPolicy::new(plan.clone())).completed()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
