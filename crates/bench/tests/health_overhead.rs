//! Health-plane overhead smoke test (CI runs it with `-- --ignored`):
//! the same replay workload drained through the worker-backed service
//! with per-request stage telemetry off and on.
//!
//! The stage clock adds a handful of `Instant` reads and histogram
//! records per task on the submit and completion paths; the heartbeat
//! slots add a few relaxed atomic stores per worker command. Neither is
//! allowed to cost real throughput: the telemetry-on drain must stay
//! within 5% of the telemetry-off drain (best of several reps, so a
//! scheduler hiccup in one rep does not trip CI), and within a loose
//! factor of the committed ratio in `BENCH_health_overhead.json` — a
//! tripwire for accidentally moving work onto the hot path, not a
//! benchmark.
//!
//! Results land in `BENCH_health_overhead.json` at the repository root,
//! alongside the other `BENCH_*.json` files.

use dvfs_model::TaskClass;
use dvfs_serve::{Registry, Scheduler, SchedulerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

// Long enough that one drain takes a few hundred milliseconds: at this
// length a millisecond-scale scheduler hiccup moves the ratio well
// under 1%, where a 4k-task drain (~25 ms) saw ±10% swings from the
// same hiccup.
const TASKS: u64 = 40_000;
const SHARDS: usize = 1;
const REPS: usize = 7;

fn bench_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_health_overhead.json")
}

/// Same string-scanning baseline reader as the other bench smokes (the
/// file is written by this test, so the shape is known).
fn baseline_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Submit and drain the pinned workload once; returns tasks per second.
fn drain_throughput(telemetry: bool) -> f64 {
    let scheduler = Scheduler::new(
        SchedulerConfig {
            cores: 2,
            shards: SHARDS,
            queue_capacity: TASKS as usize * 2,
            telemetry,
            ..SchedulerConfig::default()
        },
        Arc::new(Registry::new()),
    );
    let t0 = Instant::now();
    for i in 0..TASKS {
        let cycles = 1_000_000 + (i % 17) * 250_000;
        let r = scheduler.submit(None, cycles, TaskClass::NonInteractive, Some(0.0));
        assert!(r.is_ok(), "submit shed: {r:?}");
    }
    let served = scheduler.drain_run();
    let elapsed = t0.elapsed().as_secs_f64();
    assert!(served.is_ok(), "drain failed: {served:?}");
    TASKS as f64 / elapsed.max(1e-9)
}

#[test]
#[ignore = "CI smoke: run with `cargo test -p dvfs-bench --test health_overhead -- --ignored`"]
fn stage_telemetry_stays_within_five_percent_of_off() {
    // Each rep runs the two configurations back-to-back so they see
    // correlated machine conditions, and the gate takes the best
    // per-rep ratio: a noisy-neighbor hiccup that lands on one rep's
    // telemetry-on drain (but not its off drain) costs that rep, not
    // the verdict. Taking each side's best across all reps instead was
    // measurably flakier — one lucky off rep pairs against an on side
    // that never got a quiet window.
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let mut ratio = 0.0f64;
    for _ in 0..REPS {
        let off = drain_throughput(false);
        let on = drain_throughput(true);
        best_off = best_off.max(off);
        best_on = best_on.max(on);
        ratio = ratio.max(on / off);
    }
    println!(
        "health overhead: off {best_off:.0} tasks/s, on {best_on:.0} tasks/s, \
         best pairwise ratio {ratio:.4}"
    );

    // The acceptance gate: telemetry-on throughput within 5% of off.
    assert!(
        ratio >= 0.95,
        "stage telemetry costs more than 5% drain throughput: \
         on {best_on:.0} vs off {best_off:.0} tasks/s (ratio {ratio:.4})"
    );

    // And the committed baseline must not quietly erode: this run's
    // ratio may not fall more than 4% (twice the observed best-of-reps
    // noise band) below the committed ratio. Capped at 0.96 so a lucky
    // committed run can never ratchet the tripwire into the noise band
    // above the real gate.
    let path = bench_json_path();
    if let Ok(prev) = std::fs::read_to_string(&path) {
        if let Some(base) = baseline_field(&prev, "throughput_ratio") {
            let bound = (base - 0.04).min(0.96);
            assert!(
                ratio >= bound,
                "overhead ratio regressed: {ratio:.4} vs committed {base:.4} (bound {bound:.4})"
            );
        }
    }

    let json = format!(
        "{{\"tasks\":{TASKS},\"shards\":{SHARDS},\"reps\":{REPS},\"throughput_off_tps\":{best_off},\"throughput_on_tps\":{best_on},\"throughput_ratio\":{ratio}}}\n"
    );
    std::fs::write(&path, json).expect("bench json writes");
}
