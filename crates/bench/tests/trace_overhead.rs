//! Trace-overhead smoke test (CI runs it with `-- --ignored`): replay
//! the LMC arrival path against the null executor twice — tracing
//! disabled vs. a live ring sink — and bound the slowdown. The point is
//! not a tight benchmark (that is `benches/online.rs`); it is a
//! regression tripwire that recording provenance into the ring stays
//! within the same order of magnitude as not tracing at all, i.e. the
//! record path never grows an allocation or a syscall.

use dvfs_core::sched::{ExecutorView, Scheduler};
use dvfs_core::LeastMarginalCost;
use dvfs_model::{CoreId, CostParams, Platform, RateIdx, RateTable, TaskId};
use dvfs_trace::{SharedRing, TraceSink};
use dvfs_workloads::JudgeTraceConfig;

/// The same minimal executor as `benches/online.rs`: occupancy state
/// only, so the measurement isolates the policy plus (here) the sink.
struct NullExecutor {
    table: RateTable,
    running: Vec<Option<TaskId>>,
    rates: Vec<RateIdx>,
    max_rate: RateIdx,
    sink: Option<SharedRing>,
}

impl NullExecutor {
    fn new(platform: &Platform, sink: Option<SharedRing>) -> Self {
        let table = platform.cores()[0].rates.clone();
        let max_rate = table.max_rate();
        NullExecutor {
            table,
            running: vec![None; platform.cores().len()],
            rates: vec![0; platform.cores().len()],
            max_rate,
            sink,
        }
    }
}

impl ExecutorView for NullExecutor {
    fn now(&self) -> f64 {
        0.0
    }
    fn num_cores(&self) -> usize {
        self.running.len()
    }
    fn rate_table(&self, _j: CoreId) -> &RateTable {
        &self.table
    }
    fn max_allowed_rate(&self, _j: CoreId) -> RateIdx {
        self.max_rate
    }
    fn current_rate(&self, j: CoreId) -> RateIdx {
        self.rates[j]
    }
    fn running_task(&self, j: CoreId) -> Option<TaskId> {
        self.running[j]
    }
    fn remaining_cycles(&self, _t: TaskId) -> f64 {
        0.0
    }
    fn set_rate(&mut self, j: CoreId, rate: RateIdx) {
        assert!(rate <= self.max_rate, "rate above cap");
        self.rates[j] = rate;
    }
    fn dispatch(&mut self, j: CoreId, task: TaskId, rate: Option<RateIdx>) {
        assert!(self.running[j].is_none(), "dispatch to busy core");
        if let Some(r) = rate {
            self.set_rate(j, r);
        }
        self.running[j] = Some(task);
    }
    fn preempt(&mut self, j: CoreId) -> TaskId {
        self.running[j].take().expect("preempt of idle core")
    }
    fn trace(&mut self) -> Option<&mut dyn TraceSink> {
        self.sink.as_mut().map(|s| s as &mut dyn TraceSink)
    }
}

/// Feed every task to `on_arrival` and return elapsed seconds.
fn replay(platform: &Platform, params: CostParams, sink: Option<SharedRing>) -> f64 {
    let mut cfg = JudgeTraceConfig::paper_heavy(1);
    cfg.non_interactive = (cfg.non_interactive / 8).max(1);
    cfg.interactive = (cfg.interactive / 8).max(1);
    let trace = cfg.generate();
    let mut policy = LeastMarginalCost::new(platform, params);
    let mut exec = NullExecutor::new(platform, sink);
    let started = std::time::Instant::now();
    let view: &mut dyn ExecutorView = &mut exec;
    for task in &trace {
        policy.on_arrival(view, task);
    }
    let dt = started.elapsed().as_secs_f64();
    assert!(
        exec.running.iter().any(|r| r.is_some()),
        "policy dispatched nothing"
    );
    dt
}

#[test]
#[ignore = "timing smoke test; CI invokes it explicitly with --ignored"]
fn ring_sink_overhead_stays_within_an_order_of_magnitude() {
    let platform = Platform::i7_950_quad();
    let params = CostParams::online_paper();

    // Warm-up, then best-of-three each way to shrug off scheduler noise.
    replay(&platform, params, None);
    let base = (0..3)
        .map(|_| replay(&platform, params, None))
        .fold(f64::INFINITY, f64::min);
    let ring = SharedRing::new(0, 1 << 16);
    let traced = (0..3)
        .map(|_| replay(&platform, params, Some(ring.clone())))
        .fold(f64::INFINITY, f64::min);

    let events = ring.drain();
    assert!(
        !events.is_empty(),
        "the traced replay must have recorded provenance events"
    );

    // Generous bound: the ring push is a mutex lock + an enum copy, so
    // even on a noisy CI box an order of magnitude covers it; a missed
    // bound here means the record path started allocating or formatting.
    let budget = base * 10.0 + 0.05;
    assert!(
        traced <= budget,
        "tracing overhead too high: base {base:.6}s, traced {traced:.6}s ({} events)",
        events.len()
    );
}
