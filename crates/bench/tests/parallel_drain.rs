//! Parallelism smoke test (CI runs it with `-- --ignored`): shard
//! workers must actually run concurrently, not just own their engines.
//!
//! The same task set is drained through the worker-backed service at 1
//! shard and at 4 shards; with explicit ids `0..N` routing `id % n`,
//! the 4-shard run splits the work into four engines drained by four
//! worker threads behind the round barrier. On a host with at least 4
//! cores the 4-shard drain must finish at least 2× faster than the
//! 1-shard drain — the acceptance gate that the message-passing
//! refactor bought true parallelism. On smaller hosts (CI containers
//! are often 1–2 cores) the gate is informational: the run still
//! exercises the fan-out and records its numbers, but threads that
//! time-share one core cannot show wall-clock speedup.
//!
//! Results land in `BENCH_parallel.json` at the repository root
//! (committed alongside `BENCH_net_10k.json`), recording the host core
//! count so the baseline stays honest about what it could measure.

use dvfs_model::TaskClass;
use dvfs_serve::{Registry, Scheduler, SchedulerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const TASKS: u64 = 6_000;

fn bench_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json")
}

/// Submit the pinned task set and time the drain at `shards`.
fn drain_seconds(shards: usize) -> f64 {
    let scheduler = Scheduler::new(
        SchedulerConfig {
            cores: 2,
            shards,
            // Headroom over the admission gate's interactive-only
            // reserve band, so nothing in the pinned set sheds.
            queue_capacity: TASKS as usize * 2,
            ..SchedulerConfig::default()
        },
        Arc::new(Registry::new()),
    );
    for id in 0..TASKS {
        let class = if id % 3 == 0 {
            TaskClass::Interactive
        } else {
            TaskClass::NonInteractive
        };
        let cycles = 1_000_000 + (id % 97) * 50_000;
        let r = scheduler.submit(Some(id), cycles, class, Some(0.0));
        assert!(r.is_ok(), "submit shed: {r:?}");
    }
    let started = Instant::now();
    let report = scheduler.drain_round();
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(
        report.records.len() as u64,
        TASKS,
        "drain completed the whole set at {shards} shard(s)"
    );
    elapsed
}

#[test]
#[ignore = "CI smoke: run with `cargo test -p dvfs-bench --test parallel_drain -- --ignored`"]
fn four_shards_drain_at_least_twice_as_fast_on_a_four_core_host() {
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    // Interleave the measurements to average out machine noise.
    let (mut t1, mut t4) = (0.0f64, 0.0f64);
    const REPS: usize = 3;
    for _ in 0..REPS {
        t1 += drain_seconds(1);
        t4 += drain_seconds(4);
    }
    t1 /= REPS as f64;
    t4 /= REPS as f64;
    let speedup = t1 / t4.max(1e-9);

    let gated = host_cores >= 4;
    if gated {
        assert!(
            speedup >= 2.0,
            "4-shard drain speedup {speedup:.2}x < 2x on a {host_cores}-core host \
             (1 shard {t1:.3}s, 4 shards {t4:.3}s): workers are not running concurrently"
        );
    }

    let json = format!(
        "{{\"host_cores\":{host_cores},\"tasks\":{TASKS},\"reps\":{REPS},\"shards1_drain_s\":{t1},\"shards4_drain_s\":{t4},\"speedup\":{speedup},\"gate_enforced\":{gated}}}\n"
    );
    std::fs::write(bench_json_path(), json).expect("bench json writes");
    println!(
        "parallel_drain: {host_cores} host core(s), 1 shard {:.1} ms, 4 shards {:.1} ms, speedup {speedup:.2}x (gate {})",
        t1 * 1e3,
        t4 * 1e3,
        if gated { "enforced" } else { "informational" }
    );
}
