//! Cross-shard rebalancer smoke test (CI runs it with `-- --ignored`):
//! a deliberately skewed workload — every explicit id `≡ 0 mod 4`, so
//! the hash router pins the whole set to shard 0 of 4 — replayed twice
//! through the worker-backed service, with the rebalancer off and on.
//!
//! With the rebalancer off, shard 0's two cores grind through the
//! entire set while six idle cores watch. With it on, each tick's
//! rebalance pass steals queued tasks from the hot shard's ledger and
//! re-enqueues them on the coldest shard, so the drain finishes on
//! eight cores. Two gates, both deterministic (replay mode never reads
//! the wall clock):
//!
//! * tasks migrated (`migrations` counter > 0, reported as
//!   `migration_rate` per admitted task), and
//! * the merged Eq. 27 cost (`Re·E + Rt·T`) of the rebalanced run is
//!   strictly below the skewed run's — and within a loose factor of
//!   the committed improvement in `BENCH_rebalance.json`, so a
//!   regression that quietly stops migrating (or migrates to no
//!   benefit) trips CI.
//!
//! Results land in `BENCH_rebalance.json` at the repository root,
//! alongside `BENCH_parallel.json` and `BENCH_net_10k.json`.

use dvfs_model::TaskClass;
use dvfs_serve::protocol::{value_f64, value_u64};
use dvfs_serve::{RebalanceConfig, Registry, Scheduler, SchedulerConfig};
use std::path::PathBuf;
use std::sync::Arc;

const SHARDS: u64 = 4;
const TASKS: u64 = 120;
/// Rebalance passes before the drain. Each pass moves at most
/// `max_batch` tasks, so this bounds how far the skew can spread; the
/// gap guard stops the passes early once the shards even out.
const TICKS: usize = 30;

fn bench_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_rebalance.json")
}

/// Same string-scanning baseline reader as `net_10k` (the file is
/// written by this test, so the shape is known).
fn baseline_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Replay the pinned skewed set and return (total cost, migrations,
/// migration rate per admitted task).
fn skewed_run(rebalance: RebalanceConfig) -> (f64, u64, f64) {
    let scheduler = Scheduler::new(
        SchedulerConfig {
            cores: 2,
            shards: SHARDS as usize,
            // Split per shard with a class headroom reserve, so size it
            // for the whole set landing on shard 0.
            queue_capacity: TASKS as usize * SHARDS as usize * 2,
            rebalance,
            ..SchedulerConfig::default()
        },
        Arc::new(Registry::new()),
    );
    for i in 0..TASKS {
        // All ids ≡ 0 mod SHARDS: the whole set hashes to shard 0.
        let cycles = 50_000_000 + (i % 13) * 7_000_000;
        let r = scheduler.submit(
            Some(i * SHARDS),
            cycles,
            TaskClass::NonInteractive,
            Some(0.0),
        );
        assert!(r.is_ok(), "submit shed: {r:?}");
    }
    // Replay ticks advance no engine time (the replay target is 0), so
    // each one is a pure pull + rebalance pass.
    for _ in 0..TICKS {
        scheduler.tick();
    }
    let migrations = scheduler.metrics().counter("migrations").get();
    let admitted = scheduler.metrics().counter("admitted").get();
    let served = scheduler.drain_run();
    assert!(served.is_ok(), "drain failed: {served:?}");
    assert_eq!(
        value_u64(served.field("completed").unwrap()),
        Some(TASKS),
        "every skewed task completes exactly once, wherever it ran"
    );
    let cost = value_f64(served.field("total_cost").unwrap()).expect("drain reports total_cost");
    (cost, migrations, migrations as f64 / admitted.max(1) as f64)
}

#[test]
#[ignore = "CI smoke: run with `cargo test -p dvfs-bench --test rebalance -- --ignored`"]
fn rebalancer_beats_the_skewed_baseline_on_merged_cost() {
    let (cost_off, off_migrations, _) = skewed_run(RebalanceConfig::default());
    assert_eq!(off_migrations, 0, "disabled rebalancer must not migrate");
    let (cost_on, migrations, migration_rate) = skewed_run(RebalanceConfig::on());

    assert!(
        migrations > 0,
        "skewed load across {SHARDS} shards never triggered a migration"
    );
    assert!(
        cost_on < cost_off,
        "rebalanced cost {cost_on} is not below the skewed baseline {cost_off}"
    );
    let improvement = (cost_off - cost_on) / cost_off;

    // Gate against the committed previous run: the improvement must
    // not collapse. Replay is deterministic, so the loose factor only
    // guards intentional retunes, not noise.
    let path = bench_json_path();
    if let Ok(prev) = std::fs::read_to_string(&path) {
        if let Some(base) = baseline_field(&prev, "cost_improvement") {
            let bound = base * 0.5;
            assert!(
                improvement >= bound,
                "cost improvement regressed: {improvement:.4} vs committed {base:.4} (bound {bound:.4})"
            );
        }
    }

    let json = format!(
        "{{\"shards\":{SHARDS},\"tasks\":{TASKS},\"ticks\":{TICKS},\"migrations\":{migrations},\"migration_rate\":{migration_rate},\"cost_skewed\":{cost_off},\"cost_rebalanced\":{cost_on},\"cost_improvement\":{improvement}}}\n"
    );
    std::fs::write(&path, json).expect("bench json writes");
    println!(
        "rebalance: {migrations} migration(s) (rate {migration_rate:.3}), cost {cost_off:.6} -> {cost_on:.6} ({:.1}% better)",
        improvement * 100.0
    );
}
