//! Reactor-at-scale smoke test (CI runs it with `-- --ignored`): a
//! single-threaded epoll reactor server holding ~10k mostly-idle
//! connections while a small active set submits work. Two regression
//! tripwires, gated against the committed previous run in
//! `BENCH_net_10k.json` at the repository root:
//!
//! * **memory** — per-connection RSS growth must stay within a loose
//!   multiple of the committed baseline (a miss means a connection grew
//!   a buffer or the slab stopped recycling);
//! * **latency** — p99 submit round-trip must not explode while the
//!   herd is open (a miss means the event loop started scanning the
//!   herd per wakeup instead of only ready fds).
//!
//! The bounds are deliberately generous (8× latency, 4× memory): this
//! is a tripwire for complexity regressions, not a benchmark — the
//! numbers vary with machine load, and CI machines are noisy.
//!
//! The herd size scales down when `RLIMIT_NOFILE` cannot fit 10k
//! in-process pairs (each held connection costs two fds here: the
//! client end and the server end share the process); the JSON records
//! the count actually held so the baseline stays honest.

use dvfs_serve::loadgen::{self, Connection, LoadMode};
use dvfs_serve::protocol::{encode_command, value_u64};
use dvfs_serve::{serve, Endpoint, NetBackend, SchedulerConfig, ServerConfig};
use std::path::PathBuf;

fn bench_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_net_10k.json")
}

/// Pull a numeric field out of the committed baseline by string
/// scanning (the file is written by this test, so the shape is known).
fn baseline_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[test]
#[ignore = "CI smoke: run with `cargo test -p dvfs-bench --test net_10k -- --ignored`"]
fn reactor_holds_ten_thousand_idle_connections() {
    // Every held connection is two fds in this process. Try to raise
    // the soft fd limit toward 10k pairs; if the hard limit is lower,
    // scale the herd down and record what was actually held.
    let _ = dvfs_net::sys::raise_nofile_limit(65_536);
    let (soft, _hard) = dvfs_net::sys::nofile_limit().expect("rlimit is readable");
    let fd_budget = usize::try_from(soft.saturating_sub(512) / 2).unwrap_or(0);
    let connections = fd_budget.min(10_000);
    assert!(
        connections >= 1_000,
        "fd budget too small for a meaningful herd: soft limit {soft}"
    );

    let sock = std::env::temp_dir().join(format!("dvfs-net10k-{}.sock", std::process::id()));
    let cfg = ServerConfig {
        net: NetBackend::Reactor,
        max_connections: connections + 64,
        scheduler: SchedulerConfig {
            cores: 2,
            ..SchedulerConfig::default()
        },
        ..ServerConfig::new(Endpoint::Unix(sock))
    };
    let handle = serve(cfg).expect("reactor server binds");

    let report = loadgen::run(
        handle.endpoint(),
        &LoadMode::Idle {
            connections,
            active_requests: 256,
            seed: 1,
            interactive_fraction: 0.3,
            mean_cycles: 2.0e8,
        },
    )
    .expect("idle loadgen run succeeds");

    let idle = report.idle.clone().expect("idle mode reports a summary");
    assert_eq!(idle.connections, connections, "whole herd held");
    assert_eq!(report.errors, 0, "no wire errors under the herd");
    assert_eq!(report.sent, 256, "active set submitted");

    // The reactor's own accounting must have seen the herd: peak open
    // connections is at least the herd (the active submitter rides on
    // top of it).
    let mut conn = Connection::open(handle.endpoint()).expect("stats connection");
    let stats = conn.round_trip(&encode_command("stats")).expect("stats");
    let peak = stats
        .field("metrics")
        .and_then(|m| m.get("gauges"))
        .and_then(|g| g.get("net_connections_peak"))
        .and_then(value_u64)
        .unwrap_or(0);
    assert!(
        peak >= connections as u64,
        "reactor peak {peak} never covered the herd of {connections}"
    );
    drop(conn);
    handle.shutdown();
    handle.wait();

    let q = |p: f64| report.rtt.quantile(p).unwrap_or(0.0);
    let (p50, p95, p99) = (q(0.50), q(0.95), q(0.99));

    // Gate against the committed previous run, if any. Generous
    // bounds: noise is expected, complexity blowups are not.
    let path = bench_json_path();
    if let Ok(prev) = std::fs::read_to_string(&path) {
        if let Some(base_p99) = baseline_field(&prev, "p99_submit_s") {
            let bound = (base_p99 * 8.0).max(0.005);
            assert!(
                p99 <= bound,
                "p99 submit latency regressed: {p99:.6}s vs baseline {base_p99:.6}s (bound {bound:.6}s)"
            );
        }
        if let Some(base_rss) = baseline_field(&prev, "rss_per_conn_bytes") {
            let bound = base_rss * 4.0 + 4096.0;
            assert!(
                (idle.rss_per_conn_bytes as f64) <= bound,
                "per-connection RSS regressed: {} B vs baseline {base_rss} B (bound {bound} B)",
                idle.rss_per_conn_bytes
            );
        }
    }

    let json = format!(
        "{{\"connections\":{},\"peak_connections\":{},\"rss_per_conn_bytes\":{},\"p50_submit_s\":{p50},\"p95_submit_s\":{p95},\"p99_submit_s\":{p99},\"active_requests\":{},\"errors\":{}}}\n",
        idle.connections, peak, idle.rss_per_conn_bytes, report.sent, report.errors
    );
    std::fs::write(&path, json).expect("bench json writes");
    println!(
        "net_10k: {} connections held, ~{} B/conn, submit p50 {:.3} ms p99 {:.3} ms",
        idle.connections,
        idle.rss_per_conn_bytes,
        p50 * 1e3,
        p99 * 1e3
    );
}
