//! Plain-text table rendering for the experiment binaries.

use crate::experiments::CostRow;

/// Render labelled cost rows with values normalized to `baseline`'s
/// (time-cost, energy-cost, total) — the way the paper's figures
/// normalize against a reference scheduler.
#[must_use]
pub fn normalized_table(rows: &[&CostRow], baseline: &CostRow) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>12} {:>14} {:>14}\n",
        "scheduler", "time(norm)", "energy(norm)", "total(norm)", "energy (J)", "waiting (s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>12.3} {:>12.3} {:>12.3} {:>14.1} {:>14.1}\n",
            r.name,
            r.time_cost / baseline.time_cost,
            r.energy_cost / baseline.energy_cost,
            r.total() / baseline.total(),
            r.energy_joules,
            r.waiting_seconds,
        ));
    }
    out
}

/// Render absolute rows (no normalization).
#[must_use]
pub fn absolute_table(rows: &[&CostRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>14} {:>14} {:>12} {:>12} {:>12}\n",
        "scheduler", "energy (J)", "waiting (s)", "makespan(s)", "cost(energy)", "cost(time)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>14.1} {:>14.1} {:>12.2} {:>12.2} {:>12.2}\n",
            r.name, r.energy_joules, r.waiting_seconds, r.makespan, r.energy_cost, r.time_cost,
        ));
    }
    out
}

/// Percentage-change helper: `(new/old − 1) × 100`, rounded to 0.1.
#[must_use]
pub fn pct_change(new: f64, old: f64) -> f64 {
    ((new / old - 1.0) * 1000.0).round() / 10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, e: f64, t: f64) -> CostRow {
        CostRow {
            name: name.into(),
            energy_joules: e,
            waiting_seconds: t,
            makespan: t / 10.0,
            energy_cost: 0.1 * e,
            time_cost: 0.4 * t,
        }
    }

    #[test]
    fn normalized_table_uses_baseline() {
        let a = row("a", 100.0, 10.0);
        let b = row("b", 50.0, 20.0);
        let s = normalized_table(&[&a, &b], &a);
        assert!(s.contains("a"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("1.000"));
        assert!(lines[2].contains("0.500") && lines[2].contains("2.000"));
    }

    #[test]
    fn absolute_table_has_all_rows() {
        let a = row("x", 1.0, 2.0);
        let s = absolute_table(&[&a]);
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn pct_change_signs() {
        assert_eq!(pct_change(54.0, 100.0), -46.0);
        assert_eq!(pct_change(104.0, 100.0), 4.0);
    }
}
