//! Extension experiment: the cost/deadline trade-off curve.
//!
//! Section III-A proves deadline-constrained scheduling NP-complete and
//! moves on; this sweep shows what the greedy rate-escalation heuristic
//! (`dvfs_core::deadline_batch`) pays as a common deadline tightens on
//! the SPEC train workloads: energy rises as tasks are forced to faster
//! rates, waiting falls, and the curve ends at the all-max-rate
//! feasibility frontier.

use dvfs_core::deadline_batch::schedule_multicore_with_deadline;
use dvfs_core::PlanPolicy;
use dvfs_model::{CostParams, Platform};
use dvfs_sim::{SimConfig, Simulator};
use dvfs_workloads::{spec_batch_tasks, SpecInput};

fn main() {
    let params = CostParams::batch_paper();
    let platform = Platform::i7_950_quad();
    let tasks = spec_batch_tasks(SpecInput::Train);

    // Feasibility frontier: the heaviest WBG core at max rate.
    println!("Cost vs deadline on the 12 SPEC train workloads (quad-core)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "deadline", "makespan", "energy (J)", "waiting (s)", "total cost"
    );
    for deadline in [
        1e9f64, 400.0, 300.0, 250.0, 200.0, 170.0, 150.0, 140.0, 130.0,
    ] {
        match schedule_multicore_with_deadline(&tasks, &platform, params, deadline) {
            Some(plan) => {
                let mut sim = Simulator::new(SimConfig::new(platform.clone()));
                sim.add_tasks(&tasks);
                let report = sim.run(&mut PlanPolicy::new(plan));
                let cost = report.cost(params);
                let label = if deadline >= 1e9 {
                    "inf".to_string()
                } else {
                    format!("{deadline:.0}")
                };
                println!(
                    "{:>10} {:>12.1} {:>12.1} {:>12.1} {:>12.2}",
                    label,
                    report.makespan,
                    cost.energy_joules,
                    cost.waiting_seconds,
                    cost.total()
                );
            }
            None => {
                println!("{deadline:>10.0} {:>12}", "infeasible");
            }
        }
    }
}
