//! Ablation: does WBG's batch-mode win survive *wall* energy accounting?
//!
//! The paper subtracts idle power before comparing (its meter measures
//! the whole box). But WBG stretches the makespan — slow heavy tasks
//! keep the machine on longer, burning idle power on every core — so
//! idle-subtracted accounting flatters it. This ablation recomputes
//! Fig. 2 charging the full wall energy (active + idle over the
//! makespan) at several per-core idle power levels.

use dvfs_baselines::{olb_assignment, GovernedPlanPolicy};
use dvfs_core::schedule_wbg;
use dvfs_core::PlanPolicy;
use dvfs_model::{CoreSpec, CostParams, Platform, RateTable};
use dvfs_sim::{GovernorKind, SimConfig, Simulator};
use dvfs_workloads::{spec_batch_tasks, SpecInput};

fn main() {
    let params = CostParams::batch_paper();
    let tasks = spec_batch_tasks(SpecInput::Both);

    println!("FIG. 2 under wall-energy accounting (active + idle), varying idle power\n");
    println!(
        "{:>12} {:>16} {:>16} {:>14}",
        "idle W/core", "WBG wall cost", "OLB wall cost", "WBG delta"
    );
    for idle_w in [0.0f64, 1.0, 2.0, 5.0, 10.0, 20.0] {
        let platform = Platform::homogeneous(
            4,
            CoreSpec::new(RateTable::i7_950_table2()).with_idle_power(idle_w),
        )
        .expect("4 cores");

        let plan = schedule_wbg(&tasks, &platform, params);
        let mut sim = Simulator::new(SimConfig::new(platform.clone()));
        sim.add_tasks(&tasks);
        let wbg = sim.run(&mut PlanPolicy::new(plan)).wall_cost(params);

        let seqs = olb_assignment(&tasks, &platform, None);
        let mut sim =
            Simulator::new(SimConfig::new(platform).with_governor(GovernorKind::ondemand_paper()));
        sim.add_tasks(&tasks);
        let olb = sim
            .run(&mut GovernedPlanPolicy::new("olb", seqs))
            .wall_cost(params);

        println!(
            "{:>12.1} {:>16.2} {:>16.2} {:>13.1}%",
            idle_w,
            wbg.total(),
            olb.total(),
            (wbg.total() / olb.total() - 1.0) * 100.0
        );
    }
    println!("\n(the paper's idle-subtracted comparison corresponds to the 0 W row)");
}
