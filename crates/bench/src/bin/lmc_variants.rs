//! Ablation: how much does Equation 27 itself matter?
//!
//! LMC's interactive placement rule (Eq. 27) weighs a core's per-cycle
//! energy/time at max frequency against its queue length. This ablation
//! swaps in two simpler rules — least-queue (which the paper notes is
//! equivalent on homogeneous cores) and blind round-robin — on both the
//! homogeneous quad and the big.LITTLE platform, under the judge trace.
//! It also surfaces an honest second-order finding: under dense
//! interactive bursts on homogeneous cores, round-robin can *match or
//! slightly beat* Eq. 27, because interactive tasks preempt
//! non-interactive work anyway and the real contention is other
//! interactive tasks, which `N_j` does not count.

use dvfs_core::{InteractivePlacement, LeastMarginalCost};
use dvfs_model::{CostParams, Platform};
use dvfs_sim::{SimConfig, Simulator};
use dvfs_workloads::JudgeTraceConfig;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let params = CostParams::online_paper();
    let mut cfg = JudgeTraceConfig::paper_heavy(seed);
    cfg.non_interactive /= 4;
    cfg.interactive /= 4;
    let trace = cfg.generate();

    for (label, platform) in [
        ("homogeneous quad (i7)", Platform::i7_950_quad()),
        ("big.LITTLE (2 i7 + 2 Exynos)", Platform::big_little(2, 2)),
    ] {
        println!("--- {label}, {} tasks ---", trace.len());
        println!(
            "{:<16} {:>12} {:>14} {:>12} {:>14}",
            "placement", "energy (J)", "waiting (s)", "total cost", "interactive p99"
        );
        for (name, placement) in [
            ("eq27", InteractivePlacement::MarginalCost),
            ("least-queue", InteractivePlacement::LeastQueue),
            ("round-robin", InteractivePlacement::RoundRobin),
        ] {
            let mut policy =
                LeastMarginalCost::new(&platform, params).with_interactive_placement(placement);
            let mut sim = Simulator::new(SimConfig::new(platform.clone()));
            sim.add_tasks(&trace);
            let report = sim.run(&mut policy);
            let cost = report.cost(params);
            let p99 = report
                .turnaround_percentile(dvfs_model::TaskClass::Interactive, 99.0)
                .unwrap_or(f64::NAN);
            println!(
                "{:<16} {:>12.1} {:>14.1} {:>12.2} {:>13.4}s",
                name,
                cost.energy_joules,
                cost.waiting_seconds,
                cost.total(),
                p99
            );
        }
        println!();
    }
}
