//! Calibration sweep behind Fig. 1: the Sim-vs-Exp cost gap as a
//! function of the contention coefficient.
//!
//! The paper reports an ≈8% gap and attributes it to shared-cache/memory
//! contention. Our "Exp" substitutes a linear contention model
//! (`1/(1 + α·(busy−1))`); this sweep shows the gap is essentially
//! linear in α and that α = 0.03 lands on the paper's number — i.e. the
//! reproduction has exactly one calibrated knob, disclosed here.

use dvfs_core::batch::predict_plan_cost;
use dvfs_core::schedule_wbg;
use dvfs_core::PlanPolicy;
use dvfs_model::{CoreSpec, CostParams, Platform, RateTable};
use dvfs_power::{memory_contention, PowerMeter};
use dvfs_sim::{SimConfig, Simulator};
use dvfs_workloads::{spec_batch_tasks, SpecInput};

fn main() {
    let params = CostParams::batch_paper();
    let table = RateTable::i7_950_two_rates();
    let platform =
        Platform::homogeneous(4, CoreSpec::new(table).with_idle_power(2.0)).expect("4 cores");
    let tasks = spec_batch_tasks(SpecInput::Both);
    let plan = schedule_wbg(&tasks, &platform, params);
    let predicted = predict_plan_cost(&plan, &tasks, &platform, params);

    println!("Sim-vs-Exp total-cost gap vs contention coefficient α (paper: ≈ +8%)\n");
    println!("{:>8} {:>12} {:>12}", "alpha", "Exp cost", "gap");
    for alpha in [0.0f64, 0.01, 0.02, 0.03, 0.04, 0.06, 0.08] {
        let cfg = SimConfig::new(platform.clone())
            .with_contention(memory_contention(alpha))
            .with_power_timeline();
        let mut sim = Simulator::new(cfg);
        sim.add_tasks(&tasks);
        let report = sim.run(&mut PlanPolicy::new(plan.clone()));
        let meter = PowerMeter::dw6091_like(1);
        let idle = platform.total_idle_power();
        let reading = meter.measure(&report.power_timeline, report.makespan, idle);
        let exp_cost =
            params.re * reading.active_energy(idle) + params.rt * report.total_turnaround();
        println!(
            "{:>8.2} {:>12.1} {:>11.1}%",
            alpha,
            exp_cost,
            (exp_cost / predicted - 1.0) * 100.0
        );
    }
}
