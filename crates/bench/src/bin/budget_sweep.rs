//! Extension experiment: the feasible (deadline, energy-budget) region
//! of Section III-A, mapped by the bi-criteria greedy.
//!
//! Theorem 1 proves deciding feasibility under both budgets NP-complete;
//! the greedy of `schedule_single_core_with_budgets` answers soundly
//! (never violates a budget) but incompletely. This sweep charts, for a
//! grid of (deadline, energy) budget pairs over the SPEC train tasks on
//! one core, whether the greedy finds a plan and at what cost —
//! visualizing the trade-off surface the proof only says is hard.

use dvfs_core::deadline_batch::schedule_single_core_with_budgets;
use dvfs_model::{CostParams, RateTable};
use dvfs_workloads::{spec_batch_tasks, SpecInput};

fn main() {
    let params = CostParams::batch_paper();
    let table = RateTable::i7_950_table2();
    let tasks = spec_batch_tasks(SpecInput::Train);

    let total_cycles: f64 = tasks.iter().map(|t| t.cycles as f64).sum();
    let min_time = total_cycles * table.rate(table.max_rate()).time_per_cycle;
    let min_energy = total_cycles * table.rate(0).energy_per_cycle;

    println!(
        "Greedy feasibility/cost over the (deadline, energy) budget grid\n\
         (12 SPEC train tasks, one core; deadline in multiples of the all-max\n\
         makespan {min_time:.0} s, energy in multiples of the all-min energy {min_energy:.0} J)\n"
    );
    print!("{:>10}", "D\\E");
    let e_fracs = [1.02f64, 1.1, 1.3, 1.6, 2.2];
    for ef in e_fracs {
        print!("{ef:>12.2}");
    }
    println!();
    for df in [1.02f64, 1.1, 1.3, 1.6, 2.0] {
        print!("{df:>10.2}");
        for ef in e_fracs {
            let plan = schedule_single_core_with_budgets(
                &tasks,
                &table,
                params,
                Some(min_time * df),
                Some(min_energy * ef),
            );
            match plan {
                Some(p) => print!("{:>12.0}", p.predicted_cost),
                None => print!("{:>12}", "-"),
            }
        }
        println!();
    }
    println!("\n(numbers are the plan's total cost in cents; '-' = greedy found no plan)");
}
