//! Ablation: does DVFS transition latency erode LMC's advantage?
//!
//! The paper's model assumes frequency changes are free; real per-core
//! DVFS transitions cost tens of microseconds of stalled execution. LMC
//! changes the running task's frequency whenever its queue grows, so it
//! switches far more often than OLB (which pins the maximum). This sweep
//! replays the Fig. 3 trace with increasing transition latency and
//! reports the LMC-vs-OLB total-cost delta — locating the latency at
//! which the paper's conclusion would flip.

use dvfs_baselines::OlbOnline;
use dvfs_core::LeastMarginalCost;
use dvfs_model::{CostParams, Platform};
use dvfs_sim::{SimConfig, Simulator};
use dvfs_workloads::JudgeTraceConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let params = CostParams::online_paper();
    let platform = Platform::i7_950_quad();
    let mut cfg = JudgeTraceConfig::paper_heavy(seed);
    cfg.non_interactive = (cfg.non_interactive / scale).max(1);
    cfg.interactive = (cfg.interactive / scale).max(1);
    let trace = cfg.generate();

    println!(
        "LMC vs OLB total cost as DVFS transition latency grows ({} tasks)\n",
        trace.len()
    );
    println!(
        "{:>12} {:>14} {:>14} {:>12}",
        "latency", "LMC total", "OLB total", "LMC delta"
    );
    for latency_us in [0.0f64, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 20000.0] {
        let latency = latency_us * 1e-6;
        let lmc = {
            let mut p = LeastMarginalCost::new(&platform, params);
            let mut sim =
                Simulator::new(SimConfig::new(platform.clone()).with_switch_latency(latency));
            sim.add_tasks(&trace);
            sim.run(&mut p).cost(params).total()
        };
        let olb = {
            let mut p = OlbOnline::new(platform.num_cores());
            let mut sim =
                Simulator::new(SimConfig::new(platform.clone()).with_switch_latency(latency));
            sim.add_tasks(&trace);
            sim.run(&mut p).cost(params).total()
        };
        println!(
            "{:>9} µs {:>14.2} {:>14.2} {:>11.1}%",
            latency_us,
            lmc,
            olb,
            (lmc / olb - 1.0) * 100.0
        );
    }
    println!("\n(negative delta = LMC still wins; OLB also pays switch stalls on dispatch)");
}
