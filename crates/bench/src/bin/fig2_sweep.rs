//! Ablation: how the Fig. 2 comparison depends on batch size.
//!
//! With 24 tasks over 4 cores, each core holds only 6 backward
//! positions, all inside the low-frequency dominating ranges of
//! Table II — so WBG's time penalty against the all-max-frequency OLB is
//! structural. Replicating the batch pushes most positions past the
//! `k ≥ 10 → 3.0 GHz` boundary and the time penalty collapses toward
//! the paper's +4% while the energy saving persists, showing where the
//! published operating point lies.

use dvfs_baselines::{olb_assignment, GovernedPlanPolicy};
use dvfs_core::schedule_wbg;
use dvfs_core::PlanPolicy;
use dvfs_model::{CostParams, Platform, Task};
use dvfs_sim::{GovernorKind, SimConfig, Simulator};
use dvfs_workloads::{spec_batch_tasks, SpecInput};

fn replicate(tasks: &[Task], times: usize) -> Vec<Task> {
    let mut out = Vec::with_capacity(tasks.len() * times);
    let mut id = 0u64;
    for _ in 0..times {
        for t in tasks {
            out.push(Task::batch(id, t.cycles).expect("positive cycles"));
            id += 1;
        }
    }
    out
}

fn main() {
    let params = CostParams::batch_paper();
    let base = spec_batch_tasks(SpecInput::Both);
    println!("FIG. 2 ABLATION — WBG vs OLB as the batch grows (quad-core)\n");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>14}",
        "batch", "tasks/core", "energy delta", "time delta", "total delta"
    );
    for times in [1usize, 2, 4, 8, 16, 32] {
        let tasks = replicate(&base, times);
        let platform = Platform::i7_950_quad();

        let plan = schedule_wbg(&tasks, &platform, params);
        let mut sim = Simulator::new(SimConfig::new(platform.clone()));
        sim.add_tasks(&tasks);
        let wbg = sim.run(&mut PlanPolicy::new(plan)).cost(params);

        let seqs = olb_assignment(&tasks, &platform, None);
        let mut sim =
            Simulator::new(SimConfig::new(platform).with_governor(GovernorKind::ondemand_paper()));
        sim.add_tasks(&tasks);
        let olb = sim
            .run(&mut GovernedPlanPolicy::new("olb", seqs))
            .cost(params);

        let pct = |a: f64, b: f64| (a / b - 1.0) * 100.0;
        println!(
            "{:>8} {:>10} {:>13.1}% {:>13.1}% {:>13.1}%",
            24 * times,
            6 * times,
            pct(wbg.energy_cost, olb.energy_cost),
            pct(wbg.time_cost, olb.time_cost),
            pct(wbg.total(), olb.total()),
        );
    }
    println!("\n(paper's operating point: energy −46%, time +4%, total −27%)");
}
