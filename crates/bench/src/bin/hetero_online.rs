//! Extension experiment: the online schedulers on a heterogeneous
//! big.LITTLE platform (2× i7-class + 2× Exynos-class cores, the CPUs
//! Section II-B cites). The paper's formulation supports heterogeneous
//! cores (`C_j(k)`, Theorem 5); its evaluation only exercised the
//! homogeneous i7. This binary runs the Fig. 3 comparison on the mixed
//! platform, where LMC's per-core marginal costs also weigh core
//! efficiency, not just queue length.

use dvfs_baselines::{OlbOnline, OnDemandOnline};
use dvfs_core::LeastMarginalCost;
use dvfs_model::{CostParams, Platform};
use dvfs_sim::{GovernorKind, SimConfig, SimReport, Simulator};
use dvfs_workloads::JudgeTraceConfig;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let params = CostParams::online_paper();
    let platform = Platform::big_little(2, 2);
    let mut cfg = JudgeTraceConfig::paper_heavy(seed);
    cfg.non_interactive /= 4;
    cfg.interactive /= 4;
    // Halve weights: the little cores contribute less capacity.
    for m in &mut cfg.submission_mean_cycles {
        *m *= 0.5;
    }
    let trace = cfg.generate();

    let describe = |name: &str, r: &SimReport| {
        let c = r.cost(params);
        println!(
            "{:<12} energy {:>9.1} J   waiting {:>10.1} s   total {:>9.2}   busy big {:>6.0}s/{:>6.0}s little {:>6.0}s/{:>6.0}s",
            name,
            c.energy_joules,
            c.waiting_seconds,
            c.total(),
            r.core_busy[0],
            r.core_busy[1],
            r.core_busy[2],
            r.core_busy[3]
        );
    };

    println!(
        "Online scheduling on big.LITTLE (2× i7 + 2× Exynos), {} tasks\n",
        trace.len()
    );
    {
        let mut p = LeastMarginalCost::new(&platform, params);
        let mut sim = Simulator::new(SimConfig::new(platform.clone()));
        sim.add_tasks(&trace);
        let r = sim.run(&mut p);
        describe("LMC", &r);
    }
    {
        let mut p = OlbOnline::new(platform.num_cores());
        let mut sim = Simulator::new(SimConfig::new(platform.clone()));
        sim.add_tasks(&trace);
        let r = sim.run(&mut p);
        describe("OLB", &r);
    }
    {
        let mut p = OnDemandOnline::new(platform.num_cores());
        let mut sim = Simulator::new(
            SimConfig::new(platform.clone()).with_governor(GovernorKind::ondemand_paper()),
        );
        sim.add_tasks(&trace);
        let r = sim.run(&mut p);
        describe("On-demand", &r);
    }
}
