//! Regenerates Fig. 2: batch-mode cost comparison of Workload Based
//! Greedy against Opportunistic Load Balancing and Power Saving on the
//! 24 SPEC2006int workloads.

use dvfs_bench::format::{absolute_table, normalized_table, pct_change};
use dvfs_bench::run_fig2;

fn main() {
    let r = run_fig2();
    println!("FIG. 2 — COST COMPARISON OF SCHEDULING METHODS (batch mode)\n");
    println!("normalized to OLB:");
    println!("{}", normalized_table(&[&r.wbg, &r.olb, &r.ps], &r.olb));
    println!("absolute:");
    println!("{}", absolute_table(&[&r.wbg, &r.olb, &r.ps]));
    println!(
        "WBG vs OLB:  energy {:+.1}%  time-cost {:+.1}%  total {:+.1}%   (paper: −46%, +4%, −27%)",
        pct_change(r.wbg.energy_cost, r.olb.energy_cost),
        pct_change(r.wbg.time_cost, r.olb.time_cost),
        pct_change(r.wbg.total(), r.olb.total()),
    );
    println!(
        "WBG vs PS:   energy {:+.1}%  time-cost {:+.1}%  total {:+.1}%   (paper: −27%, −13%, n/a)",
        pct_change(r.wbg.energy_cost, r.ps.energy_cost),
        pct_change(r.wbg.time_cost, r.ps.time_cost),
        pct_change(r.wbg.total(), r.ps.total()),
    );
}
