//! Ablation: governor dynamics under the online judge workload.
//!
//! Compares round-robin placement under four frequency regimes —
//! `performance` (always max), the paper's `ondemand` (jump up / step
//! down), Linux-default `conservative` (step both ways), and
//! `powersave`-style capped ondemand — quantifying how much of the
//! On-demand baseline's time-cost penalty in Fig. 3 comes from governor
//! reaction lag versus placement.

use dvfs_baselines::OnDemandOnline;
use dvfs_model::{CostParams, Platform};
use dvfs_sim::{GovernorKind, SimConfig, Simulator};
use dvfs_workloads::JudgeTraceConfig;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let params = CostParams::online_paper();
    let platform = Platform::i7_950_quad();
    let mut cfg = JudgeTraceConfig::paper_heavy(seed);
    cfg.non_interactive /= 4;
    cfg.interactive /= 4;
    let trace = cfg.generate();

    println!(
        "Round-robin placement under different governors ({} tasks)\n",
        trace.len()
    );
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>12}",
        "governor", "energy (J)", "waiting (s)", "makespan", "total cost"
    );
    let regimes: Vec<(&str, SimConfig)> = vec![
        (
            "performance",
            SimConfig::new(platform.clone()).with_governor(GovernorKind::Performance),
        ),
        (
            "ondemand",
            SimConfig::new(platform.clone()).with_governor(GovernorKind::ondemand_paper()),
        ),
        (
            "conservative",
            SimConfig::new(platform.clone()).with_governor(GovernorKind::conservative_default()),
        ),
        (
            "powersave-cap",
            SimConfig::new(platform.clone())
                .with_governor(GovernorKind::ondemand_paper())
                .with_rate_cap(2),
        ),
    ];
    for (name, simcfg) in regimes {
        let mut policy = OnDemandOnline::new(platform.num_cores());
        let mut sim = Simulator::new(simcfg);
        sim.add_tasks(&trace);
        let report = sim.run(&mut policy);
        let cost = report.cost(params);
        println!(
            "{:<14} {:>12.1} {:>14.1} {:>12.2} {:>12.2}",
            name,
            cost.energy_joules,
            cost.waiting_seconds,
            report.makespan,
            cost.total()
        );
    }
}
