//! Ablation: the migration trade-off of Section IV.
//!
//! The paper argues LMC exists because full WBG redistribution on every
//! arrival "yields the minimum cost" but migration overhead makes it
//! impractical — without ever quantifying the gap. This binary measures
//! it: LMC (no migration) against `WbgReassign` (full redistribution at
//! *zero* migration cost — the most favorable case for redistribution)
//! on the Judgegirl-style trace across load levels.
//!
//! Usage: `lmc_vs_wbg_online [seed] [scale]` (scale divides trace size;
//! default 8 since WBG reassign is O(Q log Q) per arrival).

use dvfs_core::{LeastMarginalCost, WbgReassign};
use dvfs_model::{CostParams, Platform};
use dvfs_sim::{SimConfig, Simulator};
use dvfs_workloads::JudgeTraceConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let params = CostParams::online_paper();
    let platform = Platform::i7_950_quad();

    println!("LMC vs zero-cost-migration WBG redistribution (Section IV trade-off)\n");
    println!(
        "{:>6} {:>14} {:>14} {:>16}",
        "mult", "LMC total", "WBG-RA total", "LMC overhead"
    );
    for mult in [1.0f64, 3.0, 5.0, 10.0] {
        let mut cfg = JudgeTraceConfig::paper(seed);
        for m in &mut cfg.submission_mean_cycles {
            *m *= mult;
        }
        cfg.non_interactive = (cfg.non_interactive / scale).max(1);
        cfg.interactive = (cfg.interactive / scale).max(1);
        let trace = cfg.generate();

        let lmc = {
            let mut p = LeastMarginalCost::new(&platform, params);
            let mut sim = Simulator::new(SimConfig::new(platform.clone()));
            sim.add_tasks(&trace);
            sim.run(&mut p).cost(params).total()
        };
        let wbg = {
            let mut p = WbgReassign::new(&platform, params);
            let mut sim = Simulator::new(SimConfig::new(platform.clone()));
            sim.add_tasks(&trace);
            sim.run(&mut p).cost(params).total()
        };
        println!(
            "{:>6.1} {:>14.2} {:>14.2} {:>15.2}%",
            mult,
            lmc,
            wbg,
            (lmc / wbg - 1.0) * 100.0
        );
    }
    println!(
        "\n'LMC overhead' = extra cost of the migration-free heuristic relative to\n\
         an idealized redistributor; the paper asserts this is worth paying to\n\
         avoid migration overhead."
    );
}
