//! Regenerates Fig. 1: comparison of the analytic cost model ("Sim")
//! against the measured execution on the contended platform with a
//! sampled power meter ("Exp").

use dvfs_bench::format::{normalized_table, pct_change};
use dvfs_bench::run_fig1;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let r = run_fig1(seed);
    println!("FIG. 1 — MODEL VERIFICATION (Sim vs Exp), normalized to Sim\n");
    println!("{}", normalized_table(&[&r.sim, &r.exp], &r.sim));
    println!(
        "Exp total cost is {:+.1}% vs the model (paper: ≈ +8%)",
        pct_change(r.exp.total(), r.sim.total())
    );
    println!(
        "  energy {:+.1}%   time {:+.1}%",
        pct_change(r.exp.energy_cost, r.sim.energy_cost),
        pct_change(r.exp.time_cost, r.sim.time_cost)
    );
}
