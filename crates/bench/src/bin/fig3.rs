//! Regenerates Fig. 3: online-mode cost comparison of Least Marginal
//! Cost against Opportunistic Load Balancing and On-demand on a
//! synthesized Judgegirl-style trace (768 non-interactive + 50525
//! interactive tasks over half an hour).
//!
//! Usage: `fig3 [seed] [scale]` — `scale` divides the trace size for
//! quick runs (default 1 = the full trace).

use dvfs_bench::format::{absolute_table, normalized_table, pct_change};
use dvfs_bench::run_fig3;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let r = run_fig3(seed, scale);
    println!(
        "FIG. 3 — COST COMPARISON OF SCHEDULING METHODS (online mode, {} tasks)\n",
        r.num_tasks
    );
    println!("normalized to OLB:");
    println!("{}", normalized_table(&[&r.lmc, &r.olb, &r.od], &r.olb));
    println!("absolute:");
    println!("{}", absolute_table(&[&r.lmc, &r.olb, &r.od]));
    println!(
        "LMC vs OLB:  energy {:+.1}%  time-cost {:+.1}%  total {:+.1}%   (paper: −11%, −31%, −17%)",
        pct_change(r.lmc.energy_cost, r.olb.energy_cost),
        pct_change(r.lmc.time_cost, r.olb.time_cost),
        pct_change(r.lmc.total(), r.olb.total()),
    );
    println!(
        "LMC vs OD:   energy {:+.1}%  time-cost {:+.1}%  total {:+.1}%   (paper: −11%, −46%, −24%)",
        pct_change(r.lmc.energy_cost, r.od.energy_cost),
        pct_change(r.lmc.time_cost, r.od.time_cost),
        pct_change(r.lmc.total(), r.od.total()),
    );
}
