//! Regenerates Table I: average execution times of the SPEC2006int
//! workloads (train and ref inputs) and the derived cycle estimates.

use dvfs_workloads::spec::{cycles_from_seconds, SPEC2006INT};

fn main() {
    println!("TABLE I — AVERAGE EXECUTION TIMES OF THE WORKLOADS (SECONDS)");
    println!(
        "{:<12} {:>12} {:>12} {:>16} {:>16}",
        "Benchmark", "train input", "ref. input", "train cycles", "ref cycles"
    );
    for row in &SPEC2006INT {
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>16} {:>16}",
            row.name,
            row.train_s,
            row.ref_s,
            cycles_from_seconds(row.train_s),
            cycles_from_seconds(row.ref_s)
        );
    }
    let total_train: f64 = SPEC2006INT.iter().map(|r| r.train_s).sum();
    let total_ref: f64 = SPEC2006INT.iter().map(|r| r.ref_s).sum();
    println!("{:<12} {:>12.3} {:>12.3}", "TOTAL", total_train, total_ref);
    println!("\n(cycles = seconds x 1.6 GHz, the paper's Section V-A.1 estimation)");
}
