//! Regenerates Table II: the batch-mode processing-rate parameters of
//! the Intel i7-950 platform, plus the derived active power and the
//! dominating position ranges they induce under the paper's batch cost
//! parameters.

use dvfs_core::DominatingRanges;
use dvfs_model::{CostParams, RateTable};

fn main() {
    let table = RateTable::i7_950_table2();
    println!("TABLE II — PARAMETERS IN BATCH MODE");
    println!(
        "{:<10} {:>12} {:>12} {:>14}",
        "p (GHz)", "E(p) nJ/cyc", "T(p) ns/cyc", "power (W)"
    );
    for r in table.points() {
        println!(
            "{:<10.1} {:>12.3} {:>12.3} {:>14.2}",
            r.freq_hz / 1e9,
            r.energy_per_cycle * 1e9,
            r.time_per_cycle * 1e9,
            r.active_power_watts()
        );
    }

    let params = CostParams::batch_paper();
    let dr = DominatingRanges::compute(&table, params);
    println!(
        "\nDominating position ranges (Algorithm 1) at Re = {} ¢/J, Rt = {} ¢/s:",
        params.re, params.rt
    );
    for e in dr.entries() {
        let rate_ghz = table.rate(e.rate).freq_hz / 1e9;
        match e.ub {
            Some(ub) => println!(
                "  {:>4.1} GHz dominates backward positions [{}, {})",
                rate_ghz, e.lb, ub
            ),
            None => println!(
                "  {:>4.1} GHz dominates backward positions [{}, inf)",
                rate_ghz, e.lb
            ),
        }
    }
}
