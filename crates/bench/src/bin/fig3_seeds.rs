//! Statistical robustness of the Fig. 3 comparison: the full experiment
//! across many trace seeds (in parallel via rayon), reporting mean ±
//! standard deviation of every delta. A single synthetic trace could be
//! lucky; twenty aren't.
//!
//! Usage: `fig3_seeds [n_seeds] [scale]`

use dvfs_bench::run_fig3;
use rayon::prelude::*;

struct Deltas {
    olb_energy: f64,
    olb_time: f64,
    olb_total: f64,
    od_energy: f64,
    od_time: f64,
    od_total: f64,
}

fn mean_sd(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);
    // Scale 1 = the full 51 293-task trace; larger scales shrink the
    // trace and with it the queueing that gives LMC its time advantage.
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let deltas: Vec<Deltas> = (0..n_seeds)
        .into_par_iter()
        .map(|seed| {
            let r = run_fig3(seed, scale);
            let pct = |a: f64, b: f64| (a / b - 1.0) * 100.0;
            Deltas {
                olb_energy: pct(r.lmc.energy_cost, r.olb.energy_cost),
                olb_time: pct(r.lmc.time_cost, r.olb.time_cost),
                olb_total: pct(r.lmc.total(), r.olb.total()),
                od_energy: pct(r.lmc.energy_cost, r.od.energy_cost),
                od_time: pct(r.lmc.time_cost, r.od.time_cost),
                od_total: pct(r.lmc.total(), r.od.total()),
            }
        })
        .collect();

    println!("FIG. 3 over {n_seeds} trace seeds (scale {scale}): LMC deltas, mean ± sd\n");
    let report = |label: &str, xs: Vec<f64>, paper: f64| {
        let (m, sd) = mean_sd(&xs);
        println!("{label:<22} {m:>8.1}% ± {sd:>5.1}   (paper {paper:+.0}%)");
    };
    report(
        "vs OLB energy",
        deltas.iter().map(|d| d.olb_energy).collect(),
        -11.0,
    );
    report(
        "vs OLB time cost",
        deltas.iter().map(|d| d.olb_time).collect(),
        -31.0,
    );
    report(
        "vs OLB total",
        deltas.iter().map(|d| d.olb_total).collect(),
        -17.0,
    );
    report(
        "vs OD energy",
        deltas.iter().map(|d| d.od_energy).collect(),
        -11.0,
    );
    report(
        "vs OD time cost",
        deltas.iter().map(|d| d.od_time).collect(),
        -46.0,
    );
    report(
        "vs OD total",
        deltas.iter().map(|d| d.od_total).collect(),
        -24.0,
    );

    let wins = deltas
        .iter()
        .filter(|d| d.olb_total < 0.0 && d.od_total < 0.0)
        .count();
    println!("\nLMC wins total cost against both baselines in {wins}/{n_seeds} seeds.");
}
