//! Extension experiment: the price of discrete rates and of polynomial
//! time, measured against Yao–Demers–Shenker.
//!
//! For a common-deadline batch, three energy figures bracket the design
//! space:
//!
//! 1. **YDS** (continuous speeds, power fitted to Table II) — the
//!    information-theoretic floor;
//! 2. **exact discrete** (`min_energy_under_deadline`, Pareto DP) — the
//!    best any per-core-DVFS system with Table II's five levels can do;
//! 3. **greedy escalation** (`deadline_batch`) — what the polynomial
//!    heuristic achieves.
//!
//! Gap 1→2 is the quantization cost of a finite rate set; gap 2→3 is the
//! heuristic's optimality loss.

use dvfs_core::deadline::min_energy_under_deadline;
use dvfs_core::deadline_batch::schedule_single_core_with_deadline;
use dvfs_core::yds::{yds, YdsJob};
use dvfs_model::task::batch_workload;
use dvfs_model::{CostParams, RateTable};

/// Least-squares fit of `P(s) = c·s^a` to the table's (speed, power)
/// points, in log space.
fn fit_power(table: &RateTable) -> (f64, f64) {
    let pts: Vec<(f64, f64)> = table
        .points()
        .iter()
        .map(|r| {
            let speed = 1.0 / r.time_per_cycle;
            (speed.ln(), r.active_power_watts().ln())
        })
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let c = ((sy - a * sx) / n).exp();
    (c, a)
}

fn main() {
    let table = RateTable::i7_950_table2();
    let params = CostParams::batch_paper();
    let (coeff, alpha) = fit_power(&table);
    println!(
        "Fitted continuous power curve: P(s) = {:.3e} * s^{:.3}\n",
        coeff, alpha
    );

    let cycles: Vec<u64> = vec![
        2_000_000_000,
        1_500_000_000,
        800_000_000,
        3_200_000_000,
        400_000_000,
    ];
    let tasks = batch_workload(&cycles);
    let total: f64 = cycles.iter().map(|&c| c as f64).sum();
    let min_span: f64 = cycles
        .iter()
        .map(|&c| table.exec_time(table.max_rate(), c))
        .sum();

    println!(
        "{:>10} {:>14} {:>16} {:>16} {:>10} {:>10}",
        "deadline", "YDS (J)", "exact disc (J)", "heuristic (J)", "quant gap", "heur gap"
    );
    for frac in [2.0f64, 1.6, 1.3, 1.15, 1.05, 1.01] {
        let deadline = min_span * frac;
        // YDS floor: single critical interval at speed total/deadline.
        let jobs: Vec<YdsJob> = cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| YdsJob {
                id: i as u64,
                release: 0.0,
                deadline,
                work: c as f64,
            })
            .collect();
        let continuous = yds(&jobs);
        // Continuous speeds are unbounded below; real hardware floors at
        // the slowest rate. Clamp to the table's min execution speed so
        // the floor is honest.
        let min_speed = 1.0 / table.rate(0).time_per_cycle;
        let yds_energy: f64 = continuous
            .assignments
            .iter()
            .map(|a| {
                let s = a.speed.max(min_speed);
                let w = jobs[a.id as usize].work;
                coeff * s.powf(alpha) * (w / s)
            })
            .sum();

        let exact = min_energy_under_deadline(&cycles, &table, deadline)
            .map(|(_, e)| e)
            .expect("feasible by construction");

        let heuristic = schedule_single_core_with_deadline(&tasks, &table, params, deadline)
            .expect("feasible by construction");
        let heur_energy: f64 = heuristic
            .order
            .iter()
            .map(|&(tid, r)| {
                let t = tasks.iter().find(|t| t.id == tid).expect("exists");
                table.energy(r, t.cycles)
            })
            .sum();

        println!(
            "{:>9.3}s {:>14.2} {:>16.2} {:>16.2} {:>9.1}% {:>9.1}%",
            deadline,
            yds_energy,
            exact,
            heur_energy,
            (exact / yds_energy - 1.0) * 100.0,
            (heur_energy / exact - 1.0) * 100.0,
        );
        let _ = total;
    }
    println!("\nquant gap = exact-discrete over the continuous YDS floor; small negative");
    println!("values are artifacts of the least-squares power fit, which does not pass");
    println!("exactly through every Table II point.");
    println!("heur gap  = greedy escalation over the exact discrete optimum.");
    println!("(the heuristic also optimizes waiting cost, so its energy may sit above the");
    println!(" energy-only optimum even when its total cost is good)");
}
