//! Ablation: how the Fig. 3 comparison depends on judge-server load.
//!
//! The published Judgegirl trace fixes counts and duration but not the
//! per-submission CPU weight; this sweep scales the submission cycle
//! means from the light default (≈9% utilization) to heavy overload and
//! reports the LMC-vs-baseline deltas at each point. It locates the
//! crossover where LMC's time cost drops below OLB's (shortest-first
//! queueing wins once queues actually form), while LMC's total-cost win
//! holds across the whole range.

use dvfs_baselines::{OlbOnline, OnDemandOnline};
use dvfs_core::LeastMarginalCost;
use dvfs_model::{CostParams, Platform};
use dvfs_sim::{GovernorKind, SimConfig, SimReport, Simulator};
use dvfs_workloads::JudgeTraceConfig;

fn run(platform: &Platform, trace: &[dvfs_model::Task], which: &str) -> SimReport {
    let params = CostParams::online_paper();
    let cfg = match which {
        "od" => SimConfig::new(platform.clone()).with_governor(GovernorKind::ondemand_paper()),
        _ => SimConfig::new(platform.clone()),
    };
    let mut sim = Simulator::new(cfg);
    sim.add_tasks(trace);
    match which {
        "lmc" => {
            let mut p = LeastMarginalCost::new(platform, params);
            sim.run(&mut p)
        }
        "olb" => {
            let mut p = OlbOnline::new(platform.num_cores());
            sim.run(&mut p)
        }
        _ => {
            let mut p = OnDemandOnline::new(platform.num_cores());
            sim.run(&mut p)
        }
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let params = CostParams::online_paper();
    let platform = Platform::i7_950_quad();
    println!("FIG. 3 ABLATION — LMC deltas vs load (submission weight multiplier)\n");
    println!(
        "{:>6} {:>22} {:>22} {:>22}",
        "mult", "LMC vs OLB (E/T/total)", "LMC vs OD (E/T/total)", "utilization"
    );
    for mult in [1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 15.0] {
        let mut cfg = JudgeTraceConfig::paper(seed);
        for m in &mut cfg.submission_mean_cycles {
            *m *= mult;
        }
        let trace = cfg.generate();
        let lmc = run(&platform, &trace, "lmc");
        let olb = run(&platform, &trace, "olb");
        let od = run(&platform, &trace, "od");
        let (cl, co, cd) = (lmc.cost(params), olb.cost(params), od.cost(params));
        let pct = |a: f64, b: f64| (a / b - 1.0) * 100.0;
        // Utilization: busy core-seconds over 4 × trace span.
        let busy: f64 = lmc.core_busy.iter().sum();
        let util = busy / (4.0 * lmc.makespan) * 100.0;
        println!(
            "{:>6.1} {:>6.1}/{:>6.1}/{:>6.1}% {:>6.1}/{:>6.1}/{:>6.1}% {:>15.1}%",
            mult,
            pct(cl.energy_cost, co.energy_cost),
            pct(cl.time_cost, co.time_cost),
            pct(cl.total(), co.total()),
            pct(cl.energy_cost, cd.energy_cost),
            pct(cl.time_cost, cd.time_cost),
            pct(cl.total(), cd.total()),
            util
        );
    }
    println!("\n(paper reports: vs OLB −11/−31/−17%, vs OD −11/−46/−24%)");
}
