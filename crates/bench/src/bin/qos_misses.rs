//! Extension experiment: interactive QoS under firm deadlines.
//!
//! Section II-A defines interactive tasks as having "early and firm
//! deadlines", but Fig. 3 only reports aggregate cost. This experiment
//! attaches a firm relative deadline to every interactive query and
//! reports the *miss rate* per scheduler across deadline tightness —
//! the metric an online-judge operator actually watches.

use dvfs_baselines::{OlbOnline, OnDemandOnline};
use dvfs_core::LeastMarginalCost;
use dvfs_model::{CostParams, Platform, TaskClass};
use dvfs_sim::{GovernorKind, SimConfig, SimReport, Simulator};
use dvfs_workloads::JudgeTraceConfig;
use std::collections::HashMap;

fn run(platform: &Platform, trace: &[dvfs_model::Task], which: &str) -> SimReport {
    let params = CostParams::online_paper();
    let cfg = match which {
        "od" => SimConfig::new(platform.clone()).with_governor(GovernorKind::ondemand_paper()),
        _ => SimConfig::new(platform.clone()),
    };
    let mut sim = Simulator::new(cfg);
    sim.add_tasks(trace);
    match which {
        "lmc" => {
            let mut p = LeastMarginalCost::new(platform, params);
            sim.run(&mut p)
        }
        "olb" => {
            let mut p = OlbOnline::new(platform.num_cores());
            sim.run(&mut p)
        }
        _ => {
            let mut p = OnDemandOnline::new(platform.num_cores());
            sim.run(&mut p)
        }
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let platform = Platform::i7_950_quad();
    println!("Interactive deadline-miss rates under firm relative deadlines\n");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "deadline", "LMC misses", "OLB misses", "OD misses"
    );
    for rel_deadline in [5.0f64, 1.0, 0.3, 0.1, 0.03] {
        let mut cfg = JudgeTraceConfig::paper_heavy(seed).with_interactive_deadline(rel_deadline);
        cfg.non_interactive /= 4;
        cfg.interactive /= 4;
        let trace = cfg.generate();
        let deadlines: HashMap<_, _> = trace
            .iter()
            .filter_map(|t| t.deadline.map(|d| (t.id, d)))
            .collect();
        let n_interactive = trace
            .iter()
            .filter(|t| t.class == TaskClass::Interactive)
            .count();
        let rate =
            |r: &SimReport| 100.0 * r.deadline_misses(&deadlines) as f64 / n_interactive as f64;
        let lmc = run(&platform, &trace, "lmc");
        let olb = run(&platform, &trace, "olb");
        let od = run(&platform, &trace, "od");
        println!(
            "{:>9.2}s {:>13.2}% {:>13.2}% {:>13.2}%",
            rel_deadline,
            rate(&lmc),
            rate(&olb),
            rate(&od)
        );
    }
    println!("\n(LMC preempts for interactive work; OLB/OD only prioritize within the queue)");
}
