//! Empirical optimality validation of Workload Based Greedy at scale.
//!
//! Theorems 4–5 are verified against exhaustive search for tiny
//! instances in the unit tests; here a randomized hill-climber attacks
//! WBG plans for hundreds of tasks on a heterogeneous platform, across
//! many seeds in parallel. Finding even one improving move would
//! falsify the optimality claim (or our implementation).
//!
//! Usage: `validate_wbg [n_instances] [tasks_per_instance] [moves]`

use dvfs_core::batch::predict_plan_cost;
use dvfs_core::schedule_wbg;
use dvfs_core::validate::{local_search, random_plan};
use dvfs_model::task::batch_workload;
use dvfs_model::{CostParams, Platform};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_instances: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let n_tasks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let moves: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let params = CostParams::batch_paper();

    let results: Vec<(u64, usize, f64, f64)> = (0..n_instances)
        .into_par_iter()
        .map(|seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let cycles: Vec<u64> = (0..n_tasks)
                .map(|_| rng.gen_range(1..50_000_000_000))
                .collect();
            let tasks = batch_workload(&cycles);
            let platform = Platform::big_little(2, 2);
            let wbg = schedule_wbg(&tasks, &platform, params);
            let wbg_cost = predict_plan_cost(&wbg, &tasks, &platform, params);
            // Attack from WBG itself.
            let from_wbg = local_search(&wbg, &tasks, &platform, params, moves, seed + 1000);
            // And independently from a random start.
            let start = random_plan(&tasks, &platform, seed + 2000);
            let from_rand = local_search(&start, &tasks, &platform, params, moves, seed + 3000);
            (seed, from_wbg.improvements, wbg_cost, from_rand.cost)
        })
        .collect();

    println!(
        "WBG optimality attack: {n_instances} instances × {n_tasks} tasks × {moves} moves each\n"
    );
    println!(
        "{:>6} {:>18} {:>16} {:>20}",
        "seed", "improving moves", "WBG cost", "random-start best"
    );
    let mut falsified = 0;
    for (seed, improvements, wbg_cost, rand_best) in &results {
        println!(
            "{:>6} {:>18} {:>16.2} {:>19.2} ({:+.2}%)",
            seed,
            improvements,
            wbg_cost,
            rand_best,
            (rand_best / wbg_cost - 1.0) * 100.0
        );
        if *improvements > 0 || *rand_best < wbg_cost * (1.0 - 1e-9) {
            falsified += 1;
        }
    }
    println!(
        "\n{} of {} instances falsified WBG optimality (expected: 0).",
        falsified, n_instances
    );
    std::process::exit(i32::from(falsified > 0));
}
