//! The reproduction of every evaluation artifact in Section V.

use dvfs_baselines::{
    olb_assignment, power_saving_config, GovernedPlanPolicy, OlbOnline, OnDemandOnline,
};
use dvfs_core::batch::predict_plan_cost;
use dvfs_core::PlanPolicy;
use dvfs_core::{schedule_wbg, LeastMarginalCost};
use dvfs_model::{CoreSpec, CostParams, Platform, RateTable, Task};
use dvfs_power::{memory_contention, PowerMeter};
use dvfs_sim::{GovernorKind, Policy, SimConfig, SimReport, Simulator};
use dvfs_workloads::{spec_batch_tasks, JudgeTraceConfig, SpecInput};

/// One labelled cost row: absolute energy (J), waiting (s), and their
/// monetary components under the experiment's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Scheduler label.
    pub name: String,
    /// Active energy in joules.
    pub energy_joules: f64,
    /// Sum of task turnaround times in seconds.
    pub waiting_seconds: f64,
    /// Makespan in seconds.
    pub makespan: f64,
    /// Energy cost (`Re · energy`).
    pub energy_cost: f64,
    /// Time cost (`Rt · waiting`).
    pub time_cost: f64,
}

impl CostRow {
    /// Total monetary cost.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.energy_cost + self.time_cost
    }

    fn from_report(name: &str, report: &SimReport, params: CostParams) -> Self {
        let c = report.cost(params);
        CostRow {
            name: name.to_string(),
            energy_joules: c.energy_joules,
            waiting_seconds: c.waiting_seconds,
            makespan: report.makespan,
            energy_cost: c.energy_cost,
            time_cost: c.time_cost,
        }
    }
}

/// The paper's quad-core platform with the full Table II rate set.
#[must_use]
pub fn paper_platform() -> Platform {
    Platform::i7_950_quad()
}

fn run_policy(cfg: SimConfig, tasks: &[Task], policy: &mut dyn Policy) -> SimReport {
    let mut sim = Simulator::new(cfg);
    sim.add_tasks(tasks);
    sim.run(policy)
}

// ---------------------------------------------------------------------
// Figure 1 — model verification (Sim vs Exp)
// ---------------------------------------------------------------------

/// Result of the Fig. 1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// Analytic-model prediction ("Sim" bars).
    pub sim: CostRow,
    /// Full-simulator measurement with contention and a noisy power
    /// meter ("Exp" bars).
    pub exp: CostRow,
}

impl Fig1Result {
    /// `Exp/Sim` total-cost ratio (the paper reports ≈ 1.08).
    #[must_use]
    pub fn cost_gap(&self) -> f64 {
        self.exp.total() / self.sim.total()
    }
}

/// Fig. 1: verify the analytic cost model against the "hardware"
/// (the contention-and-meter simulator). Uses the paper's setup: the 24
/// SPEC workloads, only the 1.6/3.0 GHz rates, `Re = 0.1`, `Rt = 0.4`,
/// a WBG-generated plan executed on both paths.
#[must_use]
pub fn run_fig1(seed: u64) -> Fig1Result {
    let params = CostParams::batch_paper();
    let table = RateTable::i7_950_two_rates();
    let platform =
        Platform::homogeneous(4, CoreSpec::new(table).with_idle_power(2.0)).expect("4 cores");
    let tasks = spec_batch_tasks(SpecInput::Both);
    let plan = schedule_wbg(&tasks, &platform, params);

    // "Sim": the analytic model (Equations 1–8) applied to the plan.
    let predicted_total = predict_plan_cost(&plan, &tasks, &platform, params);
    // Decompose analytically per core for the energy/time split.
    let lookup: std::collections::HashMap<_, _> = tasks.iter().map(|t| (t.id, t.cycles)).collect();
    let (mut energy, mut waiting, mut makespan) = (0.0f64, 0.0f64, 0.0f64);
    for (j, seq) in plan.per_core.iter().enumerate() {
        let table = &platform.core(j).expect("in range").rates;
        let mut clock = 0.0;
        for &(tid, rate) in seq {
            let cycles = lookup[&tid];
            clock += table.exec_time(rate, cycles);
            energy += table.energy(rate, cycles);
            waiting += clock;
        }
        makespan = makespan.max(clock);
    }
    let sim_row = CostRow {
        name: "Sim (model)".into(),
        energy_joules: energy,
        waiting_seconds: waiting,
        makespan,
        energy_cost: params.re * energy,
        time_cost: params.rt * waiting,
    };
    debug_assert!((sim_row.total() - predicted_total).abs() / predicted_total < 1e-9);

    // "Exp": execute the plan on the contended machine and measure the
    // energy with the sampled power meter, idle-subtracted.
    let cfg = SimConfig::new(platform.clone())
        .with_contention(memory_contention(0.03))
        .with_power_timeline();
    let report = run_policy(cfg, &tasks, &mut PlanPolicy::new(plan));
    let meter = PowerMeter::dw6091_like(seed);
    let idle_watts = platform.total_idle_power();
    let reading = meter.measure(&report.power_timeline, report.makespan, idle_watts);
    let measured_energy = reading.active_energy(idle_watts);
    let measured_waiting = report.total_turnaround();
    let exp_row = CostRow {
        name: "Exp (measured)".into(),
        energy_joules: measured_energy,
        waiting_seconds: measured_waiting,
        makespan: report.makespan,
        energy_cost: params.re * measured_energy,
        time_cost: params.rt * measured_waiting,
    };
    Fig1Result {
        sim: sim_row,
        exp: exp_row,
    }
}

// ---------------------------------------------------------------------
// Figure 2 — batch-mode scheduler comparison
// ---------------------------------------------------------------------

/// Result of the Fig. 2 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// Workload Based Greedy.
    pub wbg: CostRow,
    /// Opportunistic Load Balancing (on-demand governor).
    pub olb: CostRow,
    /// Power Saving (on-demand capped to the lower half).
    pub ps: CostRow,
}

/// Fig. 2: WBG vs OLB vs Power Saving on the 24 SPEC workloads over the
/// quad-core platform, `Re = 0.1` ¢/J, `Rt = 0.4` ¢/s.
#[must_use]
pub fn run_fig2() -> Fig2Result {
    let params = CostParams::batch_paper();
    let tasks = spec_batch_tasks(SpecInput::Both);
    let platform = paper_platform();

    // WBG: userspace frequencies from the plan.
    let plan = schedule_wbg(&tasks, &platform, params);
    let wbg_report = run_policy(
        SimConfig::new(platform.clone()),
        &tasks,
        &mut PlanPolicy::new(plan),
    );

    // OLB: earliest-ready placement, on-demand governor (ramps to max
    // under full load, exactly the paper's configuration).
    let seqs = olb_assignment(&tasks, &platform, None);
    let olb_report = run_policy(
        SimConfig::new(platform.clone()).with_governor(GovernorKind::ondemand_paper()),
        &tasks,
        &mut GovernedPlanPolicy::new("olb", seqs),
    );

    // Power Saving: frequencies limited to {1.6, 2.0, 2.4} GHz (cap 2).
    let seqs = olb_assignment(&tasks, &platform, Some(2));
    let ps_report = run_policy(
        power_saving_config(platform, 2),
        &tasks,
        &mut GovernedPlanPolicy::new("power-saving", seqs),
    );

    Fig2Result {
        wbg: CostRow::from_report("WBG", &wbg_report, params),
        olb: CostRow::from_report("OLB", &olb_report, params),
        ps: CostRow::from_report("PowerSaving", &ps_report, params),
    }
}

// ---------------------------------------------------------------------
// Figure 3 — online-mode scheduler comparison
// ---------------------------------------------------------------------

/// Result of the Fig. 3 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Result {
    /// Least Marginal Cost.
    pub lmc: CostRow,
    /// Opportunistic Load Balancing.
    pub olb: CostRow,
    /// On-demand with round-robin placement.
    pub od: CostRow,
    /// The trace size used.
    pub num_tasks: usize,
}

/// Fig. 3: LMC vs OLB vs On-demand on a synthesized Judgegirl-style
/// trace, `Re = 0.4` ¢/J, `Rt = 0.1` ¢/s. `scale` divides the trace
/// size (1 = the full 51 293-task trace).
#[must_use]
pub fn run_fig3(seed: u64, scale: usize) -> Fig3Result {
    let params = CostParams::online_paper();
    let platform = paper_platform();
    let cfg = if scale <= 1 {
        JudgeTraceConfig::paper_heavy(seed)
    } else {
        let mut c = JudgeTraceConfig::paper_heavy(seed);
        c.non_interactive = (c.non_interactive / scale).max(1);
        c.interactive = (c.interactive / scale).max(1);
        c
    };
    let trace = cfg.generate();

    let lmc_report = {
        let mut policy = LeastMarginalCost::new(&platform, params);
        run_policy(SimConfig::new(platform.clone()), &trace, &mut policy)
    };
    let olb_report = {
        let mut policy = OlbOnline::new(platform.num_cores());
        run_policy(SimConfig::new(platform.clone()), &trace, &mut policy)
    };
    let od_report = {
        let mut policy = OnDemandOnline::new(platform.num_cores());
        run_policy(
            SimConfig::new(platform.clone()).with_governor(GovernorKind::ondemand_paper()),
            &trace,
            &mut policy,
        )
    };

    Fig3Result {
        lmc: CostRow::from_report("LMC", &lmc_report, params),
        olb: CostRow::from_report("OLB", &olb_report, params),
        od: CostRow::from_report("On-demand", &od_report, params),
        num_tasks: trace.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_gap_is_positive_and_moderate() {
        let r = run_fig1(1);
        let gap = r.cost_gap();
        assert!(
            gap > 1.0 && gap < 1.2,
            "Exp/Sim total-cost gap {gap} outside the paper's regime"
        );
    }

    #[test]
    fn fig2_wbg_wins_total_cost() {
        let r = run_fig2();
        assert!(r.wbg.total() < r.olb.total(), "WBG must beat OLB");
        assert!(r.wbg.total() < r.ps.total(), "WBG must beat PowerSaving");
        assert!(
            r.wbg.energy_joules < r.olb.energy_joules * 0.7,
            "WBG energy {} not far below OLB {}",
            r.wbg.energy_joules,
            r.olb.energy_joules
        );
        assert!(
            r.wbg.energy_joules < r.ps.energy_joules,
            "WBG should also use less energy than PowerSaving"
        );
    }

    #[test]
    fn fig3_scaled_lmc_wins_total_cost() {
        let r = run_fig3(7, 64);
        assert!(r.lmc.total() < r.olb.total(), "LMC must beat OLB: {r:#?}");
        assert!(
            r.lmc.total() < r.od.total(),
            "LMC must beat On-demand: {r:#?}"
        );
        assert!(r.lmc.energy_joules < r.olb.energy_joules);
    }
}
