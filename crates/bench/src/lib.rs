//! # dvfs-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation (Section V), shared by the `table1`/`table2`/`fig1`/
//! `fig2`/`fig3`/`experiments` binaries, the integration tests, and the
//! Criterion benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod format;

pub use experiments::{run_fig1, run_fig2, run_fig3, CostRow, Fig1Result, Fig2Result, Fig3Result};
