//! Batch execution plans.
//!
//! Batch-mode schedulers (LTL, WBG, the batch baselines) produce a
//! *plan*: for each core, an execution sequence of `(task, rate)` pairs.
//! The plan is a pure model artifact — the algorithms in `dvfs-core`
//! produce one, and any executor (the virtual-time simulator, the
//! wall-clock service) can replay it.

use crate::cost::{sequence_cost, CostParams};
use crate::platform::{CoreId, Platform};
use crate::rates::RateIdx;
use crate::task::{Task, TaskId};

/// A batch execution plan: per-core ordered `(task, rate)` sequences.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchPlan {
    /// `per_core[j]` is the execution order on core `j` with the rate
    /// each task runs at (rates are indices into core `j`'s table).
    pub per_core: Vec<Vec<(TaskId, RateIdx)>>,
}

impl BatchPlan {
    /// Plan with `n` empty core sequences.
    #[must_use]
    pub fn empty(n_cores: usize) -> Self {
        BatchPlan {
            per_core: vec![Vec::new(); n_cores],
        }
    }

    /// Total number of planned task placements.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// Iterate all `(core, position, task, rate)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (CoreId, usize, TaskId, RateIdx)> + '_ {
        self.per_core.iter().enumerate().flat_map(|(j, seq)| {
            seq.iter()
                .enumerate()
                .map(move |(pos, &(t, r))| (j, pos, t, r))
        })
    }
}

/// Predict the analytic total cost of a batch plan on a platform:
/// per-core first-principles sequence cost (Equation 8), summed.
///
/// # Panics
/// Panics when the plan references a task id absent from `tasks` or a
/// core outside the platform.
#[must_use]
pub fn predict_plan_cost(
    plan: &BatchPlan,
    tasks: &[Task],
    platform: &Platform,
    params: CostParams,
) -> f64 {
    let lookup: std::collections::BTreeMap<TaskId, u64> =
        tasks.iter().map(|t| (t.id, t.cycles)).collect();
    plan.per_core
        .iter()
        .enumerate()
        .map(|(j, seq)| {
            let table = &platform.core(j).expect("core in range").rates;
            let pairs: Vec<(u64, RateIdx)> =
                seq.iter().map(|&(tid, r)| (lookup[&tid], r)).collect();
            sequence_cost(params, table, &pairs).total()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CoreSpec;
    use crate::rates::RateTable;
    use crate::task::batch_workload;

    #[test]
    fn empty_plan_has_no_tasks() {
        let plan = BatchPlan::empty(4);
        assert_eq!(plan.per_core.len(), 4);
        assert_eq!(plan.num_tasks(), 0);
        assert_eq!(plan.entries().count(), 0);
    }

    #[test]
    fn entries_enumerate_positions_in_order() {
        let plan = BatchPlan {
            per_core: vec![vec![(TaskId(3), 0), (TaskId(1), 2)], vec![(TaskId(2), 4)]],
        };
        assert_eq!(plan.num_tasks(), 3);
        let got: Vec<_> = plan.entries().collect();
        assert_eq!(
            got,
            vec![
                (0, 0, TaskId(3), 0),
                (0, 1, TaskId(1), 2),
                (1, 0, TaskId(2), 4),
            ]
        );
    }

    #[test]
    fn predicted_cost_matches_sequence_cost_per_core() {
        let platform = Platform::homogeneous(2, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        let tasks = batch_workload(&[1_000_000_000, 2_000_000_000, 500_000_000]);
        let params = CostParams::batch_paper();
        let plan = BatchPlan {
            per_core: vec![vec![(TaskId(2), 0), (TaskId(0), 1)], vec![(TaskId(1), 3)]],
        };
        let want: f64 = [
            sequence_cost(
                params,
                &platform.core(0).unwrap().rates,
                &[(500_000_000, 0), (1_000_000_000, 1)],
            )
            .total(),
            sequence_cost(
                params,
                &platform.core(1).unwrap().rates,
                &[(2_000_000_000, 3)],
            )
            .total(),
        ]
        .iter()
        .sum();
        let got = predict_plan_cost(&plan, &tasks, &platform, params);
        assert!((got - want).abs() < 1e-12);
    }
}
