//! The cost model of Sections II-C and III-B.
//!
//! The cost of a task is the sum of its energy cost
//! `C_{k,e} = Re * L_k * E(p)` (Equation 3) and its temporal cost
//! `C_{k,t} = Rt * sum_{i<=k} L_i * T(p_i)` (Equation 4). The total cost
//! of a sequence rewrites into the position-dependent form
//! `C = sum_k C(k, p_k) * L_k` with
//! `C(k, p) = Re*E(p) + (n-k+1)*Rt*T(p)` (Equations 12-13), or with the
//! backward index `C^B(k, p) = Re*E(p) + k*Rt*T(p)` (Equation 20).

use crate::error::ModelError;
use crate::rates::{RateIdx, RateTable};
use serde::{Deserialize, Serialize};

/// The monetary constants of the cost function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// `Re`: amount paid per joule of energy (e.g. cents per joule).
    pub re: f64,
    /// `Rt`: amount paid per second a user waits for task completion.
    pub rt: f64,
}

impl CostParams {
    /// Construct validated cost parameters.
    ///
    /// # Errors
    /// Returns [`ModelError::InvalidCostParams`] unless both are positive
    /// and finite.
    pub fn new(re: f64, rt: f64) -> Result<Self, ModelError> {
        if !(re.is_finite() && rt.is_finite() && re > 0.0 && rt > 0.0) {
            return Err(ModelError::InvalidCostParams);
        }
        Ok(CostParams { re, rt })
    }

    /// The batch-mode setting of Section V-A: `Re = 0.1` cents/J,
    /// `Rt = 0.4` cents/s.
    #[must_use]
    pub fn batch_paper() -> Self {
        CostParams { re: 0.1, rt: 0.4 }
    }

    /// The online-mode setting of Section V-B: `Re = 0.4` cents/J,
    /// `Rt = 0.1` cents/s.
    #[must_use]
    pub fn online_paper() -> Self {
        CostParams { re: 0.4, rt: 0.1 }
    }

    /// The forward position-dependent per-cycle cost `C(k, p)` of
    /// Equation 12: `Re*E(p) + (n-k+1)*Rt*T(p)`, where `k` is the 1-based
    /// position from the front of an `n`-task execution sequence.
    #[must_use]
    pub fn c_forward(&self, table: &RateTable, n: usize, k: usize, p: RateIdx) -> f64 {
        debug_assert!(k >= 1 && k <= n);
        self.c_backward(table, n - k + 1, p)
    }

    /// The backward position-dependent per-cycle cost `C^B(k, p)` of
    /// Equation 20: `Re*E(p) + k*Rt*T(p)`, where `k` is the 1-based
    /// position from the *end* of the execution sequence (`k` tasks,
    /// including this one, pay for this task's execution time).
    #[must_use]
    pub fn c_backward(&self, table: &RateTable, k_backward: usize, p: RateIdx) -> f64 {
        let r = table.rate(p);
        self.re * r.energy_per_cycle + k_backward as f64 * self.rt * r.time_per_cycle
    }

    /// `C^B(k) = min_p C^B(k, p)` with its minimizing rate, scanning all
    /// rates. Ties choose the higher rate, matching the paper's
    /// dominating-position convention. (The Θ(|P|)-preprocessed version
    /// lives in `dvfs-core::dominating`.)
    #[must_use]
    pub fn c_backward_min(&self, table: &RateTable, k_backward: usize) -> (f64, RateIdx) {
        let mut best = (f64::INFINITY, 0);
        for p in 0..table.len() {
            let c = self.c_backward(table, k_backward, p);
            if c <= best.0 {
                best = (c, p);
            }
        }
        best
    }
}

/// Energy, time, and total monetary cost of an executed workload.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Total energy in joules.
    pub energy_joules: f64,
    /// Sum of task turnaround times in seconds (each task's completion
    /// time minus its arrival time; for batch mode, its completion time).
    pub waiting_seconds: f64,
    /// Energy cost `Re * energy_joules`.
    pub energy_cost: f64,
    /// Temporal cost `Rt * waiting_seconds`.
    pub time_cost: f64,
}

impl CostBreakdown {
    /// Build a breakdown from raw energy and waiting totals.
    #[must_use]
    pub fn from_totals(params: CostParams, energy_joules: f64, waiting_seconds: f64) -> Self {
        CostBreakdown {
            energy_joules,
            waiting_seconds,
            energy_cost: params.re * energy_joules,
            time_cost: params.rt * waiting_seconds,
        }
    }

    /// The total cost `C = C_e + C_t`.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.energy_cost + self.time_cost
    }

    /// Element-wise accumulation of another breakdown.
    pub fn accumulate(&mut self, other: &CostBreakdown) {
        self.energy_joules += other.energy_joules;
        self.waiting_seconds += other.waiting_seconds;
        self.energy_cost += other.energy_cost;
        self.time_cost += other.time_cost;
    }
}

/// Evaluate the total cost of a single-core batch execution sequence from
/// first principles (Equation 8): tasks run back-to-back in the given
/// order, each at its assigned rate; the temporal cost of task `k` is
/// `Rt` times its completion time.
///
/// `sequence` is `(cycles, rate)` pairs in execution order.
#[must_use]
pub fn sequence_cost(
    params: CostParams,
    table: &RateTable,
    sequence: &[(u64, RateIdx)],
) -> CostBreakdown {
    let mut clock = 0.0;
    let mut energy = 0.0;
    let mut waiting = 0.0;
    for &(cycles, rate) in sequence {
        clock += table.exec_time(rate, cycles);
        energy += table.energy(rate, cycles);
        waiting += clock;
    }
    CostBreakdown::from_totals(params, energy, waiting)
}

/// Evaluate the same total via the positional rewrite (Equation 13):
/// `C = sum_k C(k, p_k) * L_k`. Used to cross-check [`sequence_cost`].
#[must_use]
pub fn positional_cost(params: CostParams, table: &RateTable, sequence: &[(u64, RateIdx)]) -> f64 {
    let n = sequence.len();
    sequence
        .iter()
        .enumerate()
        .map(|(i, &(cycles, rate))| params.c_forward(table, n, i + 1, rate) * cycles as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RateTable {
        RateTable::i7_950_table2()
    }

    #[test]
    fn params_validation() {
        assert!(CostParams::new(0.1, 0.4).is_ok());
        assert_eq!(
            CostParams::new(0.0, 0.4),
            Err(ModelError::InvalidCostParams)
        );
        assert_eq!(
            CostParams::new(0.1, -1.0),
            Err(ModelError::InvalidCostParams)
        );
        assert_eq!(
            CostParams::new(f64::INFINITY, 0.4),
            Err(ModelError::InvalidCostParams)
        );
    }

    #[test]
    fn paper_presets() {
        let b = CostParams::batch_paper();
        assert_eq!((b.re, b.rt), (0.1, 0.4));
        let o = CostParams::online_paper();
        assert_eq!((o.re, o.rt), (0.4, 0.1));
    }

    #[test]
    fn forward_and_backward_positions_agree() {
        let t = table();
        let params = CostParams::batch_paper();
        let n = 10;
        for k in 1..=n {
            for p in 0..t.len() {
                let f = params.c_forward(&t, n, k, p);
                let b = params.c_backward(&t, n - k + 1, p);
                assert!((f - b).abs() < 1e-18);
            }
        }
    }

    #[test]
    fn c_backward_is_decreasing_in_forward_position() {
        // Lemma 2: C*(k) decreases in the forward index k, i.e. the
        // backward-index minimum C^B*(k) increases with k.
        let t = table();
        let params = CostParams::batch_paper();
        let mut prev = 0.0;
        for kb in 1..200 {
            let (c, _) = params.c_backward_min(&t, kb);
            assert!(c > prev, "C^B*({kb}) must strictly increase");
            prev = c;
        }
    }

    #[test]
    fn higher_backward_positions_prefer_faster_rates() {
        let t = table();
        let params = CostParams::batch_paper();
        let mut prev_rate = 0;
        for kb in 1..5000 {
            let (_, p) = params.c_backward_min(&t, kb);
            assert!(
                p >= prev_rate,
                "optimal rate must be non-decreasing in backward position"
            );
            prev_rate = p;
        }
        assert_eq!(prev_rate, t.max_rate(), "far positions use the max rate");
    }

    #[test]
    fn sequence_cost_matches_hand_computation() {
        let t = table();
        let params = CostParams::new(1.0, 1.0).unwrap();
        // Two tasks of 1e9 cycles at 1.6 GHz (T = .625ns, E = 3.375nJ).
        let seq = [(1_000_000_000u64, 0usize), (1_000_000_000u64, 0usize)];
        let c = sequence_cost(params, &t, &seq);
        // Energy: 2 * 3.375 J. Waiting: 0.625 + 1.25 s.
        assert!((c.energy_joules - 6.75).abs() < 1e-9);
        assert!((c.waiting_seconds - 1.875).abs() < 1e-9);
        assert!((c.total() - (6.75 + 1.875)).abs() < 1e-9);
    }

    #[test]
    fn positional_rewrite_equals_first_principles() {
        let t = table();
        let params = CostParams::batch_paper();
        let seq = [
            (123_456_789u64, 0usize),
            (987_654_321, 4),
            (55_555, 2),
            (1, 1),
            (700_000_000, 3),
        ];
        let direct = sequence_cost(params, &t, &seq).total();
        let positional = positional_cost(params, &t, &seq);
        assert!(
            (direct - positional).abs() / direct < 1e-12,
            "Equation 8 and Equation 13 must agree: {direct} vs {positional}"
        );
    }

    #[test]
    fn breakdown_accumulate_sums_fields() {
        let p = CostParams::batch_paper();
        let mut a = CostBreakdown::from_totals(p, 10.0, 20.0);
        let b = CostBreakdown::from_totals(p, 1.0, 2.0);
        a.accumulate(&b);
        assert!((a.energy_joules - 11.0).abs() < 1e-12);
        assert!((a.waiting_seconds - 22.0).abs() < 1e-12);
        assert!((a.total() - (0.1 * 11.0 + 0.4 * 22.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_costs_nothing() {
        let c = sequence_cost(CostParams::batch_paper(), &table(), &[]);
        assert_eq!(c.total(), 0.0);
    }
}
