//! Multi-core platform descriptions.
//!
//! A [`Platform`] is an ordered set of cores, each with its own
//! [`RateTable`] (per-core DVFS) and an idle power draw. Homogeneous
//! platforms share one table; heterogeneous platforms (Section III-C,
//! Theorem 5) may differ per core.

use crate::error::ModelError;
use crate::rates::RateTable;
use serde::{Deserialize, Serialize};

/// Index of a core within a platform.
pub type CoreId = usize;

/// One CPU core: its available rates and idle power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreSpec {
    /// The discrete processing rates the core supports.
    pub rates: RateTable,
    /// Power drawn while idle, in watts. The paper measures idle power
    /// separately and subtracts it; keeping it here lets the simulator
    /// report both raw and idle-subtracted energy.
    pub idle_power_watts: f64,
}

impl CoreSpec {
    /// A core with the given rate table and zero idle power.
    #[must_use]
    pub fn new(rates: RateTable) -> Self {
        CoreSpec {
            rates,
            idle_power_watts: 0.0,
        }
    }

    /// Set the idle power draw.
    #[must_use]
    pub fn with_idle_power(mut self, watts: f64) -> Self {
        self.idle_power_watts = watts;
        self
    }
}

/// A multi-core platform with per-core DVFS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    cores: Vec<CoreSpec>,
}

impl Platform {
    /// Construct a platform from explicit core specs.
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyPlatform`] when `cores` is empty.
    pub fn new(cores: Vec<CoreSpec>) -> Result<Self, ModelError> {
        if cores.is_empty() {
            return Err(ModelError::EmptyPlatform);
        }
        Ok(Platform { cores })
    }

    /// A homogeneous platform of `n` identical cores.
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyPlatform`] when `n == 0`.
    pub fn homogeneous(n: usize, core: CoreSpec) -> Result<Self, ModelError> {
        Platform::new(vec![core; n])
    }

    /// The paper's experimental platform: a quad-core Intel i7-950 with
    /// the Table II rates and a measured idle draw per core.
    #[must_use]
    pub fn i7_950_quad() -> Self {
        let core = CoreSpec::new(RateTable::i7_950_table2()).with_idle_power(2.0);
        Platform::homogeneous(4, core).expect("4 > 0")
    }

    /// A big.LITTLE-style heterogeneous platform: `n_big` fast cores with
    /// the Table II rates and `n_little` slow cores with the
    /// Exynos-4412 table the paper cites in Section II-B (0.2–1.7 GHz).
    ///
    /// # Panics
    /// Panics when both counts are zero.
    #[must_use]
    pub fn big_little(n_big: usize, n_little: usize) -> Self {
        let big = CoreSpec::new(RateTable::i7_950_table2()).with_idle_power(2.0);
        let little = CoreSpec::new(RateTable::exynos_4412()).with_idle_power(0.3);
        let mut cores = vec![big; n_big];
        cores.extend(std::iter::repeat_n(little, n_little));
        Platform::new(cores).expect("at least one core required")
    }

    /// Number of cores, `R`.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The spec of core `j`.
    ///
    /// # Errors
    /// Returns [`ModelError::CoreOutOfRange`] for an invalid index.
    pub fn core(&self, j: CoreId) -> Result<&CoreSpec, ModelError> {
        self.cores.get(j).ok_or(ModelError::CoreOutOfRange {
            core: j,
            ncores: self.cores.len(),
        })
    }

    /// All core specs in index order.
    #[must_use]
    pub fn cores(&self) -> &[CoreSpec] {
        &self.cores
    }

    /// Whether all cores share identical rate tables (homogeneous system,
    /// Section III-C / Theorem 4).
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.cores
            .windows(2)
            .all(|w| w[0].rates == w[1].rates && w[0].idle_power_watts == w[1].idle_power_watts)
    }

    /// Total idle power across all cores, in watts.
    #[must_use]
    pub fn total_idle_power(&self) -> f64 {
        self.cores.iter().map(|c| c.idle_power_watts).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_i7_is_homogeneous() {
        let p = Platform::i7_950_quad();
        assert_eq!(p.num_cores(), 4);
        assert!(p.is_homogeneous());
        assert!((p.total_idle_power() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn big_little_is_heterogeneous() {
        let p = Platform::big_little(2, 2);
        assert_eq!(p.num_cores(), 4);
        assert!(!p.is_homogeneous());
        assert!(p.core(0).unwrap().rates.len() == 5);
        assert!(p.core(2).unwrap().rates.len() == 16);
    }

    #[test]
    fn empty_platform_rejected() {
        assert_eq!(Platform::new(vec![]), Err(ModelError::EmptyPlatform));
        assert!(Platform::homogeneous(0, CoreSpec::new(RateTable::i7_950_table2())).is_err());
    }

    #[test]
    fn core_out_of_range() {
        let p = Platform::i7_950_quad();
        assert!(p.core(3).is_ok());
        assert_eq!(
            p.core(4).unwrap_err(),
            ModelError::CoreOutOfRange { core: 4, ncores: 4 }
        );
    }

    #[test]
    fn single_core_platform_is_homogeneous() {
        let p = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        assert!(p.is_homogeneous());
    }
}
