//! Error types shared across the model crate.

use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A rate table was constructed with no rate points (the paper requires
    /// `P` to be non-empty).
    EmptyRateTable,
    /// Rate points were not strictly increasing in frequency.
    NonMonotonicFrequency {
        /// Index of the offending rate point.
        index: usize,
    },
    /// Per-cycle energy `E(p)` was not strictly increasing with frequency,
    /// violating `0 < E(p1) < E(p2) < ...`.
    NonMonotonicEnergy {
        /// Index of the offending rate point.
        index: usize,
    },
    /// Per-cycle time `T(p)` was not strictly decreasing with frequency,
    /// violating `0 < ... < T(p2) < T(p1)`.
    NonMonotonicTime {
        /// Index of the offending rate point.
        index: usize,
    },
    /// A rate point contained a non-finite or non-positive value.
    InvalidRatePoint {
        /// Index of the offending rate point.
        index: usize,
    },
    /// A task was constructed with a deadline not after its arrival
    /// (the paper requires `D_k > A_k >= 0` when a deadline exists).
    DeadlineBeforeArrival,
    /// A task was constructed with a negative or non-finite arrival time.
    InvalidArrival,
    /// A task was constructed with zero required cycles.
    ZeroCycles,
    /// Cost parameters must be positive and finite.
    InvalidCostParams,
    /// A platform was constructed with no cores.
    EmptyPlatform,
    /// A core index was out of range for the platform.
    CoreOutOfRange {
        /// The requested core index.
        core: usize,
        /// The number of cores in the platform.
        ncores: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyRateTable => write!(f, "rate table must contain at least one rate"),
            ModelError::NonMonotonicFrequency { index } => {
                write!(f, "rate frequencies must strictly increase (index {index})")
            }
            ModelError::NonMonotonicEnergy { index } => write!(
                f,
                "per-cycle energy must strictly increase with frequency (index {index})"
            ),
            ModelError::NonMonotonicTime { index } => write!(
                f,
                "per-cycle time must strictly decrease with frequency (index {index})"
            ),
            ModelError::InvalidRatePoint { index } => {
                write!(
                    f,
                    "rate point {index} has non-finite or non-positive values"
                )
            }
            ModelError::DeadlineBeforeArrival => {
                write!(f, "task deadline must be strictly after its arrival")
            }
            ModelError::InvalidArrival => {
                write!(f, "task arrival must be finite and non-negative")
            }
            ModelError::ZeroCycles => write!(f, "task must require at least one cycle"),
            ModelError::InvalidCostParams => {
                write!(f, "cost parameters Re and Rt must be positive and finite")
            }
            ModelError::EmptyPlatform => write!(f, "platform must contain at least one core"),
            ModelError::CoreOutOfRange { core, ncores } => {
                write!(
                    f,
                    "core {core} out of range for platform with {ncores} cores"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty() {
        let errs = [
            ModelError::EmptyRateTable,
            ModelError::NonMonotonicFrequency { index: 1 },
            ModelError::NonMonotonicEnergy { index: 2 },
            ModelError::NonMonotonicTime { index: 3 },
            ModelError::InvalidRatePoint { index: 0 },
            ModelError::DeadlineBeforeArrival,
            ModelError::InvalidArrival,
            ModelError::ZeroCycles,
            ModelError::InvalidCostParams,
            ModelError::EmptyPlatform,
            ModelError::CoreOutOfRange { core: 5, ncores: 4 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::EmptyRateTable);
    }
}
