//! Per-task lifecycle measurement, shared by every executor.
//!
//! Both the virtual-time simulator (`dvfs-sim`) and the wall-clock
//! service executor (`dvfs-serve`) account tasks the same way; the
//! record lives here so neither has to import the other.

use crate::task::{TaskClass, TaskId};
use serde::{Deserialize, Serialize};

/// The lifecycle record of one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task identity.
    pub id: TaskId,
    /// Task class.
    pub class: TaskClass,
    /// Cycles the task required.
    pub cycles: u64,
    /// Arrival time in seconds.
    pub arrival: f64,
    /// First time the task ran on a core (`None` if it never started).
    pub first_start: Option<f64>,
    /// Completion time (`None` if unfinished when the run ended).
    pub completion: Option<f64>,
    /// Active energy attributed to this task, in joules.
    pub energy_joules: f64,
    /// Number of times the task was preempted.
    pub preemptions: u32,
}

impl TaskRecord {
    /// Turnaround time (completion − arrival), when completed.
    #[must_use]
    pub fn turnaround(&self) -> Option<f64> {
        self.completion.map(|c| c - self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turnaround_requires_completion() {
        let mut rec = TaskRecord {
            id: TaskId(1),
            class: TaskClass::Batch,
            cycles: 100,
            arrival: 1.5,
            first_start: Some(1.5),
            completion: None,
            energy_joules: 0.0,
            preemptions: 0,
        };
        assert_eq!(rec.turnaround(), None);
        rec.completion = Some(4.0);
        assert_eq!(rec.turnaround(), Some(2.5));
    }
}
