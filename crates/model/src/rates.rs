//! The processing-rate model of Section II-B.
//!
//! `P = {p_1, p_2, ...}` is a non-empty set of discrete processing rates a
//! core can use, with `0 < p_1 < p_2 < ...`. Each rate carries the
//! per-cycle energy `E(p)` (strictly increasing with the rate) and the
//! per-cycle time `T(p)` (strictly decreasing with the rate).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Index of a rate within a [`RateTable`] (0 = slowest).
pub type RateIdx = usize;

/// One processing rate `p` with its per-cycle energy and time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Processing rate in Hz (cycles per second).
    pub freq_hz: f64,
    /// `E(p)`: energy in joules consumed per executed cycle.
    pub energy_per_cycle: f64,
    /// `T(p)`: time in seconds to execute one cycle (normally `1/freq`).
    pub time_per_cycle: f64,
}

impl RatePoint {
    /// Construct a rate point from a frequency in GHz and a per-cycle
    /// energy in nanojoules, deriving `T(p) = 1/p`.
    #[must_use]
    pub fn from_ghz_nj(freq_ghz: f64, energy_nj: f64) -> Self {
        RatePoint {
            freq_hz: freq_ghz * 1e9,
            energy_per_cycle: energy_nj * 1e-9,
            time_per_cycle: 1.0 / (freq_ghz * 1e9),
        }
    }

    /// Active power in watts when a core runs continuously at this rate:
    /// `P = E(p) / T(p)` (joules per cycle over seconds per cycle).
    #[must_use]
    pub fn active_power_watts(&self) -> f64 {
        self.energy_per_cycle / self.time_per_cycle
    }

    fn validate(&self) -> bool {
        self.freq_hz.is_finite()
            && self.freq_hz > 0.0
            && self.energy_per_cycle.is_finite()
            && self.energy_per_cycle > 0.0
            && self.time_per_cycle.is_finite()
            && self.time_per_cycle > 0.0
    }
}

/// The ordered set `P` of processing rates available on a core.
///
/// Invariants (validated at construction):
/// * non-empty;
/// * frequency strictly increasing;
/// * `E(p)` strictly increasing;
/// * `T(p)` strictly decreasing;
/// * all values finite and positive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateTable {
    points: Vec<RatePoint>,
}

impl RateTable {
    /// Construct a validated rate table from rate points sorted by
    /// ascending frequency.
    ///
    /// # Errors
    /// Returns a [`ModelError`] describing the first violated invariant.
    pub fn new(points: Vec<RatePoint>) -> Result<Self, ModelError> {
        if points.is_empty() {
            return Err(ModelError::EmptyRateTable);
        }
        for (i, p) in points.iter().enumerate() {
            if !p.validate() {
                return Err(ModelError::InvalidRatePoint { index: i });
            }
        }
        for i in 1..points.len() {
            if points[i].freq_hz <= points[i - 1].freq_hz {
                return Err(ModelError::NonMonotonicFrequency { index: i });
            }
            if points[i].energy_per_cycle <= points[i - 1].energy_per_cycle {
                return Err(ModelError::NonMonotonicEnergy { index: i });
            }
            if points[i].time_per_cycle >= points[i - 1].time_per_cycle {
                return Err(ModelError::NonMonotonicTime { index: i });
            }
        }
        Ok(RateTable { points })
    }

    /// The batch-mode parameters of Table II: the Intel i7-950 subset used
    /// throughout Section V-A, frequencies {1.6, 2.0, 2.4, 2.8, 3.0} GHz
    /// with measured per-cycle energies {3.375, 4.22, 5.0, 6.0, 7.1} nJ and
    /// per-cycle times {0.625, 0.5, 0.42, 0.36, 0.33} ns.
    #[must_use]
    pub fn i7_950_table2() -> Self {
        // Table II lists T(p) with rounding (0.42 instead of 1/2.4 etc.);
        // we reproduce the published values exactly.
        let pts = vec![
            RatePoint {
                freq_hz: 1.6e9,
                energy_per_cycle: 3.375e-9,
                time_per_cycle: 0.625e-9,
            },
            RatePoint {
                freq_hz: 2.0e9,
                energy_per_cycle: 4.22e-9,
                time_per_cycle: 0.5e-9,
            },
            RatePoint {
                freq_hz: 2.4e9,
                energy_per_cycle: 5.0e-9,
                time_per_cycle: 0.42e-9,
            },
            RatePoint {
                freq_hz: 2.8e9,
                energy_per_cycle: 6.0e-9,
                time_per_cycle: 0.36e-9,
            },
            RatePoint {
                freq_hz: 3.0e9,
                energy_per_cycle: 7.1e-9,
                time_per_cycle: 0.33e-9,
            },
        ];
        RateTable::new(pts).expect("Table II parameters satisfy the model invariants")
    }

    /// The two-rate configuration used for model verification (Fig. 1):
    /// only 1.6 GHz and 3.0 GHz from Table II.
    #[must_use]
    pub fn i7_950_two_rates() -> Self {
        let t = Self::i7_950_table2();
        RateTable::new(vec![t.points[0], t.points[4]]).expect("subset preserves invariants")
    }

    /// The lower-half restriction used by the Power Saving baseline in
    /// Section V-A.3: frequencies limited to {1.6, 2.0, 2.4} GHz.
    #[must_use]
    pub fn i7_950_power_saving() -> Self {
        let t = Self::i7_950_table2();
        RateTable::new(t.points[..3].to_vec()).expect("subset preserves invariants")
    }

    /// Build a table from measured `(GHz, watts)` pairs, the way the
    /// paper built Table II: "to obtain the values of E(pk), we measure
    /// the power consumption of a core with 100% loading using different
    /// pk, and divide the result by pk". `T(p) = 1/p`.
    ///
    /// # Errors
    /// Returns a [`ModelError`] when the derived table violates the
    /// model invariants (e.g. measured power not growing superlinearly
    /// enough for `E(p)` to increase).
    pub fn from_measurements(pairs: &[(f64, f64)]) -> Result<Self, ModelError> {
        let pts = pairs
            .iter()
            .map(|&(ghz, watts)| {
                let freq_hz = ghz * 1e9;
                RatePoint {
                    freq_hz,
                    energy_per_cycle: watts / freq_hz,
                    time_per_cycle: 1.0 / freq_hz,
                }
            })
            .collect();
        RateTable::new(pts)
    }

    /// An ARM Exynos-4412-like rate table. Section II-B cites this CPU's
    /// range ("0.2, 0.3 to 1.7 GHz"); we expose sixteen 100 MHz steps
    /// from 0.2 to 1.7 GHz with a quadratic per-cycle energy profile
    /// scaled to mobile-class power (≈1.5 W at the top level).
    #[must_use]
    pub fn exynos_4412() -> Self {
        let pts = (0..16)
            .map(|i| {
                let f = 0.2 + 0.1 * i as f64;
                // E(p) = 0.3·f² nJ/cycle → P(top) = 0.3·1.7³ ≈ 1.47 W.
                RatePoint::from_ghz_nj(f, 0.3 * f * f)
            })
            .collect();
        RateTable::new(pts).expect("Exynos profile satisfies the model invariants")
    }

    /// The NP-completeness gadget of Theorem 1: two rates where the fast
    /// one is twice the speed (`T(pl)=2, T(ph)=1`) and four times the
    /// per-cycle energy (`E(pl)=1, E(ph)=4`), matching the classical
    /// "dynamic power proportional to frequency squared" assumption.
    #[must_use]
    pub fn theorem1_gadget() -> Self {
        RateTable::new(vec![
            RatePoint {
                freq_hz: 0.5,
                energy_per_cycle: 1.0,
                time_per_cycle: 2.0,
            },
            RatePoint {
                freq_hz: 1.0,
                energy_per_cycle: 4.0,
                time_per_cycle: 1.0,
            },
        ])
        .expect("gadget satisfies the model invariants")
    }

    /// A synthetic cubic-power rate table: `f` GHz levels with
    /// `E(p) ∝ p^2` per cycle (so active power `∝ p^3`), convenient for
    /// stress tests and sweeps with arbitrary numbers of levels.
    ///
    /// # Panics
    /// Panics when `levels == 0` or `min_ghz >= max_ghz`.
    #[must_use]
    pub fn synthetic_quadratic(levels: usize, min_ghz: f64, max_ghz: f64) -> Self {
        assert!(levels > 0, "need at least one level");
        assert!(min_ghz < max_ghz || levels == 1, "min must be below max");
        let pts = (0..levels)
            .map(|i| {
                let f = if levels == 1 {
                    min_ghz
                } else {
                    min_ghz + (max_ghz - min_ghz) * i as f64 / (levels - 1) as f64
                };
                RatePoint::from_ghz_nj(f, 1.3 * f * f)
            })
            .collect();
        RateTable::new(pts).expect("synthetic table satisfies the model invariants")
    }

    /// Number of rates, `|P|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: `P` is non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The rate points, ascending by frequency.
    #[must_use]
    pub fn points(&self) -> &[RatePoint] {
        &self.points
    }

    /// The rate at `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of range.
    #[must_use]
    pub fn rate(&self, idx: RateIdx) -> RatePoint {
        self.points[idx]
    }

    /// Index of the slowest rate (`p_1`).
    #[must_use]
    pub fn min_rate(&self) -> RateIdx {
        0
    }

    /// Index of the fastest rate (`p_|P|`).
    #[must_use]
    pub fn max_rate(&self) -> RateIdx {
        self.points.len() - 1
    }

    /// Find the index of the rate with the given frequency in Hz, within
    /// 0.5 kHz tolerance. Returns `None` when the frequency is not offered.
    #[must_use]
    pub fn index_of_freq(&self, freq_hz: f64) -> Option<RateIdx> {
        self.points
            .iter()
            .position(|p| (p.freq_hz - freq_hz).abs() < 500.0)
    }

    /// Execution time in seconds for `cycles` cycles at rate `idx`
    /// (Equation 2: `t_k = L_k * T(p)`).
    #[must_use]
    pub fn exec_time(&self, idx: RateIdx, cycles: u64) -> f64 {
        cycles as f64 * self.points[idx].time_per_cycle
    }

    /// Energy in joules for `cycles` cycles at rate `idx`
    /// (Equation 1: `e_k = L_k * E(p)`).
    #[must_use]
    pub fn energy(&self, idx: RateIdx, cycles: u64) -> f64 {
        cycles as f64 * self.points[idx].energy_per_cycle
    }

    /// The frequencies in kHz, as exposed by the Linux cpufreq sysfs file
    /// `scaling_available_frequencies` (descending order, as Linux does).
    #[must_use]
    pub fn available_frequencies_khz(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .points
            .iter()
            .map(|p| (p.freq_hz / 1e3).round() as u64)
            .collect();
        v.reverse();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let t = RateTable::i7_950_table2();
        assert_eq!(t.len(), 5);
        assert!((t.rate(0).freq_hz - 1.6e9).abs() < 1.0);
        assert!((t.rate(4).energy_per_cycle - 7.1e-9).abs() < 1e-15);
        assert!((t.rate(2).time_per_cycle - 0.42e-9).abs() < 1e-15);
    }

    #[test]
    fn empty_table_rejected() {
        assert_eq!(RateTable::new(vec![]), Err(ModelError::EmptyRateTable));
    }

    #[test]
    fn non_monotonic_energy_rejected() {
        let pts = vec![
            RatePoint {
                freq_hz: 1.0e9,
                energy_per_cycle: 2e-9,
                time_per_cycle: 1e-9,
            },
            RatePoint {
                freq_hz: 2.0e9,
                energy_per_cycle: 2e-9, // not strictly increasing
                time_per_cycle: 0.5e-9,
            },
        ];
        assert_eq!(
            RateTable::new(pts),
            Err(ModelError::NonMonotonicEnergy { index: 1 })
        );
    }

    #[test]
    fn non_monotonic_time_rejected() {
        let pts = vec![
            RatePoint {
                freq_hz: 1.0e9,
                energy_per_cycle: 1e-9,
                time_per_cycle: 1e-9,
            },
            RatePoint {
                freq_hz: 2.0e9,
                energy_per_cycle: 2e-9,
                time_per_cycle: 1e-9, // not strictly decreasing
            },
        ];
        assert_eq!(
            RateTable::new(pts),
            Err(ModelError::NonMonotonicTime { index: 1 })
        );
    }

    #[test]
    fn non_monotonic_frequency_rejected() {
        let pts = vec![
            RatePoint {
                freq_hz: 2.0e9,
                energy_per_cycle: 1e-9,
                time_per_cycle: 0.5e-9,
            },
            RatePoint {
                freq_hz: 1.0e9,
                energy_per_cycle: 2e-9,
                time_per_cycle: 0.4e-9,
            },
        ];
        assert_eq!(
            RateTable::new(pts),
            Err(ModelError::NonMonotonicFrequency { index: 1 })
        );
    }

    #[test]
    fn invalid_values_rejected() {
        let pts = vec![RatePoint {
            freq_hz: f64::NAN,
            energy_per_cycle: 1e-9,
            time_per_cycle: 1e-9,
        }];
        assert_eq!(
            RateTable::new(pts),
            Err(ModelError::InvalidRatePoint { index: 0 })
        );
        let pts = vec![RatePoint {
            freq_hz: 1e9,
            energy_per_cycle: -1e-9,
            time_per_cycle: 1e-9,
        }];
        assert_eq!(
            RateTable::new(pts),
            Err(ModelError::InvalidRatePoint { index: 0 })
        );
    }

    #[test]
    fn exec_time_and_energy_follow_equations_1_and_2() {
        let t = RateTable::i7_950_table2();
        // 1.6e9 cycles at 1.6 GHz takes 1.6e9 * 0.625 ns = 1 s.
        assert!((t.exec_time(0, 1_600_000_000) - 1.0).abs() < 1e-9);
        // and consumes 1.6e9 * 3.375 nJ = 5.4 J.
        assert!((t.energy(0, 1_600_000_000) - 5.4).abs() < 1e-9);
    }

    #[test]
    fn active_power_is_energy_over_time() {
        let t = RateTable::i7_950_table2();
        // At 3.0 GHz: 7.1 nJ / 0.33 ns = 21.52 W.
        let w = t.rate(4).active_power_watts();
        assert!((w - 7.1 / 0.33).abs() < 1e-9);
    }

    #[test]
    fn available_frequencies_descending_khz() {
        let t = RateTable::i7_950_table2();
        let khz = t.available_frequencies_khz();
        assert_eq!(khz[0], 3_000_000);
        assert_eq!(khz[4], 1_600_000);
        assert!(khz.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn index_of_freq_finds_exact_levels() {
        let t = RateTable::i7_950_table2();
        assert_eq!(t.index_of_freq(2.4e9), Some(2));
        assert_eq!(t.index_of_freq(2.5e9), None);
    }

    #[test]
    fn synthetic_table_valid_for_many_levels() {
        for levels in [1usize, 2, 7, 64, 512] {
            let t = RateTable::synthetic_quadratic(levels, 0.4, 3.2);
            assert_eq!(t.len(), levels);
        }
    }

    #[test]
    fn from_measurements_follows_paper_procedure() {
        // Power measurements implying E = W/f per cycle.
        let t = RateTable::from_measurements(&[(1.0, 2.0), (2.0, 8.0), (3.0, 21.0)]).unwrap();
        assert_eq!(t.len(), 3);
        assert!((t.rate(0).energy_per_cycle - 2.0e-9).abs() < 1e-18);
        assert!((t.rate(1).energy_per_cycle - 4.0e-9).abs() < 1e-18);
        assert!((t.rate(2).energy_per_cycle - 7.0e-9).abs() < 1e-18);
        assert!((t.rate(2).active_power_watts() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn from_measurements_rejects_sublinear_power() {
        // Power growing only linearly → constant E(p): invalid model.
        assert!(matches!(
            RateTable::from_measurements(&[(1.0, 2.0), (2.0, 4.0)]),
            Err(ModelError::NonMonotonicEnergy { .. })
        ));
        // And an empty measurement set.
        assert!(matches!(
            RateTable::from_measurements(&[]),
            Err(ModelError::EmptyRateTable)
        ));
    }

    #[test]
    fn exynos_preset_matches_cited_range() {
        let t = RateTable::exynos_4412();
        assert_eq!(t.len(), 16);
        assert!((t.rate(0).freq_hz - 0.2e9).abs() < 1.0);
        assert!((t.rate(1).freq_hz - 0.3e9).abs() < 1.0);
        assert!((t.rate(15).freq_hz - 1.7e9).abs() < 1.0);
        // Mobile-class top power.
        let top = t.rate(15).active_power_watts();
        assert!(top > 1.0 && top < 2.0, "top power {top}");
    }

    #[test]
    fn theorem1_gadget_matches_proof_constants() {
        let g = RateTable::theorem1_gadget();
        assert_eq!(g.rate(0).time_per_cycle, 2.0);
        assert_eq!(g.rate(1).time_per_cycle, 1.0);
        assert_eq!(g.rate(0).energy_per_cycle, 1.0);
        assert_eq!(g.rate(1).energy_per_cycle, 4.0);
    }

    #[test]
    fn min_max_rate_indices() {
        let t = RateTable::i7_950_table2();
        assert_eq!(t.min_rate(), 0);
        assert_eq!(t.max_rate(), 4);
        assert!(!t.is_empty());
    }
}
