//! The task model of Section II-A.
//!
//! A task `j_k` is a tuple `(L_k, A_k, D_k)`: the number of CPU cycles
//! required to complete it, its arrival time, and its deadline (infinite —
//! here `None` — when the task has no time constraint).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Opaque identifier for a task. Unique within one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// The execution class of a task, which determines its priority and how
/// the online scheduler treats it (Section II-A / Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskClass {
    /// A batch-mode task: arrival time 0, scheduled offline, non-preemptive.
    Batch,
    /// An online interactive task: user-initiated, must complete as soon as
    /// possible; preempts non-interactive work and runs at maximum
    /// frequency.
    Interactive,
    /// An online non-interactive task: no strict deadline; queued and run
    /// at the rate chosen by the scheduler.
    NonInteractive,
}

impl TaskClass {
    /// Whether this class may preempt `other` (interactive tasks have
    /// higher priority than non-interactive ones).
    #[must_use]
    pub fn preempts(self, other: TaskClass) -> bool {
        matches!(
            (self, other),
            (TaskClass::Interactive, TaskClass::NonInteractive)
                | (TaskClass::Interactive, TaskClass::Batch)
        )
    }
}

/// A task `j_k = (L_k, A_k, D_k)` from Section II-A.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique identifier.
    pub id: TaskId,
    /// `L_k`: number of CPU cycles required to complete the task.
    pub cycles: u64,
    /// `A_k`: arrival time in seconds (0 for batch tasks).
    pub arrival: f64,
    /// `D_k`: absolute deadline in seconds; `None` encodes "infinity"
    /// (no time constraint).
    pub deadline: Option<f64>,
    /// Execution class.
    pub class: TaskClass,
}

impl Task {
    /// Create a batch task (arrival 0, no deadline).
    ///
    /// # Errors
    /// Returns [`ModelError::ZeroCycles`] when `cycles == 0`.
    pub fn batch(id: u64, cycles: u64) -> Result<Self, ModelError> {
        if cycles == 0 {
            return Err(ModelError::ZeroCycles);
        }
        Ok(Task {
            id: TaskId(id),
            cycles,
            arrival: 0.0,
            deadline: None,
            class: TaskClass::Batch,
        })
    }

    /// Create an online task with the given class and arrival time.
    ///
    /// # Errors
    /// Returns an error when `cycles == 0`, the arrival is negative or
    /// non-finite, or the deadline is not strictly after the arrival.
    pub fn online(
        id: u64,
        cycles: u64,
        arrival: f64,
        deadline: Option<f64>,
        class: TaskClass,
    ) -> Result<Self, ModelError> {
        if cycles == 0 {
            return Err(ModelError::ZeroCycles);
        }
        if !arrival.is_finite() || arrival < 0.0 {
            return Err(ModelError::InvalidArrival);
        }
        if let Some(d) = deadline {
            if !d.is_finite() || d <= arrival {
                return Err(ModelError::DeadlineBeforeArrival);
            }
        }
        Ok(Task {
            id: TaskId(id),
            cycles,
            arrival,
            deadline,
            class,
        })
    }

    /// Create an interactive online task.
    ///
    /// # Errors
    /// Propagates the validation errors of [`Task::online`].
    pub fn interactive(id: u64, cycles: u64, arrival: f64) -> Result<Self, ModelError> {
        Task::online(id, cycles, arrival, None, TaskClass::Interactive)
    }

    /// Create a non-interactive online task.
    ///
    /// # Errors
    /// Propagates the validation errors of [`Task::online`].
    pub fn non_interactive(id: u64, cycles: u64, arrival: f64) -> Result<Self, ModelError> {
        Task::online(id, cycles, arrival, None, TaskClass::NonInteractive)
    }

    /// Whether the task has a time constraint (finite deadline).
    #[must_use]
    pub fn has_deadline(&self) -> bool {
        self.deadline.is_some()
    }
}

/// Build a batch workload from raw cycle counts, assigning sequential ids.
///
/// # Panics
/// Panics when any cycle count is zero; this is a programming error in the
/// caller-provided workload.
#[must_use]
pub fn batch_workload(cycles: &[u64]) -> Vec<Task> {
    cycles
        .iter()
        .enumerate()
        .map(|(i, &c)| Task::batch(i as u64, c).expect("batch workload cycles must be positive"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_task_has_zero_arrival_and_no_deadline() {
        let t = Task::batch(1, 100).unwrap();
        assert_eq!(t.arrival, 0.0);
        assert_eq!(t.deadline, None);
        assert_eq!(t.class, TaskClass::Batch);
        assert!(!t.has_deadline());
    }

    #[test]
    fn zero_cycles_rejected() {
        assert_eq!(Task::batch(1, 0), Err(ModelError::ZeroCycles));
        assert_eq!(
            Task::online(1, 0, 0.0, None, TaskClass::Interactive),
            Err(ModelError::ZeroCycles)
        );
    }

    #[test]
    fn deadline_must_follow_arrival() {
        assert_eq!(
            Task::online(1, 10, 5.0, Some(5.0), TaskClass::NonInteractive),
            Err(ModelError::DeadlineBeforeArrival)
        );
        assert_eq!(
            Task::online(1, 10, 5.0, Some(4.0), TaskClass::NonInteractive),
            Err(ModelError::DeadlineBeforeArrival)
        );
        let t = Task::online(1, 10, 5.0, Some(6.0), TaskClass::NonInteractive).unwrap();
        assert!(t.has_deadline());
    }

    #[test]
    fn negative_or_nan_arrival_rejected() {
        assert_eq!(
            Task::online(1, 10, -1.0, None, TaskClass::Interactive),
            Err(ModelError::InvalidArrival)
        );
        assert_eq!(
            Task::online(1, 10, f64::NAN, None, TaskClass::Interactive),
            Err(ModelError::InvalidArrival)
        );
    }

    #[test]
    fn interactive_preempts_noninteractive_only() {
        assert!(TaskClass::Interactive.preempts(TaskClass::NonInteractive));
        assert!(TaskClass::Interactive.preempts(TaskClass::Batch));
        assert!(!TaskClass::Interactive.preempts(TaskClass::Interactive));
        assert!(!TaskClass::NonInteractive.preempts(TaskClass::Interactive));
        assert!(!TaskClass::NonInteractive.preempts(TaskClass::NonInteractive));
        assert!(!TaskClass::Batch.preempts(TaskClass::Batch));
    }

    #[test]
    fn batch_workload_assigns_sequential_ids() {
        let ts = batch_workload(&[5, 10, 15]);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].id, TaskId(0));
        assert_eq!(ts[2].id, TaskId(2));
        assert_eq!(ts[1].cycles, 10);
    }

    #[test]
    fn task_serde_roundtrip() {
        let t = Task::online(7, 1234, 1.5, Some(9.0), TaskClass::Interactive).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn task_id_displays_with_prefix() {
        assert_eq!(TaskId(42).to_string(), "j42");
    }
}
