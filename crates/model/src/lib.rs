//! # dvfs-model
//!
//! Shared models for energy-efficient task scheduling on multi-core
//! platforms with per-core dynamic voltage and frequency scaling (DVFS),
//! following Section II of *"An Energy-efficient Task Scheduler for
//! Multi-core Platforms with per-core DVFS Based on Task Characteristics"*
//! (ICPP 2014).
//!
//! The crate defines:
//!
//! * [`Task`] — a task `j_k = (L_k, A_k, D_k)` with a cycle requirement,
//!   an arrival time, an optional deadline, and a class (batch,
//!   interactive, or non-interactive).
//! * [`RateTable`] — the non-empty set `P` of discrete processing rates a
//!   core can use, each with its per-cycle energy `E(p)` and per-cycle
//!   time `T(p)`.
//! * [`CostParams`] — the monetary constants `Re` (cost of a joule) and
//!   `Rt` (cost of a second of user waiting), plus the position-dependent
//!   cost functions `C(k, p)` and `C^B(k, p)` from Equations 12 and 20.
//! * [`Platform`] — a set of cores, each with a rate table and idle power,
//!   with homogeneous and heterogeneous presets.
//! * [`BatchPlan`] — per-core `(task, rate)` execution sequences: the
//!   output of the batch algorithms, replayable by any executor.
//! * [`TaskRecord`] — the per-task lifecycle measurement every executor
//!   reports.
//!
//! All cycle counts are exact integers (`u64`); all times are seconds and
//! all energies joules, carried as `f64`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod error;
pub mod plan;
pub mod platform;
pub mod rates;
pub mod record;
pub mod task;

pub use cost::{CostBreakdown, CostParams};
pub use error::ModelError;
pub use plan::{predict_plan_cost, BatchPlan};
pub use platform::{CoreId, CoreSpec, Platform};
pub use rates::{RateIdx, RatePoint, RateTable};
pub use record::TaskRecord;
pub use task::{Task, TaskClass, TaskId};
