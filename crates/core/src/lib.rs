//! # dvfs-core
//!
//! The primary contribution of the ICPP 2014 paper *"An Energy-efficient
//! Task Scheduler for Multi-core Platforms with per-core DVFS Based on
//! Task Characteristics"*:
//!
//! * [`dominating`] — Algorithm 1: the Θ(|P|) computation of **dominating
//!   position ranges**, the partition of backward queue positions among
//!   processing rates via a lower convex hull in the dual space.
//! * [`batch`] — Section III: **Longest Task Last** single-core ordering
//!   (Algorithm 2), the round-robin optimal schedule for homogeneous
//!   multi-cores (Theorem 4), and **Workload Based Greedy** for
//!   heterogeneous multi-cores (Algorithm 3 / Theorem 5).
//! * [`ledger`] — Section IV-A: the **dynamic cost ledger** supporting
//!   task insertion/deletion in `O(|P̂| + log N)` with Θ(1) total-cost
//!   retrieval (Algorithms 4–6), built on `dvfs-ostree`.
//! * [`sched`] — the engine-agnostic scheduling interface: the
//!   [`sched::Scheduler`] event hooks over an abstract
//!   [`sched::ExecutorView`], implemented by both the
//!   virtual-time simulator (`dvfs-sim`) and the wall-clock service
//!   executor (`dvfs-serve`).
//! * [`lmc`] — Section IV: the **Least Marginal Cost** online scheduling
//!   policy for mixed interactive / non-interactive workloads,
//!   implemented against the [`sched`] interface.
//! * [`deadline`] — Section III-A: the NP-completeness reduction from
//!   Partition (Theorems 1–2) and exact solvers for the constructed
//!   instances plus small general instances.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod deadline;
pub mod deadline_batch;
pub mod dominating;
pub mod ledger;
pub mod lmc;
pub mod sched;
pub mod validate;
pub mod wbg_online;
pub mod yds;

pub use batch::{schedule_homogeneous, schedule_single_core, schedule_wbg, SingleCorePlan};
pub use dominating::{DominatingRanges, RangeEntry};
pub use ledger::CostLedger;
pub use lmc::{InteractivePlacement, LeastMarginalCost};
pub use sched::{ExecutorView, PlanPolicy, Scheduler};
pub use wbg_online::WbgReassign;
