//! Online scheduling by full WBG redistribution.
//!
//! Section IV motivates Least Marginal Cost by noting that "the Workload
//! Based Greedy algorithm can be used to redistribute all tasks to cores
//! when a new task arrives. According to Theorem 5, rearranging the
//! tasks yields the minimum cost. However, because the overhead incurred
//! by the time and energy used to migrate tasks could impact the
//! performance, we need a lightweight strategy without task migration."
//!
//! [`WbgReassign`] implements that heavyweight alternative as an
//! idealized upper bound: on every non-interactive arrival it pools all
//! *waiting* non-interactive tasks (running tasks are non-migratable)
//! and redistributes them across cores with Algorithm 3 at zero
//! migration cost. Interactive handling matches LMC (Equation 27 +
//! preemption). Comparing it against [`crate::LeastMarginalCost`]
//! quantifies how much cost the migration-free heuristic actually gives
//! up — the trade the paper asserts but does not measure.

use crate::batch::schedule_wbg;
use dvfs_model::{CoreId, CostParams, Platform, RateIdx, Task, TaskClass, TaskId};
use dvfs_sim::{Policy, SimView};
use std::collections::{HashMap, VecDeque};

struct CoreState {
    /// Waiting non-interactive tasks in execution order (front runs
    /// next), with their planned rates from the last redistribution.
    queue: VecDeque<(TaskId, RateIdx)>,
    interactive: VecDeque<TaskId>,
    suspended: Option<TaskId>,
    running: Option<(TaskId, TaskClass)>,
}

/// Online policy that re-runs Workload Based Greedy over the waiting
/// pool on every non-interactive arrival (idealized: migration is free).
pub struct WbgReassign {
    platform: Platform,
    params: CostParams,
    cores: Vec<CoreState>,
    /// Per-core dominating ranges, precomputed once.
    ranges: Vec<crate::dominating::DominatingRanges>,
    /// Cycles of every known task (WBG reschedules by original size).
    cycles: HashMap<TaskId, u64>,
}

impl WbgReassign {
    /// Build the policy for a platform under the given cost parameters.
    #[must_use]
    pub fn new(platform: &Platform, params: CostParams) -> Self {
        let cores = (0..platform.num_cores())
            .map(|_| CoreState {
                queue: VecDeque::new(),
                interactive: VecDeque::new(),
                suspended: None,
                running: None,
            })
            .collect();
        let ranges = platform
            .cores()
            .iter()
            .map(|c| crate::dominating::DominatingRanges::compute(&c.rates, params))
            .collect();
        WbgReassign {
            platform: platform.clone(),
            params,
            cores,
            ranges,
            cycles: HashMap::new(),
        }
    }

    /// Pool every waiting non-interactive task plus `extra`, rerun WBG,
    /// and replace all queues.
    fn redistribute(&mut self, extra: Option<TaskId>) {
        let mut pool: Vec<Task> = Vec::new();
        for c in &self.cores {
            for &(tid, _) in &c.queue {
                pool.push(Task::batch(tid.0, self.cycles[&tid]).expect("known tasks have cycles"));
            }
        }
        if let Some(tid) = extra {
            pool.push(Task::batch(tid.0, self.cycles[&tid]).expect("known task"));
        }
        let plan = schedule_wbg(&pool, &self.platform, self.params);
        for (j, seq) in plan.per_core.into_iter().enumerate() {
            self.cores[j].queue = seq.into_iter().collect();
        }
    }

    fn rate_for_running(&self, sim: &SimView<'_>, j: CoreId) -> RateIdx {
        // Backward position of the running task = waiting queue + itself.
        let kb = self.cores[j].queue.len() as u64 + 1;
        self.ranges[j].rate_for(kb).min(sim.max_allowed_rate(j))
    }

    fn dispatch_next(&mut self, sim: &mut SimView<'_>, j: CoreId) {
        debug_assert!(sim.is_idle(j));
        if let Some(tid) = self.cores[j].interactive.pop_front() {
            let pm = sim.max_allowed_rate(j);
            sim.dispatch(j, tid, Some(pm));
            self.cores[j].running = Some((tid, TaskClass::Interactive));
            return;
        }
        if let Some(tid) = self.cores[j].suspended.take() {
            let rate = self.rate_for_running(sim, j);
            sim.dispatch(j, tid, Some(rate));
            self.cores[j].running = Some((tid, TaskClass::NonInteractive));
            return;
        }
        if let Some((tid, planned_rate)) = self.cores[j].queue.pop_front() {
            let rate = planned_rate.min(sim.max_allowed_rate(j));
            sim.dispatch(j, tid, Some(rate));
            self.cores[j].running = Some((tid, TaskClass::NonInteractive));
            return;
        }
        self.cores[j].running = None;
    }

    fn handle_interactive(&mut self, sim: &mut SimView<'_>, task: &Task) {
        // Equation 27 core choice, as in LMC.
        let best = (0..self.cores.len())
            .map(|j| {
                let r = sim.rate_table(j).rate(sim.max_allowed_rate(j));
                let l = task.cycles as f64;
                let nj = (self.cores[j].queue.len()
                    + usize::from(self.cores[j].suspended.is_some()))
                    as f64;
                let cost = self.params.re * l * r.energy_per_cycle
                    + self.params.rt * l * r.time_per_cycle * (1.0 + nj);
                (cost, j)
            })
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)))
            .expect("has cores")
            .1;
        match self.cores[best].running {
            None => {
                let pm = sim.max_allowed_rate(best);
                sim.dispatch(best, task.id, Some(pm));
                self.cores[best].running = Some((task.id, TaskClass::Interactive));
            }
            Some((_, TaskClass::Interactive)) => {
                self.cores[best].interactive.push_back(task.id);
            }
            Some(_) => {
                let preempted = sim.preempt(best);
                debug_assert!(self.cores[best].suspended.is_none());
                self.cores[best].suspended = Some(preempted);
                let pm = sim.max_allowed_rate(best);
                sim.dispatch(best, task.id, Some(pm));
                self.cores[best].running = Some((task.id, TaskClass::Interactive));
            }
        }
    }
}

impl Policy for WbgReassign {
    fn name(&self) -> String {
        "wbg-reassign".into()
    }

    fn on_arrival(&mut self, sim: &mut SimView<'_>, task: &Task) {
        self.cycles.insert(task.id, task.cycles);
        match task.class {
            TaskClass::Interactive => self.handle_interactive(sim, task),
            TaskClass::NonInteractive | TaskClass::Batch => {
                self.redistribute(Some(task.id));
                // Wake any idle cores that received work.
                for j in 0..self.cores.len() {
                    if sim.is_idle(j)
                        && self.cores[j].running.is_none()
                        && (!self.cores[j].queue.is_empty()
                            || !self.cores[j].interactive.is_empty())
                    {
                        self.dispatch_next(sim, j);
                    }
                }
            }
        }
    }

    fn on_completion(&mut self, sim: &mut SimView<'_>, core: CoreId, task: &Task) {
        debug_assert_eq!(self.cores[core].running.map(|(t, _)| t), Some(task.id));
        self.cores[core].running = None;
        self.cycles.remove(&task.id);
        self.dispatch_next(sim, core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeastMarginalCost;
    use dvfs_sim::{SimConfig, SimReport, Simulator};

    fn trace(seed: u64, n_ni: u64, n_i: u64) -> Vec<Task> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut id = 0;
        for _ in 0..n_ni {
            out.push(
                Task::non_interactive(
                    id,
                    rng.gen_range(100_000_000..20_000_000_000),
                    rng.gen_range(0.0..300.0),
                )
                .unwrap(),
            );
            id += 1;
        }
        for _ in 0..n_i {
            out.push(
                Task::interactive(
                    id,
                    rng.gen_range(500_000..5_000_000),
                    rng.gen_range(0.0..300.0),
                )
                .unwrap(),
            );
            id += 1;
        }
        out.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
        out
    }

    fn run(policy_kind: &str, tasks: &[Task]) -> SimReport {
        let platform = Platform::i7_950_quad();
        let params = CostParams::online_paper();
        let mut sim = Simulator::new(SimConfig::new(platform.clone()));
        sim.add_tasks(tasks);
        match policy_kind {
            "wbg" => {
                let mut p = WbgReassign::new(&platform, params);
                sim.run(&mut p)
            }
            _ => {
                let mut p = LeastMarginalCost::new(&platform, params);
                sim.run(&mut p)
            }
        }
    }

    #[test]
    fn completes_mixed_workloads() {
        let tasks = trace(1, 60, 200);
        let report = run("wbg", &tasks);
        assert_eq!(report.completed(), tasks.len());
    }

    #[test]
    fn interactive_still_preempts() {
        let platform = Platform::i7_950_quad();
        let params = CostParams::online_paper();
        let tasks = vec![
            Task::non_interactive(0, 30_000_000_000, 0.0).unwrap(),
            Task::non_interactive(1, 30_000_000_000, 0.0).unwrap(),
            Task::non_interactive(2, 30_000_000_000, 0.0).unwrap(),
            Task::non_interactive(3, 30_000_000_000, 0.0).unwrap(),
            Task::interactive(4, 100_000_000, 1.0).unwrap(),
        ];
        let mut sim = Simulator::new(SimConfig::new(platform.clone()));
        sim.add_tasks(&tasks);
        let mut p = WbgReassign::new(&platform, params);
        let report = sim.run(&mut p);
        let r = report.tasks[&dvfs_model::TaskId(4)];
        assert!(r.turnaround().unwrap() < 0.05, "{:?}", r.turnaround());
    }

    #[test]
    fn reassignment_cost_at_most_lmc_on_batch_bursts() {
        // A burst of simultaneous non-interactive arrivals: WBG reassign
        // converges to the optimal batch plan, so it must not lose to
        // the no-migration heuristic by more than a whisker.
        let params = CostParams::online_paper();
        let mut tasks = Vec::new();
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for id in 0..32 {
            tasks.push(
                Task::non_interactive(id, rng.gen_range(1_000_000_000..30_000_000_000), 0.0)
                    .unwrap(),
            );
        }
        let wbg = run("wbg", &tasks).cost(params).total();
        let lmc = run("lmc", &tasks).cost(params).total();
        assert!(
            wbg <= lmc * 1.02,
            "free-migration WBG {wbg} should not lose to LMC {lmc}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let tasks = trace(9, 40, 100);
        let a = run("wbg", &tasks);
        let b = run("wbg", &tasks);
        assert_eq!(a.active_energy_joules, b.active_energy_joules);
        assert_eq!(a.makespan, b.makespan);
    }
}
