//! Online scheduling by full WBG redistribution.
//!
//! Section IV motivates Least Marginal Cost by noting that "the Workload
//! Based Greedy algorithm can be used to redistribute all tasks to cores
//! when a new task arrives. According to Theorem 5, rearranging the
//! tasks yields the minimum cost. However, because the overhead incurred
//! by the time and energy used to migrate tasks could impact the
//! performance, we need a lightweight strategy without task migration."
//!
//! [`WbgReassign`] implements that heavyweight alternative as an
//! idealized upper bound: on every non-interactive arrival it pools all
//! *waiting* non-interactive tasks (running tasks are non-migratable)
//! and redistributes them across cores with Algorithm 3 at zero
//! migration cost. Interactive handling matches LMC (Equation 27 +
//! preemption). Comparing it against [`crate::LeastMarginalCost`]
//! quantifies how much cost the migration-free heuristic actually gives
//! up — the trade the paper asserts but does not measure.

use crate::batch::schedule_wbg;
use crate::sched::{ExecutorView, Scheduler};
use dvfs_model::{CoreId, CostParams, Platform, RateIdx, Task, TaskClass, TaskId};
use std::collections::{BTreeMap, VecDeque};

struct CoreState {
    /// Waiting non-interactive tasks in execution order (front runs
    /// next), with their planned rates from the last redistribution.
    queue: VecDeque<(TaskId, RateIdx)>,
    interactive: VecDeque<TaskId>,
    suspended: Option<TaskId>,
    running: Option<(TaskId, TaskClass)>,
}

/// Online policy that re-runs Workload Based Greedy over the waiting
/// pool on every non-interactive arrival (idealized: migration is free).
pub struct WbgReassign {
    platform: Platform,
    params: CostParams,
    cores: Vec<CoreState>,
    /// Per-core dominating ranges, precomputed once.
    ranges: Vec<crate::dominating::DominatingRanges>,
    /// Cycles of every known task (WBG reschedules by original size).
    cycles: BTreeMap<TaskId, u64>,
}

impl WbgReassign {
    /// Build the policy for a platform under the given cost parameters.
    #[must_use]
    pub fn new(platform: &Platform, params: CostParams) -> Self {
        let cores = (0..platform.num_cores())
            .map(|_| CoreState {
                queue: VecDeque::new(),
                interactive: VecDeque::new(),
                suspended: None,
                running: None,
            })
            .collect();
        let ranges = platform
            .cores()
            .iter()
            .map(|c| crate::dominating::DominatingRanges::compute(&c.rates, params))
            .collect();
        WbgReassign {
            platform: platform.clone(),
            params,
            cores,
            ranges,
            cycles: BTreeMap::new(),
        }
    }

    /// Pool every waiting non-interactive task plus `extra`, rerun WBG,
    /// and replace all queues.
    fn redistribute(&mut self, extra: Option<TaskId>) {
        let mut pool: Vec<Task> = Vec::new();
        for c in &self.cores {
            for &(tid, _) in &c.queue {
                pool.push(Task::batch(tid.0, self.cycles[&tid]).expect("known tasks have cycles"));
            }
        }
        if let Some(tid) = extra {
            pool.push(Task::batch(tid.0, self.cycles[&tid]).expect("known task"));
        }
        let plan = schedule_wbg(&pool, &self.platform, self.params);
        for (j, seq) in plan.per_core.into_iter().enumerate() {
            self.cores[j].queue = seq.into_iter().collect();
        }
    }

    fn rate_for_running(&self, sim: &dyn ExecutorView, j: CoreId) -> RateIdx {
        // Backward position of the running task = waiting queue + itself.
        let kb = self.cores[j].queue.len() as u64 + 1;
        self.ranges[j].rate_for(kb).min(sim.max_allowed_rate(j))
    }

    fn dispatch_next(&mut self, sim: &mut dyn ExecutorView, j: CoreId) {
        debug_assert!(sim.is_idle(j));
        if let Some(tid) = self.cores[j].interactive.pop_front() {
            let pm = sim.max_allowed_rate(j);
            sim.dispatch(j, tid, Some(pm));
            self.cores[j].running = Some((tid, TaskClass::Interactive));
            return;
        }
        if let Some(tid) = self.cores[j].suspended.take() {
            let rate = self.rate_for_running(sim, j);
            sim.dispatch(j, tid, Some(rate));
            self.cores[j].running = Some((tid, TaskClass::NonInteractive));
            return;
        }
        if let Some((tid, planned_rate)) = self.cores[j].queue.pop_front() {
            let rate = planned_rate.min(sim.max_allowed_rate(j));
            sim.dispatch(j, tid, Some(rate));
            self.cores[j].running = Some((tid, TaskClass::NonInteractive));
            return;
        }
        self.cores[j].running = None;
    }

    fn handle_interactive(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
        // Equation 27 core choice, as in LMC.
        let best = (0..self.cores.len())
            .map(|j| {
                let r = sim.rate_table(j).rate(sim.max_allowed_rate(j));
                let l = task.cycles as f64;
                let nj = (self.cores[j].queue.len()
                    + usize::from(self.cores[j].suspended.is_some()))
                    as f64;
                let cost = self.params.re * l * r.energy_per_cycle
                    + self.params.rt * l * r.time_per_cycle * (1.0 + nj);
                (cost, j)
            })
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)))
            .expect("has cores")
            .1;
        match self.cores[best].running {
            None => {
                let pm = sim.max_allowed_rate(best);
                sim.dispatch(best, task.id, Some(pm));
                self.cores[best].running = Some((task.id, TaskClass::Interactive));
            }
            Some((_, TaskClass::Interactive)) => {
                self.cores[best].interactive.push_back(task.id);
            }
            Some(_) => {
                let preempted = sim.preempt(best);
                debug_assert!(self.cores[best].suspended.is_none());
                self.cores[best].suspended = Some(preempted);
                let pm = sim.max_allowed_rate(best);
                sim.dispatch(best, task.id, Some(pm));
                self.cores[best].running = Some((task.id, TaskClass::Interactive));
            }
        }
    }
}

impl Scheduler for WbgReassign {
    fn name(&self) -> String {
        "wbg-reassign".into()
    }

    fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
        self.cycles.insert(task.id, task.cycles);
        match task.class {
            TaskClass::Interactive => self.handle_interactive(sim, task),
            TaskClass::NonInteractive | TaskClass::Batch => {
                self.redistribute(Some(task.id));
                // Wake any idle cores that received work.
                for j in 0..self.cores.len() {
                    if sim.is_idle(j)
                        && self.cores[j].running.is_none()
                        && (!self.cores[j].queue.is_empty()
                            || !self.cores[j].interactive.is_empty())
                    {
                        self.dispatch_next(sim, j);
                    }
                }
            }
        }
    }

    fn on_completion(&mut self, sim: &mut dyn ExecutorView, core: CoreId, task: &Task) {
        debug_assert_eq!(self.cores[core].running.map(|(t, _)| t), Some(task.id));
        self.cores[core].running = None;
        self.cycles.remove(&task.id);
        self.dispatch_next(sim, core);
    }
}
