//! The Least Marginal Cost online scheduling policy (Section IV).
//!
//! Every core keeps a queue of non-interactive tasks in non-decreasing
//! cycle order (the optimal order of Theorem 3), maintained by a
//! [`CostLedger`] so insertion position, per-position rates, and the
//! queue's total cost are all dynamic.
//!
//! * **Interactive arrival** — the task must finish as soon as possible:
//!   pick the core minimizing the marginal cost of Equation 27,
//!   `C^M_j = Re·L·E_j(p_m) + Rt·L·T_j(p_m) + Rt·L·T_j(p_m)·N_j`,
//!   preempt any non-interactive task running there, and run the
//!   interactive task at the core's maximum frequency. The preempted task
//!   resumes once the interactive backlog drains.
//! * **Non-interactive arrival** — tentatively insert into each core's
//!   ledger and keep the insertion with the least marginal cost; the
//!   running non-interactive task's frequency is re-derived from its new
//!   backward position (`N_waiting + 1`), since per-core DVFS may adjust
//!   rates mid-task in the online mode.
//! * **Dispatch** — interactive FIFO first, then the suspended
//!   non-interactive task, then the shortest queued task, each at the
//!   rate its backward position dominates.

use crate::ledger::CostLedger;
use crate::sched::{ExecutorView, Scheduler};
use dvfs_model::{CoreId, CostParams, Platform, RateIdx, Task, TaskClass, TaskId};
use dvfs_ostree::Handle;
use dvfs_trace::EventKind;
use std::collections::{BTreeMap, VecDeque};

struct CoreQueue {
    ledger: CostLedger,
    by_handle: BTreeMap<Handle, TaskId>,
    interactive: VecDeque<TaskId>,
    suspended: Option<TaskId>,
    /// Class of the task the policy last dispatched on this core.
    running: Option<(TaskId, TaskClass)>,
}

impl CoreQueue {
    /// Non-interactive tasks waiting on this core (`N_j` in Equation 27).
    fn n_waiting(&self) -> usize {
        self.ledger.len() + usize::from(self.suspended.is_some())
    }
}

/// How interactive tasks pick their core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InteractivePlacement {
    /// Equation 27: least marginal cost, weighing the core's rate table
    /// and its queue length. The paper's rule.
    #[default]
    MarginalCost,
    /// Least `N_j` (waiting non-interactive tasks), ties to the lowest
    /// core index. The paper notes Equation 27 degenerates to this on
    /// homogeneous cores.
    LeastQueue,
    /// Round-robin, ignoring all state — the naive control.
    RoundRobin,
}

/// A placement decision's provenance, handed to
/// [`LeastMarginalCost::record_enqueue`]: the winning core and queue
/// position, the rate the cost was evaluated at, the per-core Eq. 27
/// marginal costs that were compared, and the `Rt`-weighted waiting
/// share of the winning delta.
struct EnqueueChoice {
    best: CoreId,
    position: u64,
    rate: RateIdx,
    costs: Vec<f64>,
    wait_delta: f64,
}

/// The Least Marginal Cost policy. Construct once per simulation run.
pub struct LeastMarginalCost {
    params: CostParams,
    cores: Vec<CoreQueue>,
    placement: InteractivePlacement,
    rr_next: usize,
}

impl LeastMarginalCost {
    /// Build the policy for a platform under the given cost parameters.
    #[must_use]
    pub fn new(platform: &Platform, params: CostParams) -> Self {
        let cores = platform
            .cores()
            .iter()
            .map(|c| CoreQueue {
                ledger: CostLedger::new(&c.rates, params),
                by_handle: BTreeMap::new(),
                interactive: VecDeque::new(),
                suspended: None,
                running: None,
            })
            .collect();
        LeastMarginalCost {
            params,
            cores,
            placement: InteractivePlacement::default(),
            rr_next: 0,
        }
    }

    /// Override the interactive-placement rule (ablation support).
    #[must_use]
    pub fn with_interactive_placement(mut self, placement: InteractivePlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Equation 27: marginal cost of running an interactive task with
    /// `cycles` cycles on core `j` at its maximum frequency.
    fn interactive_marginal_cost(&self, sim: &dyn ExecutorView, j: CoreId, cycles: u64) -> f64 {
        let table = sim.rate_table(j);
        let pm = sim.max_allowed_rate(j);
        let r = table.rate(pm);
        let l = cycles as f64;
        let nj = self.cores[j].n_waiting() as f64;
        self.params.re * l * r.energy_per_cycle
            + self.params.rt * l * r.time_per_cycle
            + self.params.rt * l * r.time_per_cycle * nj
    }

    /// Rate for the task that is (or is about to be) running on core `j`,
    /// from its backward position `N_waiting_in_ledger + 1`.
    fn running_rate(&self, sim: &dyn ExecutorView, j: CoreId) -> RateIdx {
        let kb = self.cores[j].ledger.len() as u64 + 1;
        self.cores[j]
            .ledger
            .rate_at(kb)
            .min(sim.max_allowed_rate(j))
    }

    /// Dispatch the next unit of work on an idle core, if any.
    fn dispatch_next(&mut self, sim: &mut dyn ExecutorView, j: CoreId) {
        debug_assert!(sim.is_idle(j));
        if let Some(tid) = self.cores[j].interactive.pop_front() {
            let pm = sim.max_allowed_rate(j);
            sim.dispatch(j, tid, Some(pm));
            self.cores[j].running = Some((tid, TaskClass::Interactive));
            return;
        }
        if let Some(tid) = self.cores[j].suspended.take() {
            let rate = self.running_rate(sim, j);
            sim.dispatch(j, tid, Some(rate));
            self.cores[j].running = Some((tid, TaskClass::NonInteractive));
            return;
        }
        if let Some(h) = self.cores[j].ledger.peek_next_dispatch() {
            let tid = self.cores[j]
                .by_handle
                .remove(&h)
                .expect("ledger handle maps to a task");
            self.cores[j].ledger.remove(h);
            let rate = self.running_rate(sim, j);
            sim.dispatch(j, tid, Some(rate));
            self.cores[j].running = Some((tid, TaskClass::NonInteractive));
            return;
        }
        self.cores[j].running = None;
    }

    /// Record the placement decision's provenance: the per-core costs
    /// that were compared, the chosen core/position, and the Eq. 27
    /// deltas split into the `Re`-weighted energy term and the
    /// `Rt`-weighted waiting terms. Reads pre-action state, so it must
    /// run before the queues mutate.
    fn record_enqueue(&self, sim: &mut dyn ExecutorView, task: &Task, choice: EnqueueChoice) {
        let EnqueueChoice {
            best,
            position,
            rate,
            costs,
            wait_delta,
        } = choice;
        let r = sim.rate_table(best).rate(rate);
        let l = task.cycles as f64;
        let energy_delta = self.params.re * l * r.energy_per_cycle;
        let now = sim.now();
        if let Some(tr) = sim.trace() {
            tr.record(
                now,
                EventKind::Enqueue {
                    task: task.id.0,
                    core: best as u32,
                    position,
                    costs,
                    energy_delta,
                    wait_delta,
                },
            );
        }
    }

    /// Sum of every core's Equation 32 queued-cost total — the
    /// marginal-cost summary a shard publishes so a cross-shard
    /// rebalancer can compare hot and cold queues without walking them.
    #[must_use]
    pub fn queued_cost(&self) -> f64 {
        self.cores.iter().map(|c| c.ledger.total_cost()).sum()
    }

    /// Non-interactive tasks resident in the per-core ledgers — the
    /// stealable population. Excludes interactive FIFOs, suspended
    /// tasks, and running tasks, none of which migrate.
    #[must_use]
    pub fn stealable_tasks(&self) -> usize {
        self.cores.iter().map(|c| c.ledger.len()).sum()
    }

    /// Remove up to `max` queued non-interactive tasks from the
    /// ledgers, longest-cycles first (Algorithm 6 deletes, `O(|P̂| +
    /// log N)` each), returning their ids in removal order. Longest
    /// first because Theorem 3 runs long tasks last: they have waited
    /// the least, so moving them forfeits the least progress toward
    /// dispatch. Ties break to the smaller task id, then the lower
    /// core, so the pick is deterministic. Each removal shrinks a
    /// queue, so the running non-interactive task's backward position
    /// moves and its rate is re-derived — the exact mirror of the
    /// insert path. The caller owns the other half of the migration:
    /// removing the same tasks from its executor.
    pub fn steal_longest(&mut self, sim: &mut dyn ExecutorView, max: usize) -> Vec<TaskId> {
        let mut out = Vec::new();
        for _ in 0..max {
            let mut pick: Option<(u64, TaskId, CoreId, Handle)> = None;
            for (j, core) in self.cores.iter().enumerate() {
                for (&h, &tid) in &core.by_handle {
                    let cycles = core.ledger.cycles(h);
                    let better = match pick {
                        None => true,
                        Some((c, t, _, _)) => cycles > c || (cycles == c && tid < t),
                    };
                    if better {
                        pick = Some((cycles, tid, j, h));
                    }
                }
            }
            let Some((_, tid, j, h)) = pick else { break };
            self.cores[j].ledger.remove(h);
            self.cores[j].by_handle.remove(&h);
            if matches!(self.cores[j].running, Some((_, TaskClass::NonInteractive))) {
                let rate = self.running_rate(sim, j);
                sim.set_rate(j, rate);
            }
            out.push(tid);
        }
        out
    }

    fn handle_interactive(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
        let tracing = sim.trace().is_some();
        let mut costs: Vec<f64> = Vec::new();
        let best = match self.placement {
            InteractivePlacement::MarginalCost => {
                if tracing {
                    // Provenance: re-evaluate the pure Eq. 27 scan into
                    // a vector (identical values, identical query
                    // order) so the decision can be audited.
                    costs = (0..self.cores.len())
                        .map(|j| self.interactive_marginal_cost(sim, j, task.cycles))
                        .collect();
                }
                (0..self.cores.len())
                    .map(|j| (self.interactive_marginal_cost(sim, j, task.cycles), j))
                    .min_by(|a, b| {
                        a.0.partial_cmp(&b.0)
                            .expect("finite costs")
                            .then(a.1.cmp(&b.1))
                    })
                    .expect("platform has cores")
                    .1
            }
            InteractivePlacement::LeastQueue => (0..self.cores.len())
                .min_by_key(|&j| (self.cores[j].n_waiting(), j))
                .expect("platform has cores"),
            InteractivePlacement::RoundRobin => {
                let j = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.cores.len();
                j
            }
        };
        if tracing {
            // Interactive work joins the FIFO (position 0) and runs at
            // the core's maximum frequency; the waiting delta is the
            // `Rt·L·T(p_m)·(1 + N_j)` remainder of Eq. 27, term for
            // term.
            let pm = sim.max_allowed_rate(best);
            let r = sim.rate_table(best).rate(pm);
            let l = task.cycles as f64;
            let nj = self.cores[best].n_waiting() as f64;
            let wait_delta =
                self.params.rt * l * r.time_per_cycle + self.params.rt * l * r.time_per_cycle * nj;
            self.record_enqueue(
                sim,
                task,
                EnqueueChoice {
                    best,
                    position: 0,
                    rate: pm,
                    costs,
                    wait_delta,
                },
            );
        }
        match self.cores[best].running {
            None => {
                debug_assert!(sim.is_idle(best));
                let pm = sim.max_allowed_rate(best);
                sim.dispatch(best, task.id, Some(pm));
                self.cores[best].running = Some((task.id, TaskClass::Interactive));
            }
            Some((_, TaskClass::Interactive)) => {
                // Already serving an interactive task; FIFO behind it.
                self.cores[best].interactive.push_back(task.id);
            }
            Some((running_tid, _)) => {
                // Preempt the lower-priority task (Section IV).
                let preempted = sim.preempt(best);
                debug_assert_eq!(preempted, running_tid);
                debug_assert!(self.cores[best].suspended.is_none());
                self.cores[best].suspended = Some(preempted);
                let pm = sim.max_allowed_rate(best);
                sim.dispatch(best, task.id, Some(pm));
                self.cores[best].running = Some((task.id, TaskClass::Interactive));
            }
        }
    }

    fn handle_non_interactive(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
        let tracing = sim.trace().is_some();
        let mut costs: Vec<f64> = Vec::new();
        if tracing {
            // Provenance: the same ledger queries in the same order,
            // collected so the comparison the policy made is in the
            // trace. `marginal_insert_cost` is a query (no insert), so
            // re-running it does not perturb the decision below.
            costs = (0..self.cores.len())
                .map(|j| self.cores[j].ledger.marginal_insert_cost(task.cycles))
                .collect();
        }
        let best = (0..self.cores.len())
            .map(|j| (self.cores[j].ledger.marginal_insert_cost(task.cycles), j))
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite costs")
                    .then(a.1.cmp(&b.1))
            })
            .expect("platform has cores")
            .1;
        let h = self.cores[best].ledger.insert(task.cycles);
        self.cores[best].by_handle.insert(h, task.id);
        if tracing {
            // Theorem-3 backward position of the fresh insertion and
            // the rate that position dominates; the waiting delta is
            // whatever remains of the measured marginal cost after the
            // `Re·L·E(p_k)` energy term.
            let position = self.cores[best].ledger.backward_position(h);
            let rate = self.cores[best]
                .ledger
                .rate_at(position)
                .min(sim.max_allowed_rate(best));
            let total = costs.get(best).copied().unwrap_or(0.0);
            let r = sim.rate_table(best).rate(rate);
            let energy_delta = self.params.re * task.cycles as f64 * r.energy_per_cycle;
            self.record_enqueue(
                sim,
                task,
                EnqueueChoice {
                    best,
                    position,
                    rate,
                    costs,
                    wait_delta: total - energy_delta,
                },
            );
        }
        match self.cores[best].running {
            None => {
                debug_assert!(sim.is_idle(best));
                self.dispatch_next(sim, best);
            }
            Some((_, TaskClass::NonInteractive)) => {
                // The queue grew: the running task's backward position
                // moved, so re-derive its rate (online-mode DVFS).
                let rate = self.running_rate(sim, best);
                sim.set_rate(best, rate);
            }
            Some((_, _)) => {} // interactive running at p_m; leave it
        }
    }
}

impl Scheduler for LeastMarginalCost {
    fn name(&self) -> String {
        "least-marginal-cost".into()
    }

    fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
        match task.class {
            TaskClass::Interactive => self.handle_interactive(sim, task),
            // Batch tasks entering an online system are treated as
            // non-interactive work.
            TaskClass::NonInteractive | TaskClass::Batch => {
                self.handle_non_interactive(sim, task);
            }
        }
    }

    fn on_completion(&mut self, sim: &mut dyn ExecutorView, core: CoreId, task: &Task) {
        debug_assert_eq!(self.cores[core].running.map(|(t, _)| t), Some(task.id));
        self.cores[core].running = None;
        self.dispatch_next(sim, core);
    }
}
