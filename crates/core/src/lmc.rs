//! The Least Marginal Cost online scheduling policy (Section IV).
//!
//! Every core keeps a queue of non-interactive tasks in non-decreasing
//! cycle order (the optimal order of Theorem 3), maintained by a
//! [`CostLedger`] so insertion position, per-position rates, and the
//! queue's total cost are all dynamic.
//!
//! * **Interactive arrival** — the task must finish as soon as possible:
//!   pick the core minimizing the marginal cost of Equation 27,
//!   `C^M_j = Re·L·E_j(p_m) + Rt·L·T_j(p_m) + Rt·L·T_j(p_m)·N_j`,
//!   preempt any non-interactive task running there, and run the
//!   interactive task at the core's maximum frequency. The preempted task
//!   resumes once the interactive backlog drains.
//! * **Non-interactive arrival** — tentatively insert into each core's
//!   ledger and keep the insertion with the least marginal cost; the
//!   running non-interactive task's frequency is re-derived from its new
//!   backward position (`N_waiting + 1`), since per-core DVFS may adjust
//!   rates mid-task in the online mode.
//! * **Dispatch** — interactive FIFO first, then the suspended
//!   non-interactive task, then the shortest queued task, each at the
//!   rate its backward position dominates.

use crate::ledger::CostLedger;
use dvfs_model::{CoreId, CostParams, Platform, RateIdx, Task, TaskClass, TaskId};
use dvfs_ostree::Handle;
use dvfs_sim::{Policy, SimView};
use std::collections::{HashMap, VecDeque};

struct CoreQueue {
    ledger: CostLedger,
    by_handle: HashMap<Handle, TaskId>,
    interactive: VecDeque<TaskId>,
    suspended: Option<TaskId>,
    /// Class of the task the policy last dispatched on this core.
    running: Option<(TaskId, TaskClass)>,
}

impl CoreQueue {
    /// Non-interactive tasks waiting on this core (`N_j` in Equation 27).
    fn n_waiting(&self) -> usize {
        self.ledger.len() + usize::from(self.suspended.is_some())
    }
}

/// How interactive tasks pick their core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InteractivePlacement {
    /// Equation 27: least marginal cost, weighing the core's rate table
    /// and its queue length. The paper's rule.
    #[default]
    MarginalCost,
    /// Least `N_j` (waiting non-interactive tasks), ties to the lowest
    /// core index. The paper notes Equation 27 degenerates to this on
    /// homogeneous cores.
    LeastQueue,
    /// Round-robin, ignoring all state — the naive control.
    RoundRobin,
}

/// The Least Marginal Cost policy. Construct once per simulation run.
pub struct LeastMarginalCost {
    params: CostParams,
    cores: Vec<CoreQueue>,
    placement: InteractivePlacement,
    rr_next: usize,
}

impl LeastMarginalCost {
    /// Build the policy for a platform under the given cost parameters.
    #[must_use]
    pub fn new(platform: &Platform, params: CostParams) -> Self {
        let cores = platform
            .cores()
            .iter()
            .map(|c| CoreQueue {
                ledger: CostLedger::new(&c.rates, params),
                by_handle: HashMap::new(),
                interactive: VecDeque::new(),
                suspended: None,
                running: None,
            })
            .collect();
        LeastMarginalCost {
            params,
            cores,
            placement: InteractivePlacement::default(),
            rr_next: 0,
        }
    }

    /// Override the interactive-placement rule (ablation support).
    #[must_use]
    pub fn with_interactive_placement(mut self, placement: InteractivePlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Equation 27: marginal cost of running an interactive task with
    /// `cycles` cycles on core `j` at its maximum frequency.
    fn interactive_marginal_cost(&self, sim: &SimView<'_>, j: CoreId, cycles: u64) -> f64 {
        let table = sim.rate_table(j);
        let pm = sim.max_allowed_rate(j);
        let r = table.rate(pm);
        let l = cycles as f64;
        let nj = self.cores[j].n_waiting() as f64;
        self.params.re * l * r.energy_per_cycle
            + self.params.rt * l * r.time_per_cycle
            + self.params.rt * l * r.time_per_cycle * nj
    }

    /// Rate for the task that is (or is about to be) running on core `j`,
    /// from its backward position `N_waiting_in_ledger + 1`.
    fn running_rate(&self, sim: &SimView<'_>, j: CoreId) -> RateIdx {
        let kb = self.cores[j].ledger.len() as u64 + 1;
        self.cores[j]
            .ledger
            .rate_at(kb)
            .min(sim.max_allowed_rate(j))
    }

    /// Dispatch the next unit of work on an idle core, if any.
    fn dispatch_next(&mut self, sim: &mut SimView<'_>, j: CoreId) {
        debug_assert!(sim.is_idle(j));
        if let Some(tid) = self.cores[j].interactive.pop_front() {
            let pm = sim.max_allowed_rate(j);
            sim.dispatch(j, tid, Some(pm));
            self.cores[j].running = Some((tid, TaskClass::Interactive));
            return;
        }
        if let Some(tid) = self.cores[j].suspended.take() {
            let rate = self.running_rate(sim, j);
            sim.dispatch(j, tid, Some(rate));
            self.cores[j].running = Some((tid, TaskClass::NonInteractive));
            return;
        }
        if let Some(h) = self.cores[j].ledger.peek_next_dispatch() {
            let tid = self.cores[j]
                .by_handle
                .remove(&h)
                .expect("ledger handle maps to a task");
            self.cores[j].ledger.remove(h);
            let rate = self.running_rate(sim, j);
            sim.dispatch(j, tid, Some(rate));
            self.cores[j].running = Some((tid, TaskClass::NonInteractive));
            return;
        }
        self.cores[j].running = None;
    }

    fn handle_interactive(&mut self, sim: &mut SimView<'_>, task: &Task) {
        let best = match self.placement {
            InteractivePlacement::MarginalCost => {
                (0..self.cores.len())
                    .map(|j| (self.interactive_marginal_cost(sim, j, task.cycles), j))
                    .min_by(|a, b| {
                        a.0.partial_cmp(&b.0)
                            .expect("finite costs")
                            .then(a.1.cmp(&b.1))
                    })
                    .expect("platform has cores")
                    .1
            }
            InteractivePlacement::LeastQueue => (0..self.cores.len())
                .min_by_key(|&j| (self.cores[j].n_waiting(), j))
                .expect("platform has cores"),
            InteractivePlacement::RoundRobin => {
                let j = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.cores.len();
                j
            }
        };
        match self.cores[best].running {
            None => {
                debug_assert!(sim.is_idle(best));
                let pm = sim.max_allowed_rate(best);
                sim.dispatch(best, task.id, Some(pm));
                self.cores[best].running = Some((task.id, TaskClass::Interactive));
            }
            Some((_, TaskClass::Interactive)) => {
                // Already serving an interactive task; FIFO behind it.
                self.cores[best].interactive.push_back(task.id);
            }
            Some((running_tid, _)) => {
                // Preempt the lower-priority task (Section IV).
                let preempted = sim.preempt(best);
                debug_assert_eq!(preempted, running_tid);
                debug_assert!(self.cores[best].suspended.is_none());
                self.cores[best].suspended = Some(preempted);
                let pm = sim.max_allowed_rate(best);
                sim.dispatch(best, task.id, Some(pm));
                self.cores[best].running = Some((task.id, TaskClass::Interactive));
            }
        }
    }

    fn handle_non_interactive(&mut self, sim: &mut SimView<'_>, task: &Task) {
        let best = (0..self.cores.len())
            .map(|j| (self.cores[j].ledger.marginal_insert_cost(task.cycles), j))
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite costs")
                    .then(a.1.cmp(&b.1))
            })
            .expect("platform has cores")
            .1;
        let h = self.cores[best].ledger.insert(task.cycles);
        self.cores[best].by_handle.insert(h, task.id);
        match self.cores[best].running {
            None => {
                debug_assert!(sim.is_idle(best));
                self.dispatch_next(sim, best);
            }
            Some((_, TaskClass::NonInteractive)) => {
                // The queue grew: the running task's backward position
                // moved, so re-derive its rate (online-mode DVFS).
                let rate = self.running_rate(sim, best);
                sim.set_rate(best, rate);
            }
            Some((_, _)) => {} // interactive running at p_m; leave it
        }
    }
}

impl Policy for LeastMarginalCost {
    fn name(&self) -> String {
        "least-marginal-cost".into()
    }

    fn on_arrival(&mut self, sim: &mut SimView<'_>, task: &Task) {
        match task.class {
            TaskClass::Interactive => self.handle_interactive(sim, task),
            // Batch tasks entering an online system are treated as
            // non-interactive work.
            TaskClass::NonInteractive | TaskClass::Batch => {
                self.handle_non_interactive(sim, task);
            }
        }
    }

    fn on_completion(&mut self, sim: &mut SimView<'_>, core: CoreId, task: &Task) {
        debug_assert_eq!(self.cores[core].running.map(|(t, _)| t), Some(task.id));
        self.cores[core].running = None;
        self.dispatch_next(sim, core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_model::{CoreSpec, RateTable};
    use dvfs_sim::{SimConfig, Simulator};

    fn quad() -> Platform {
        Platform::i7_950_quad()
    }

    fn run(platform: Platform, tasks: Vec<Task>) -> dvfs_sim::SimReport {
        let mut policy = LeastMarginalCost::new(&platform, CostParams::online_paper());
        let mut sim = Simulator::new(SimConfig::new(platform));
        sim.add_tasks(&tasks);
        sim.run(&mut policy)
    }

    #[test]
    fn all_tasks_complete() {
        let tasks: Vec<Task> = (0..40)
            .map(|i| {
                if i % 3 == 0 {
                    Task::interactive(i, 1_000_000, i as f64 * 0.01).unwrap()
                } else {
                    Task::non_interactive(i, (i + 1) * 50_000_000, i as f64 * 0.01).unwrap()
                }
            })
            .collect();
        let report = run(quad(), tasks);
        assert_eq!(report.completed(), 40);
    }

    #[test]
    fn interactive_preempts_running_non_interactive() {
        let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        let big = Task::non_interactive(1, 16_000_000_000, 0.0).unwrap();
        let small = Task::interactive(2, 300_000_000, 1.0).unwrap();
        let report = run(platform, vec![big, small]);
        let r_int = report.tasks[&TaskId(2)];
        let r_ni = report.tasks[&TaskId(1)];
        // Interactive runs immediately at max rate: 3e8 * 0.33ns ≈ 0.099 s.
        let turnaround = r_int.turnaround().unwrap();
        assert!(
            (turnaround - 0.099).abs() < 1e-6,
            "interactive turnaround {turnaround}"
        );
        assert_eq!(r_ni.preemptions, 1);
        assert!(r_ni.completion.unwrap() > r_int.completion.unwrap());
    }

    #[test]
    fn interactive_chooses_least_loaded_core() {
        // Two cores; core 0 gets two big non-interactive tasks first, so
        // an interactive arrival must land on core 1... but LMC will
        // spread the two NI tasks across cores. Load three NI tasks so
        // queues are (2,1) or (1,2), then check the interactive task is
        // served without waiting behind a queue.
        let platform = Platform::homogeneous(2, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        let tasks = vec![
            Task::non_interactive(1, 8_000_000_000, 0.0).unwrap(),
            Task::non_interactive(2, 8_000_000_000, 0.0).unwrap(),
            Task::interactive(3, 160_000_000, 0.5).unwrap(),
        ];
        let report = run(platform, tasks);
        let r = report.tasks[&TaskId(3)];
        // Served immediately by preemption at max rate on either core:
        // 1.6e8 cycles * 0.33 ns = 52.8 ms.
        assert!((r.turnaround().unwrap() - 0.0528).abs() < 1e-6);
    }

    #[test]
    fn non_interactive_shortest_runs_first_within_a_core() {
        let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        // Arrive together at t=0 via three arrivals at the same instant;
        // a tiny runner task is dispatched first (whichever arrives
        // first), then the queue drains shortest-first.
        let tasks = vec![
            Task::non_interactive(1, 1_000_000, 0.0).unwrap(), // dispatched at once
            Task::non_interactive(2, 9_000_000_000, 0.0).unwrap(),
            Task::non_interactive(3, 2_000_000_000, 0.0).unwrap(),
            Task::non_interactive(4, 4_000_000_000, 0.0).unwrap(),
        ];
        let report = run(platform, tasks);
        let c2 = report.tasks[&TaskId(2)].completion.unwrap();
        let c3 = report.tasks[&TaskId(3)].completion.unwrap();
        let c4 = report.tasks[&TaskId(4)].completion.unwrap();
        assert!(c3 < c4 && c4 < c2, "queue must drain shortest-first");
    }

    #[test]
    fn back_to_back_interactive_tasks_fifo_on_same_core() {
        let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        let tasks = vec![
            Task::interactive(1, 3_000_000_000, 0.0).unwrap(), // ~0.99 s at max
            Task::interactive(2, 3_000_000_000, 0.1).unwrap(),
        ];
        let report = run(platform, tasks);
        let c1 = report.tasks[&TaskId(1)].completion.unwrap();
        let c2 = report.tasks[&TaskId(2)].completion.unwrap();
        assert!((c1 - 0.99).abs() < 1e-6);
        assert!(
            (c2 - 1.98).abs() < 1e-6,
            "second runs right after the first"
        );
        assert_eq!(report.tasks[&TaskId(1)].preemptions, 0);
    }

    #[test]
    fn suspended_task_resumes_after_interactive_burst() {
        let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        let tasks = vec![
            Task::non_interactive(1, 3_200_000_000, 0.0).unwrap(),
            Task::interactive(2, 1_600_000_000, 0.5).unwrap(),
            Task::interactive(3, 1_600_000_000, 0.6).unwrap(),
        ];
        let report = run(platform, tasks);
        assert_eq!(report.completed(), 3);
        let r1 = report.tasks[&TaskId(1)];
        assert_eq!(r1.preemptions, 1, "preempted once, then resumed");
        let c2 = report.tasks[&TaskId(2)].completion.unwrap();
        let c3 = report.tasks[&TaskId(3)].completion.unwrap();
        assert!(r1.completion.unwrap() > c3.max(c2));
    }

    #[test]
    fn heterogeneous_platform_runs_clean() {
        let platform = Platform::big_little(2, 2);
        let tasks: Vec<Task> = (0..60)
            .map(|i| {
                if i % 4 == 0 {
                    Task::interactive(i, 2_000_000, i as f64 * 0.05).unwrap()
                } else {
                    Task::non_interactive(i, 100_000_000 + i * 7_000_000, i as f64 * 0.05).unwrap()
                }
            })
            .collect();
        let report = run(platform, tasks);
        assert_eq!(report.completed(), 60);
        assert!(report.active_energy_joules > 0.0);
    }

    #[test]
    fn eq27_equals_least_queue_on_homogeneous_cores() {
        // The paper: "if the cores are homogeneous, we simply choose the
        // core with the least N_j" — the two placements must produce
        // bit-identical runs.
        let tasks: Vec<Task> = (0..80)
            .map(|i| {
                if i % 3 == 0 {
                    Task::interactive(i, 1_000_000 + i * 7_000, i as f64 * 0.02).unwrap()
                } else {
                    Task::non_interactive(i, (i + 1) * 40_000_000, i as f64 * 0.02).unwrap()
                }
            })
            .collect();
        let platform = quad();
        let params = CostParams::online_paper();
        let run_variant = |placement: InteractivePlacement| {
            let mut policy =
                LeastMarginalCost::new(&platform, params).with_interactive_placement(placement);
            let mut sim = Simulator::new(SimConfig::new(platform.clone()));
            sim.add_tasks(&tasks);
            sim.run(&mut policy)
        };
        let a = run_variant(InteractivePlacement::MarginalCost);
        let b = run_variant(InteractivePlacement::LeastQueue);
        assert_eq!(a.active_energy_joules, b.active_energy_joules);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_turnaround(), b.total_turnaround());
    }

    #[test]
    fn eq27_beats_round_robin_on_heterogeneous_cores() {
        // Sparse interactive-only arrivals on big.LITTLE: Equation 27
        // weighs each core's E/T at max rate and (under the paper's
        // energy-heavy online parameters) routes queries to the frugal
        // core; round-robin wastes every other query on the big core's
        // 8x per-cycle energy.
        let tasks: Vec<Task> = (0..40)
            .map(|i| Task::interactive(i, 100_000_000, i as f64 * 1.0).unwrap())
            .collect();
        let platform = Platform::big_little(1, 1);
        let params = CostParams::online_paper();
        let run_variant = |placement: InteractivePlacement| {
            let mut policy =
                LeastMarginalCost::new(&platform, params).with_interactive_placement(placement);
            let mut sim = Simulator::new(SimConfig::new(platform.clone()));
            sim.add_tasks(&tasks);
            sim.run(&mut policy).cost(params).total()
        };
        let eq27 = run_variant(InteractivePlacement::MarginalCost);
        let rr = run_variant(InteractivePlacement::RoundRobin);
        assert!(
            eq27 < rr * 0.75,
            "Eq. 27 placement {eq27} must clearly beat round-robin {rr} on big.LITTLE"
        );
    }

    #[test]
    fn queue_growth_raises_running_task_rate() {
        // One core: start a long NI task (alone → slowest dominating
        // rate), then flood the queue; the running task's rate should
        // rise, finishing it sooner than the all-alone schedule would at
        // the same rate... measurable via energy: more energy per cycle.
        let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        let mut tasks = vec![Task::non_interactive(0, 16_000_000_000, 0.0).unwrap()];
        for i in 1..=30 {
            tasks.push(Task::non_interactive(i, 1_000_000_000, 0.1).unwrap());
        }
        let report = run(platform.clone(), tasks);
        let solo = run(
            platform,
            vec![Task::non_interactive(0, 16_000_000_000, 0.0).unwrap()],
        );
        let flood_energy_rate = report.tasks[&TaskId(0)].energy_joules / 16.0e9;
        let solo_energy_rate = solo.tasks[&TaskId(0)].energy_joules / 16.0e9;
        assert!(
            flood_energy_rate > solo_energy_rate * 1.05,
            "rate must rise under queue pressure: {flood_energy_rate} vs {solo_energy_rate}"
        );
    }
}
