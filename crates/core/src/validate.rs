//! Empirical optimality validation by randomized local search.
//!
//! Theorems 3–5 claim WBG's schedules are cost-minimal. The unit tests
//! verify this against exhaustive search for tiny instances; this module
//! scales the evidence up: a randomized hill-climber explores the
//! neighborhood of a plan (move a task between cores, swap two tasks,
//! reorder within a core, change a task's rate) and reports the best
//! plan it can find. Starting *from* a WBG plan it should find no
//! improving move; starting from random plans it should never beat WBG.
//! Both properties are enforced by tests here and exercised at larger
//! scale in the `validate_wbg` experiment binary.

use crate::batch::predict_plan_cost;
use dvfs_model::BatchPlan;
use dvfs_model::{CostParams, Platform, Task};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Outcome of a local-search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best plan found.
    pub plan: BatchPlan,
    /// Its analytic cost.
    pub cost: f64,
    /// Number of accepted (improving) moves.
    pub improvements: usize,
    /// Number of candidate moves evaluated.
    pub evaluated: usize,
}

/// Hill-climb from `start` for `iterations` random moves, accepting
/// strict improvements. Deterministic for a given seed.
///
/// # Panics
/// Panics when the plan and task set are inconsistent.
#[must_use]
pub fn local_search(
    start: &BatchPlan,
    tasks: &[Task],
    platform: &Platform,
    params: CostParams,
    iterations: usize,
    seed: u64,
) -> SearchOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best = start.clone();
    let mut best_cost = predict_plan_cost(&best, tasks, platform, params);
    let mut improvements = 0;
    let mut evaluated = 0;
    let ncores = platform.num_cores();

    for _ in 0..iterations {
        let mut cand = best.clone();
        let kind = rng.gen_range(0..4u8);
        let mutated = match kind {
            0 => {
                // Move a random task to a random position on another core.
                let from = rng.gen_range(0..ncores);
                if cand.per_core[from].is_empty() {
                    false
                } else {
                    let i = rng.gen_range(0..cand.per_core[from].len());
                    let (tid, _) = cand.per_core[from].remove(i);
                    let to = rng.gen_range(0..ncores);
                    let pos = rng.gen_range(0..=cand.per_core[to].len());
                    let nrates = platform.core(to).expect("in range").rates.len();
                    let rate = rng.gen_range(0..nrates);
                    cand.per_core[to].insert(pos, (tid, rate));
                    true
                }
            }
            1 => {
                // Swap two tasks across cores (keeping rates positional).
                let a = rng.gen_range(0..ncores);
                let b = rng.gen_range(0..ncores);
                if cand.per_core[a].is_empty() || cand.per_core[b].is_empty() {
                    false
                } else {
                    let i = rng.gen_range(0..cand.per_core[a].len());
                    let j = rng.gen_range(0..cand.per_core[b].len());
                    let (ta, _) = cand.per_core[a][i];
                    let (tb, _) = cand.per_core[b][j];
                    cand.per_core[a][i].0 = tb;
                    cand.per_core[b][j].0 = ta;
                    true
                }
            }
            2 => {
                // Swap two positions within a core.
                let c = rng.gen_range(0..ncores);
                if cand.per_core[c].len() < 2 {
                    false
                } else {
                    let i = rng.gen_range(0..cand.per_core[c].len());
                    let j = rng.gen_range(0..cand.per_core[c].len());
                    cand.per_core[c].swap(i, j);
                    i != j
                }
            }
            _ => {
                // Re-rate one task.
                let c = rng.gen_range(0..ncores);
                if cand.per_core[c].is_empty() {
                    false
                } else {
                    let i = rng.gen_range(0..cand.per_core[c].len());
                    let nrates = platform.core(c).expect("in range").rates.len();
                    let new_rate = rng.gen_range(0..nrates);
                    let changed = cand.per_core[c][i].1 != new_rate;
                    cand.per_core[c][i].1 = new_rate;
                    changed
                }
            }
        };
        if !mutated {
            continue;
        }
        evaluated += 1;
        let cost = predict_plan_cost(&cand, tasks, platform, params);
        // Relative tolerance: plan costs are sums of thousands of f64
        // terms, so equal-cost plans (e.g. symmetric core swaps) differ
        // by rounding noise far above any absolute epsilon.
        if cost < best_cost - best_cost.abs() * 1e-9 - 1e-15 {
            best = cand;
            best_cost = cost;
            improvements += 1;
        }
    }
    SearchOutcome {
        plan: best,
        cost: best_cost,
        improvements,
        evaluated,
    }
}

/// A uniformly random valid plan (every task placed once).
#[must_use]
pub fn random_plan(tasks: &[Task], platform: &Platform, seed: u64) -> BatchPlan {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut plan = BatchPlan::empty(platform.num_cores());
    for t in tasks {
        let c = rng.gen_range(0..platform.num_cores());
        let nrates = platform.core(c).expect("in range").rates.len();
        plan.per_core[c].push((t.id, rng.gen_range(0..nrates)));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schedule_wbg;
    use dvfs_model::task::batch_workload;
    use rand::{Rng, SeedableRng};

    fn medium_instance() -> (Vec<Task>, Platform) {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let cycles: Vec<u64> = (0..40).map(|_| rng.gen_range(1..20_000_000_000)).collect();
        (batch_workload(&cycles), Platform::big_little(2, 2))
    }

    #[test]
    fn no_improving_move_from_wbg() {
        let (tasks, platform) = medium_instance();
        let params = CostParams::batch_paper();
        let wbg = schedule_wbg(&tasks, &platform, params);
        let outcome = local_search(&wbg, &tasks, &platform, params, 20_000, 7);
        assert_eq!(
            outcome.improvements,
            0,
            "local search found a plan beating WBG by {:.6}",
            predict_plan_cost(&wbg, &tasks, &platform, params) - outcome.cost
        );
    }

    #[test]
    fn random_starts_never_beat_wbg() {
        let (tasks, platform) = medium_instance();
        let params = CostParams::batch_paper();
        let wbg_cost = predict_plan_cost(
            &schedule_wbg(&tasks, &platform, params),
            &tasks,
            &platform,
            params,
        );
        for seed in 0..5 {
            let start = random_plan(&tasks, &platform, seed);
            let outcome = local_search(&start, &tasks, &platform, params, 5_000, seed + 100);
            assert!(
                outcome.cost >= wbg_cost * (1.0 - 1e-9),
                "seed {seed}: local search reached {} below WBG {wbg_cost}",
                outcome.cost
            );
        }
    }

    #[test]
    fn local_search_improves_bad_starts() {
        let (tasks, platform) = medium_instance();
        let params = CostParams::batch_paper();
        let start = random_plan(&tasks, &platform, 1);
        let start_cost = predict_plan_cost(&start, &tasks, &platform, params);
        let outcome = local_search(&start, &tasks, &platform, params, 10_000, 2);
        assert!(outcome.improvements > 0);
        assert!(outcome.cost < start_cost);
        assert!(outcome.evaluated > 0);
    }

    #[test]
    fn random_plan_places_every_task_once() {
        let (tasks, platform) = medium_instance();
        let plan = random_plan(&tasks, &platform, 3);
        assert_eq!(plan.num_tasks(), tasks.len());
        let mut ids: Vec<_> = plan.entries().map(|(_, _, t, _)| t).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len());
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let (tasks, platform) = medium_instance();
        let params = CostParams::batch_paper();
        let start = random_plan(&tasks, &platform, 5);
        let a = local_search(&start, &tasks, &platform, params, 3_000, 11);
        let b = local_search(&start, &tasks, &platform, params, 3_000, 11);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.plan, b.plan);
    }
}
