//! Batch-mode scheduling (Section III).
//!
//! * [`schedule_single_core`] — Algorithm 2 ("Longest Task Last"): sort
//!   tasks so cycles are non-decreasing in execution order (Theorem 3)
//!   and give the task at backward position `k` the rate dominating `k`.
//! * [`schedule_homogeneous`] — Theorem 4: round-robin the sorted tasks
//!   across identical cores, heaviest tasks taking the cheapest
//!   (backward-first) slots.
//! * [`schedule_wbg`] — Algorithm 3 ("Workload Based Greedy"): on a
//!   heterogeneous platform, repeatedly assign the heaviest unassigned
//!   task to the core whose next backward slot has the least
//!   position-cost `C_j(k)`, via a min-heap.
//!
//! All three produce provably minimum-cost schedules under the paper's
//! cost model; the tests cross-check against exhaustive search.

use crate::dominating::DominatingRanges;
use dvfs_model::{BatchPlan, CostParams, Platform, RateIdx, RateTable, Task, TaskId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

// Plan cost prediction moved to `dvfs_model::plan` with [`BatchPlan`];
// re-exported here so existing `dvfs_core::batch::predict_plan_cost`
// callers keep working.
pub use dvfs_model::predict_plan_cost;

/// A single-core batch schedule: the execution order with per-task rates,
/// plus the model-predicted total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleCorePlan {
    /// `(task, rate)` pairs in execution order (first runs first).
    pub order: Vec<(TaskId, RateIdx)>,
    /// Predicted total cost `Σ C^B(k)·L_k` (Equation 17).
    pub predicted_cost: f64,
}

/// Sort task references by ascending cycles (ties by id) — the optimal
/// execution order of Theorem 3.
fn sorted_ascending(tasks: &[Task]) -> Vec<&Task> {
    let mut refs: Vec<&Task> = tasks.iter().collect();
    refs.sort_by_key(|t| (t.cycles, t.id));
    refs
}

/// Algorithm 2: optimal single-core batch schedule. `O(|J| log |J|)`.
#[must_use]
pub fn schedule_single_core(
    tasks: &[Task],
    table: &RateTable,
    params: CostParams,
) -> SingleCorePlan {
    let ranges = DominatingRanges::compute(table, params);
    let refs = sorted_ascending(tasks);
    let n = refs.len() as u64;
    let mut order = Vec::with_capacity(refs.len());
    let mut cost = 0.0;
    for (i, t) in refs.iter().enumerate() {
        let kb = n - i as u64; // backward position of the i-th (0-based) task
        let rate = ranges.rate_for(kb);
        order.push((t.id, rate));
        cost += ranges.cost_at(kb) * t.cycles as f64;
    }
    SingleCorePlan {
        order,
        predicted_cost: cost,
    }
}

/// Min-heap key over `(cost, core)` with a total order on finite floats.
#[derive(Debug, PartialEq)]
struct SlotKey {
    cost: f64,
    core: usize,
    kb: u64,
}

impl Eq for SlotKey {}

impl Ord for SlotKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (cost, core).
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("slot costs are finite")
            .then_with(|| other.core.cmp(&self.core))
    }
}

impl PartialOrd for SlotKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Algorithm 3: Workload Based Greedy on an arbitrary (homogeneous or
/// heterogeneous) platform. Returns the per-core execution sequences with
/// rates. `O(|J| (log |J| + log R))`.
///
/// ```
/// use dvfs_core::schedule_wbg;
/// use dvfs_model::{task::batch_workload, CostParams, Platform};
///
/// let tasks = batch_workload(&[9_000_000_000, 2_000_000_000, 400_000_000]);
/// let plan = schedule_wbg(&tasks, &Platform::i7_950_quad(), CostParams::batch_paper());
/// assert_eq!(plan.num_tasks(), 3);
/// // Every per-core sequence runs shortest-first (Theorem 3).
/// ```
#[must_use]
pub fn schedule_wbg(tasks: &[Task], platform: &Platform, params: CostParams) -> BatchPlan {
    let ncores = platform.num_cores();
    let ranges: Vec<DominatingRanges> = (0..ncores)
        .map(|j| DominatingRanges::compute(&platform.core(j).expect("core in range").rates, params))
        .collect();

    // Heaviest first (ties by id for determinism).
    let mut refs: Vec<&Task> = tasks.iter().collect();
    refs.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.id.cmp(&b.id)));

    // Heap of each core's next backward slot cost C_j(k).
    let mut heap: BinaryHeap<SlotKey> = (0..ncores)
        .map(|j| SlotKey {
            cost: ranges[j].cost_at(1),
            core: j,
            kb: 1,
        })
        .collect();

    // Backward sequences: per core, tasks in backward-position order
    // (k = 1 first, i.e. the task that will run LAST).
    let mut backward: Vec<Vec<(TaskId, RateIdx)>> = vec![Vec::new(); ncores];
    for t in refs {
        let slot = heap.pop().expect("heap has one entry per core");
        let rate = ranges[slot.core].rate_for(slot.kb);
        backward[slot.core].push((t.id, rate));
        heap.push(SlotKey {
            cost: ranges[slot.core].cost_at(slot.kb + 1),
            core: slot.core,
            kb: slot.kb + 1,
        });
    }

    // Reverse into execution order (front runs first).
    BatchPlan {
        per_core: backward
            .into_iter()
            .map(|mut seq| {
                seq.reverse();
                seq
            })
            .collect(),
    }
}

/// Theorem 4: round-robin schedule for a homogeneous platform. Produces
/// the same cost as [`schedule_wbg`] on identical cores; exposed
/// separately because its structure (strict round-robin) matches the
/// paper's presentation and is cheaper to compute.
#[must_use]
pub fn schedule_homogeneous(
    tasks: &[Task],
    table: &RateTable,
    ncores: usize,
    params: CostParams,
) -> BatchPlan {
    assert!(ncores > 0, "need at least one core");
    let ranges = DominatingRanges::compute(table, params);
    let mut refs: Vec<&Task> = tasks.iter().collect();
    refs.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.id.cmp(&b.id)));
    let mut backward: Vec<Vec<(TaskId, RateIdx)>> = vec![Vec::new(); ncores];
    for (i, t) in refs.iter().enumerate() {
        let core = i % ncores;
        let kb = (i / ncores + 1) as u64;
        backward[core].push((t.id, ranges.rate_for(kb)));
    }
    BatchPlan {
        per_core: backward
            .into_iter()
            .map(|mut seq| {
                seq.reverse();
                seq
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_model::task::batch_workload;
    use dvfs_model::CoreSpec;
    use proptest::prelude::*;

    fn table() -> RateTable {
        RateTable::i7_950_table2()
    }

    /// Exhaustive minimum over all orders and rate assignments on one
    /// core. Exponential; only for tiny instances.
    fn brute_force_single(cycles: &[u64], table: &RateTable, params: CostParams) -> f64 {
        fn perms(v: &mut Vec<u64>, k: usize, out: &mut Vec<Vec<u64>>) {
            if k == v.len() {
                out.push(v.clone());
                return;
            }
            for i in k..v.len() {
                v.swap(k, i);
                perms(v, k + 1, out);
                v.swap(k, i);
            }
        }
        let mut orders = Vec::new();
        perms(&mut cycles.to_vec(), 0, &mut orders);
        let nrates = table.len();
        let mut best = f64::INFINITY;
        for order in &orders {
            // Enumerate rate combos by counting in base nrates.
            let combos = nrates.pow(order.len() as u32);
            for c in 0..combos {
                let mut acc = c;
                let seq: Vec<(u64, RateIdx)> = order
                    .iter()
                    .map(|&cy| {
                        let r = acc % nrates;
                        acc /= nrates;
                        (cy, r)
                    })
                    .collect();
                let cost = dvfs_model::cost::sequence_cost(params, table, &seq).total();
                best = best.min(cost);
            }
        }
        best
    }

    #[test]
    fn single_core_order_is_shortest_first() {
        let tasks = batch_workload(&[500, 100, 300]);
        let plan = schedule_single_core(&tasks, &table(), CostParams::batch_paper());
        let cycles_in_order: Vec<u64> = plan
            .order
            .iter()
            .map(|&(tid, _)| tasks.iter().find(|t| t.id == tid).unwrap().cycles)
            .collect();
        assert_eq!(cycles_in_order, vec![100, 300, 500]);
    }

    #[test]
    fn single_core_rates_non_increasing_along_order() {
        // Front tasks have larger backward positions → faster rates.
        let cycles: Vec<u64> = (1..=50).map(|i| i * 1_000_000_000).collect();
        let tasks = batch_workload(&cycles);
        let plan = schedule_single_core(&tasks, &table(), CostParams::batch_paper());
        let rates: Vec<RateIdx> = plan.order.iter().map(|&(_, r)| r).collect();
        assert!(rates.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn single_core_predicted_cost_matches_sequence_cost() {
        let tasks = batch_workload(&[700, 100, 400, 1000, 50]);
        let params = CostParams::batch_paper();
        let plan = schedule_single_core(&tasks, &table(), params);
        let seq: Vec<(u64, RateIdx)> = plan
            .order
            .iter()
            .map(|&(tid, r)| (tasks.iter().find(|t| t.id == tid).unwrap().cycles, r))
            .collect();
        let direct = dvfs_model::cost::sequence_cost(params, &table(), &seq).total();
        assert!((plan.predicted_cost - direct).abs() / direct < 1e-12);
    }

    #[test]
    fn single_core_is_optimal_small_instances() {
        // Use a 2-rate table to keep brute force tractable.
        let table = RateTable::i7_950_two_rates();
        let params = CostParams::new(0.1, 1e-10).unwrap();
        // Heavily energy-weighted and heavily time-weighted variants.
        for params in [
            params,
            CostParams::new(1e-10, 0.4).unwrap(),
            CostParams::batch_paper(),
        ] {
            for cycles in [
                vec![3_000_000_000u64, 1_000_000_000, 2_000_000_000],
                vec![5u64, 5, 5, 5],
                vec![1_000u64],
                vec![10_000_000_000u64, 1, 500_000_000, 123_456_789],
            ] {
                let tasks = batch_workload(&cycles);
                let plan = schedule_single_core(&tasks, &table, params);
                let best = brute_force_single(&cycles, &table, params);
                assert!(
                    plan.predicted_cost <= best * (1.0 + 1e-9),
                    "WBG single-core not optimal: {} vs brute {best}",
                    plan.predicted_cost
                );
            }
        }
    }

    #[test]
    fn wbg_homogeneous_equals_round_robin_cost() {
        let cycles: Vec<u64> = (1..=13).map(|i| i * 700_000_000 + 13).collect();
        let tasks = batch_workload(&cycles);
        let params = CostParams::batch_paper();
        let platform = Platform::homogeneous(4, CoreSpec::new(table())).unwrap();
        let wbg = schedule_wbg(&tasks, &platform, params);
        let rr = schedule_homogeneous(&tasks, &table(), 4, params);
        let cw = predict_plan_cost(&wbg, &tasks, &platform, params);
        let cr = predict_plan_cost(&rr, &tasks, &platform, params);
        assert!(
            (cw - cr).abs() / cw < 1e-12,
            "heap WBG and Theorem-4 round-robin must agree: {cw} vs {cr}"
        );
    }

    #[test]
    fn wbg_assigns_every_task_exactly_once() {
        let tasks = batch_workload(&[5, 10, 15, 20, 25, 30, 35]);
        let platform = Platform::big_little(2, 2);
        let plan = schedule_wbg(&tasks, &platform, CostParams::batch_paper());
        let mut ids: Vec<TaskId> = plan.entries().map(|(_, _, t, _)| t).collect();
        ids.sort();
        let mut expect: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
        expect.sort();
        assert_eq!(ids, expect);
    }

    #[test]
    fn wbg_per_core_sequences_are_shortest_first() {
        let cycles: Vec<u64> = (1..=20).map(|i| i * 311_111_111).collect();
        let tasks = batch_workload(&cycles);
        let platform = Platform::big_little(2, 2);
        let plan = schedule_wbg(&tasks, &platform, CostParams::batch_paper());
        for seq in &plan.per_core {
            let cyc: Vec<u64> = seq
                .iter()
                .map(|&(tid, _)| tasks.iter().find(|t| t.id == tid).unwrap().cycles)
                .collect();
            assert!(
                cyc.windows(2).all(|w| w[0] <= w[1]),
                "core sequence not non-decreasing: {cyc:?}"
            );
        }
    }

    #[test]
    fn wbg_prefers_efficient_cores_for_heavy_tasks() {
        // One big (fast, power-hungry) + one little (slow, frugal) core
        // with an energy-dominated objective: the heavy work should land
        // where C_j(k) is lower.
        let tasks = batch_workload(&[10_000_000_000, 9_000_000_000]);
        let platform = Platform::big_little(1, 1);
        let params = CostParams::new(10.0, 1e-6).unwrap(); // energy-dominated
        let plan = schedule_wbg(&tasks, &platform, params);
        // Both tasks must go to the little core (cheap energy) since time
        // is nearly free.
        assert!(plan.per_core[0].is_empty(), "{:?}", plan.per_core);
        assert_eq!(plan.per_core[1].len(), 2);
    }

    #[test]
    fn wbg_single_core_reduces_to_algorithm_2() {
        let cycles = vec![123u64, 99999, 345, 7, 10_000_000];
        let tasks = batch_workload(&cycles);
        let params = CostParams::batch_paper();
        let platform = Platform::homogeneous(1, CoreSpec::new(table())).unwrap();
        let wbg = schedule_wbg(&tasks, &platform, params);
        let single = schedule_single_core(&tasks, &table(), params);
        assert_eq!(wbg.per_core[0], single.order);
    }

    #[test]
    fn empty_workload_produces_empty_plan() {
        let platform = Platform::i7_950_quad();
        let plan = schedule_wbg(&[], &platform, CostParams::batch_paper());
        assert_eq!(plan.num_tasks(), 0);
        let single = schedule_single_core(&[], &table(), CostParams::batch_paper());
        assert!(single.order.is_empty());
        assert_eq!(single.predicted_cost, 0.0);
    }

    /// Exhaustive two-core optimality check: every assignment of tasks to
    /// cores, with the optimal single-core sub-schedules (justified by
    /// Theorem 3 applied per core).
    fn brute_force_two_core(cycles: &[u64], platform: &Platform, params: CostParams) -> f64 {
        let n = cycles.len();
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << n) {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for (i, &c) in cycles.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    a.push(c);
                } else {
                    b.push(c);
                }
            }
            let ta = batch_workload(&a);
            let tb = batch_workload(&b);
            let ca =
                schedule_single_core(&ta, &platform.core(0).unwrap().rates, params).predicted_cost;
            let cb =
                schedule_single_core(&tb, &platform.core(1).unwrap().rates, params).predicted_cost;
            best = best.min(ca + cb);
        }
        best
    }

    #[test]
    fn wbg_is_optimal_on_two_heterogeneous_cores() {
        let platform = Platform::big_little(1, 1);
        let params = CostParams::batch_paper();
        for cycles in [
            vec![1_000_000_000u64, 2_000_000_000, 3_000_000_000],
            vec![
                5_000_000_000u64,
                10_000_000,
                10_000_000,
                700_000_000,
                1_234_567,
            ],
            vec![42u64],
        ] {
            let tasks = batch_workload(&cycles);
            let plan = schedule_wbg(&tasks, &platform, params);
            let cost = predict_plan_cost(&plan, &tasks, &platform, params);
            let best = brute_force_two_core(&cycles, &platform, params);
            assert!(
                cost <= best * (1.0 + 1e-9),
                "WBG {cost} worse than brute-force {best} for {cycles:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn prop_wbg_beats_random_plans(
            cycles in prop::collection::vec(1u64..5_000_000_000, 1..12),
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let tasks = batch_workload(&cycles);
            let params = CostParams::batch_paper();
            let platform = Platform::big_little(2, 1);
            let plan = schedule_wbg(&tasks, &platform, params);
            let wbg_cost = predict_plan_cost(&plan, &tasks, &platform, params);

            // Random alternative plan: random assignment/order/rates.
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut per_core: Vec<Vec<(TaskId, RateIdx)>> =
                vec![Vec::new(); platform.num_cores()];
            for t in &tasks {
                let j = rng.gen_range(0..platform.num_cores());
                let nr = platform.core(j).unwrap().rates.len();
                per_core[j].push((t.id, rng.gen_range(0..nr)));
            }
            let rand_plan = BatchPlan { per_core };
            let rand_cost = predict_plan_cost(&rand_plan, &tasks, &platform, params);
            prop_assert!(wbg_cost <= rand_cost * (1.0 + 1e-9),
                "random plan beat WBG: {} < {}", rand_cost, wbg_cost);
        }

        #[test]
        fn prop_single_core_optimal_vs_brute(
            cycles in prop::collection::vec(1u64..1_000_000_000, 1..5),
        ) {
            let table = RateTable::i7_950_two_rates();
            let params = CostParams::batch_paper();
            let tasks = batch_workload(&cycles);
            let plan = schedule_single_core(&tasks, &table, params);
            let best = brute_force_single(&cycles, &table, params);
            prop_assert!(plan.predicted_cost <= best * (1.0 + 1e-9));
            // And it must achieve the brute-force optimum exactly.
            prop_assert!((plan.predicted_cost - best).abs() / best.max(1e-30) < 1e-9);
        }
    }
}
