//! Deadline-constrained batch scheduling (extension).
//!
//! Section III-A proves that scheduling with deadlines under time and
//! energy budgets is NP-complete and stops there. This module adds the
//! natural practical companion: a greedy *rate-escalation* heuristic for
//! the common-deadline single-core problem —
//!
//! 1. start from the cost-optimal Longest-Task-Last plan (Algorithm 2),
//!    which ignores the deadline;
//! 2. while the plan's makespan exceeds the deadline, raise one task's
//!    rate one level, choosing the task with the least marginal-cost per
//!    second-saved ratio;
//! 3. finally re-sort by execution time (with rates fixed per *task*,
//!    shortest-processing-time-first minimizes total waiting).
//!
//! Feasibility is exact (a common deadline on one core depends only on
//! `Σ L·T(p)`, so "everything at the maximum rate" is the feasibility
//! frontier — the same criterion as the exact solver); cost optimality
//! is heuristic and the tests bound its gap against exhaustive search.

use crate::batch::SingleCorePlan;
use dvfs_model::cost::sequence_cost;
use dvfs_model::{CostParams, RateIdx, RateTable, Task, TaskId};

/// Makespan of a single-core plan with per-task rates: `Σ L·T(p)`.
fn makespan(cycles: &[u64], rates: &[RateIdx], table: &RateTable) -> f64 {
    cycles
        .iter()
        .zip(rates)
        .map(|(&c, &r)| table.exec_time(r, c))
        .sum()
}

/// Greedy rate-escalation schedule under a common deadline. Returns
/// `None` when even the all-maximum-rate plan misses the deadline
/// (which is exactly when no schedule exists).
#[must_use]
pub fn schedule_single_core_with_deadline(
    tasks: &[Task],
    table: &RateTable,
    params: CostParams,
    deadline: f64,
) -> Option<SingleCorePlan> {
    if tasks.is_empty() {
        return Some(SingleCorePlan {
            order: Vec::new(),
            predicted_cost: 0.0,
        });
    }
    // Start from the unconstrained optimum (ascending cycle order with
    // position-dominating rates).
    let base = crate::batch::schedule_single_core(tasks, table, params);
    let order_ids: Vec<TaskId> = base.order.iter().map(|&(t, _)| t).collect();
    let lookup = |tid: TaskId| tasks.iter().find(|t| t.id == tid).expect("task exists");
    let cycles: Vec<u64> = order_ids.iter().map(|&t| lookup(t).cycles).collect();
    let mut rates: Vec<RateIdx> = base.order.iter().map(|&(_, r)| r).collect();
    let n = cycles.len();

    // Feasibility frontier: everything at the top rate.
    let min_span: f64 = cycles
        .iter()
        .map(|&c| table.exec_time(table.max_rate(), c))
        .sum();
    if min_span > deadline + 1e-9 {
        return None;
    }

    while makespan(&cycles, &rates, table) > deadline + 1e-9 {
        // Cheapest speedup: least Δcost per second saved. The cost
        // delta uses the positional form C^B(k)·L with the current
        // (ascending-cycles) order; positions are fixed during
        // escalation.
        let mut best: Option<(f64, usize)> = None;
        for i in 0..n {
            let r = rates[i];
            if r >= table.max_rate() {
                continue;
            }
            let kb = (n - i) as u64; // backward position in current order
            let dt = table.exec_time(r, cycles[i]) - table.exec_time(r + 1, cycles[i]);
            let dcost = (params.c_backward(table, kb as usize, r + 1)
                - params.c_backward(table, kb as usize, r))
                * cycles[i] as f64;
            let ratio = dcost / dt;
            if best.is_none_or(|(b, _)| ratio < b) {
                best = Some((ratio, i));
            }
        }
        let (_, i) = best.expect("feasibility frontier guarantees an escalatable task");
        rates[i] += 1;
    }

    // With per-task rates fixed, SPT order minimizes total waiting.
    let mut entries: Vec<(TaskId, RateIdx, f64)> = order_ids
        .iter()
        .zip(&rates)
        .zip(&cycles)
        .map(|((&tid, &r), &c)| (tid, r, table.exec_time(r, c)))
        .collect();
    entries.sort_by(|a, b| {
        a.2.partial_cmp(&b.2)
            .expect("finite times")
            .then(a.0.cmp(&b.0))
    });
    let order: Vec<(TaskId, RateIdx)> = entries.iter().map(|&(t, r, _)| (t, r)).collect();
    let seq: Vec<(u64, RateIdx)> = order
        .iter()
        .map(|&(tid, r)| (lookup(tid).cycles, r))
        .collect();
    let predicted_cost = sequence_cost(params, table, &seq).total();
    Some(SingleCorePlan {
        order,
        predicted_cost,
    })
}

/// Simulated-annealing refinement of the greedy deadline schedule.
/// Starts from [`schedule_single_core_with_deadline`]'s plan and
/// explores ±1 rate moves (rejecting deadline violations), accepting
/// uphill moves with geometric-cooling probability and returning the
/// best feasible plan seen. Deterministic per seed; never returns a
/// worse plan than the greedy. Use when the greedy's gap (bounded ~10%
/// in the tests) matters.
#[must_use]
pub fn anneal_under_deadline(
    tasks: &[Task],
    table: &RateTable,
    params: CostParams,
    deadline: f64,
    iterations: usize,
    seed: u64,
) -> Option<SingleCorePlan> {
    use rand::{Rng, SeedableRng};
    let start = schedule_single_core_with_deadline(tasks, table, params, deadline)?;
    if tasks.len() < 2 {
        return Some(start);
    }
    let lookup = |tid: TaskId| tasks.iter().find(|t| t.id == tid).expect("task exists");
    // Work on (cycles, rate) with the order re-derived (SPT) per eval.
    let cycles: Vec<u64> = start.order.iter().map(|&(t, _)| lookup(t).cycles).collect();
    let ids: Vec<TaskId> = start.order.iter().map(|&(t, _)| t).collect();
    let mut rates: Vec<RateIdx> = start.order.iter().map(|&(_, r)| r).collect();

    let eval = |cycles: &[u64], rates: &[RateIdx]| -> f64 {
        // SPT order for fixed per-task rates.
        let mut seq: Vec<(u64, RateIdx)> =
            cycles.iter().copied().zip(rates.iter().copied()).collect();
        seq.sort_by(|a, b| {
            table
                .exec_time(a.1, a.0)
                .partial_cmp(&table.exec_time(b.1, b.0))
                .expect("finite")
        });
        sequence_cost(params, table, &seq).total()
    };

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut cur_cost = eval(&cycles, &rates);
    let mut best_rates = rates.clone();
    let mut best_cost = cur_cost;
    let mut temp = cur_cost * 0.05;
    let cooling = 0.999f64;

    for _ in 0..iterations {
        let i = rng.gen_range(0..rates.len());
        let up = rng.gen_bool(0.5);
        let new_rate = if up {
            if rates[i] >= table.max_rate() {
                continue;
            }
            rates[i] + 1
        } else {
            if rates[i] == 0 {
                continue;
            }
            rates[i] - 1
        };
        let old = rates[i];
        rates[i] = new_rate;
        if makespan(&cycles, &rates, table) > deadline + 1e-9 {
            rates[i] = old;
            continue;
        }
        let cost = eval(&cycles, &rates);
        let accept = cost <= cur_cost || rng.gen_bool(((cur_cost - cost) / temp).exp().min(1.0));
        if accept {
            cur_cost = cost;
            if cost < best_cost {
                best_cost = cost;
                best_rates.clone_from(&rates);
            }
        } else {
            rates[i] = old;
        }
        temp = (temp * cooling).max(best_cost * 1e-6);
    }

    // Materialize the best plan in SPT order.
    let mut entries: Vec<(TaskId, RateIdx, u64, f64)> = Vec::with_capacity(ids.len());
    for i in 0..ids.len() {
        entries.push((
            ids[i],
            best_rates[i],
            cycles[i],
            table.exec_time(best_rates[i], cycles[i]),
        ));
    }
    entries.sort_by(|a, b| a.3.partial_cmp(&b.3).expect("finite").then(a.0.cmp(&b.0)));
    let order: Vec<(TaskId, RateIdx)> = entries.iter().map(|&(t, r, _, _)| (t, r)).collect();
    let seq: Vec<(u64, RateIdx)> = entries.iter().map(|&(_, r, c, _)| (c, r)).collect();
    let predicted_cost = sequence_cost(params, table, &seq).total();
    Some(SingleCorePlan {
        order,
        predicted_cost,
    })
}

/// Total energy of a per-task rate assignment: `Σ L·E(p)`.
fn plan_energy(cycles: &[u64], rates: &[RateIdx], table: &RateTable) -> f64 {
    cycles
        .iter()
        .zip(rates)
        .map(|(&c, &r)| table.energy(r, c))
        .sum()
}

/// Greedy schedule under *both* budgets of Section III-A: a common
/// deadline and a total energy budget. This is the problem Theorem 1
/// proves NP-complete, so the greedy is necessarily incomplete: it may
/// return `None` on instances that a subset-sum-shaped assignment could
/// satisfy (e.g. the Theorem 1 gadget at exact equality). What it
/// guarantees:
///
/// * any returned plan satisfies both budgets (soundness);
/// * `None` is exact whenever one budget alone is already impossible
///   (all-max-rate time, or all-min-rate energy);
/// * with a `None` budget on either side it degenerates to the exact
///   single-budget feasibility of the respective greedy.
///
/// Strategy: start from the all-minimum-rate assignment (least energy)
/// and escalate the step saving the most time per joule added until the
/// deadline is met or the energy budget is exhausted; then, within the
/// remaining energy slack, continue escalating by least cost-per-second
/// to improve the monetary objective while both budgets keep holding.
#[must_use]
pub fn schedule_single_core_with_budgets(
    tasks: &[Task],
    table: &RateTable,
    params: CostParams,
    deadline: Option<f64>,
    energy_budget: Option<f64>,
) -> Option<SingleCorePlan> {
    if tasks.is_empty() {
        return Some(SingleCorePlan {
            order: Vec::new(),
            predicted_cost: 0.0,
        });
    }
    let deadline = deadline.unwrap_or(f64::INFINITY);
    let energy_budget = energy_budget.unwrap_or(f64::INFINITY);

    // Ascending-cycle order (Theorem 3's shape), all at the slowest rate.
    let mut refs: Vec<&Task> = tasks.iter().collect();
    refs.sort_by_key(|t| (t.cycles, t.id));
    let cycles: Vec<u64> = refs.iter().map(|t| t.cycles).collect();
    let ids: Vec<TaskId> = refs.iter().map(|t| t.id).collect();
    let n = cycles.len();
    let mut rates: Vec<RateIdx> = vec![0; n];

    // Exact one-sided infeasibility checks.
    let min_time: f64 = cycles
        .iter()
        .map(|&c| table.exec_time(table.max_rate(), c))
        .sum();
    if min_time > deadline + 1e-9 {
        return None;
    }
    if plan_energy(&cycles, &rates, table) > energy_budget + 1e-9 {
        return None;
    }

    // Phase 1: meet the deadline, spending energy as efficiently as
    // possible (max seconds saved per joule).
    while makespan(&cycles, &rates, table) > deadline + 1e-9 {
        let mut best: Option<(f64, usize)> = None;
        for i in 0..n {
            let r = rates[i];
            if r >= table.max_rate() {
                continue;
            }
            let dt = table.exec_time(r, cycles[i]) - table.exec_time(r + 1, cycles[i]);
            let de = table.energy(r + 1, cycles[i]) - table.energy(r, cycles[i]);
            let ratio = de / dt; // joules per second saved; minimize
            if best.is_none_or(|(b, _)| ratio < b) {
                best = Some((ratio, i));
            }
        }
        let (_, i) = best?;
        rates[i] += 1;
        if plan_energy(&cycles, &rates, table) > energy_budget + 1e-9 {
            return None; // greedy exhausted the budget before the deadline
        }
    }

    // Phase 2: spend remaining energy slack on cost improvements. Only
    // take escalations that *reduce* the positional cost and keep the
    // energy budget.
    loop {
        let mut best: Option<(f64, usize)> = None;
        for i in 0..n {
            let r = rates[i];
            if r >= table.max_rate() {
                continue;
            }
            let kb = n - i; // backward position
            let dcost = (params.c_backward(table, kb, r + 1) - params.c_backward(table, kb, r))
                * cycles[i] as f64;
            if dcost >= -1e-15 {
                continue;
            }
            let de = table.energy(r + 1, cycles[i]) - table.energy(r, cycles[i]);
            if plan_energy(&cycles, &rates, table) + de > energy_budget + 1e-9 {
                continue;
            }
            if best.is_none_or(|(b, _)| dcost < b) {
                best = Some((dcost, i));
            }
        }
        match best {
            Some((_, i)) => rates[i] += 1,
            None => break,
        }
    }

    // SPT order with fixed per-task rates.
    let mut entries: Vec<(TaskId, RateIdx, u64, f64)> = ids
        .iter()
        .zip(&rates)
        .zip(&cycles)
        .map(|((&tid, &r), &c)| (tid, r, c, table.exec_time(r, c)))
        .collect();
    entries.sort_by(|a, b| a.3.partial_cmp(&b.3).expect("finite").then(a.0.cmp(&b.0)));
    let order: Vec<(TaskId, RateIdx)> = entries.iter().map(|&(t, r, _, _)| (t, r)).collect();
    let seq: Vec<(u64, RateIdx)> = entries.iter().map(|&(_, r, c, _)| (c, r)).collect();
    let predicted_cost = sequence_cost(params, table, &seq).total();
    Some(SingleCorePlan {
        order,
        predicted_cost,
    })
}

/// Multi-core greedy: assign tasks with Workload Based Greedy
/// (Algorithm 3), then escalate rates per core until every core's
/// sequence meets the common deadline. Returns `None` when some core is
/// infeasible even at its top rate — note this is *heuristic*
/// infeasibility: WBG's cost-optimal assignment may overload one core
/// where a makespan-optimal assignment would fit (the underlying
/// decision problem is Theorem 2's NP-complete one, so an exact answer
/// is exponential anyway).
#[must_use]
pub fn schedule_multicore_with_deadline(
    tasks: &[Task],
    platform: &dvfs_model::Platform,
    params: CostParams,
    deadline: f64,
) -> Option<dvfs_model::BatchPlan> {
    let assignment = crate::batch::schedule_wbg(tasks, platform, params);
    let mut out = dvfs_model::BatchPlan::empty(platform.num_cores());
    for (j, seq) in assignment.per_core.iter().enumerate() {
        let table = &platform.core(j).expect("core in range").rates;
        let core_tasks: Vec<Task> = seq
            .iter()
            .map(|&(tid, _)| {
                tasks
                    .iter()
                    .find(|t| t.id == tid)
                    .expect("plan references known tasks")
                    .clone()
            })
            .collect();
        let plan = schedule_single_core_with_deadline(&core_tasks, table, params, deadline)?;
        out.per_core[j] = plan.order;
    }
    Some(out)
}

/// Makespan of a [`SingleCorePlan`] against a task set.
///
/// # Panics
/// Panics when the plan references unknown task ids.
#[must_use]
pub fn plan_makespan(plan: &SingleCorePlan, tasks: &[Task], table: &RateTable) -> f64 {
    plan.order
        .iter()
        .map(|&(tid, r)| {
            let t = tasks.iter().find(|t| t.id == tid).expect("task exists");
            table.exec_time(r, t.cycles)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::min_energy_under_deadline;
    use dvfs_model::task::batch_workload;
    use proptest::prelude::*;

    fn table() -> RateTable {
        RateTable::i7_950_table2()
    }

    #[test]
    fn loose_deadline_reduces_to_plain_ltl() {
        let tasks = batch_workload(&[5_000_000_000, 1_000_000_000, 2_000_000_000]);
        let params = CostParams::batch_paper();
        let unconstrained = crate::batch::schedule_single_core(&tasks, &table(), params);
        let constrained =
            schedule_single_core_with_deadline(&tasks, &table(), params, 1e9).unwrap();
        assert_eq!(constrained.order, unconstrained.order);
        assert!(
            (constrained.predicted_cost - unconstrained.predicted_cost).abs()
                / unconstrained.predicted_cost
                < 1e-12
        );
    }

    #[test]
    fn infeasible_deadline_returns_none() {
        let tasks = batch_workload(&[3_000_000_000]);
        // Fastest possible: 3e9 × 0.33 ns = 0.99 s.
        assert!(schedule_single_core_with_deadline(
            &tasks,
            &table(),
            CostParams::batch_paper(),
            0.5
        )
        .is_none());
        assert!(schedule_single_core_with_deadline(
            &tasks,
            &table(),
            CostParams::batch_paper(),
            1.0
        )
        .is_some());
    }

    #[test]
    fn feasibility_matches_exact_solver() {
        let cycles = [2_000_000_000u64, 1_500_000_000, 800_000_000];
        let tasks = batch_workload(&cycles);
        let params = CostParams::batch_paper();
        for deadline in [0.5f64, 1.0, 1.42, 1.45, 1.6, 2.0, 3.0] {
            let heuristic = schedule_single_core_with_deadline(&tasks, &table(), params, deadline);
            let exact = min_energy_under_deadline(&cycles, &table(), deadline);
            assert_eq!(
                heuristic.is_some(),
                exact.is_some(),
                "feasibility disagreement at deadline {deadline}"
            );
        }
    }

    #[test]
    fn schedules_meet_the_deadline() {
        let tasks = batch_workload(&[4_000_000_000, 3_000_000_000, 2_000_000_000, 500_000_000]);
        let params = CostParams::batch_paper();
        for deadline in [3.2f64, 3.6, 4.0, 5.0, 6.0] {
            if let Some(plan) =
                schedule_single_core_with_deadline(&tasks, &table(), params, deadline)
            {
                let span = plan_makespan(&plan, &tasks, &table());
                assert!(
                    span <= deadline + 1e-9,
                    "deadline {deadline} violated: makespan {span}"
                );
            }
        }
    }

    #[test]
    fn tighter_deadlines_cost_more() {
        let tasks = batch_workload(&[6_000_000_000, 2_500_000_000, 900_000_000, 4_100_000_000]);
        let params = CostParams::batch_paper();
        let mut prev = 0.0;
        // Sweep from loose to the feasibility frontier.
        for deadline in [20.0f64, 8.0, 6.5, 5.5, 5.0, 4.6] {
            let plan = schedule_single_core_with_deadline(&tasks, &table(), params, deadline)
                .expect("feasible");
            assert!(
                plan.predicted_cost >= prev - 1e-9,
                "cost must not drop as the deadline tightens"
            );
            prev = plan.predicted_cost;
        }
    }

    /// Brute-force minimum cost under a deadline: all orders × all rate
    /// assignments. Tiny instances only.
    fn brute_force(
        cycles: &[u64],
        table: &RateTable,
        params: CostParams,
        deadline: f64,
    ) -> Option<f64> {
        fn perms(v: &mut Vec<u64>, k: usize, out: &mut Vec<Vec<u64>>) {
            if k == v.len() {
                out.push(v.clone());
                return;
            }
            for i in k..v.len() {
                v.swap(k, i);
                perms(v, k + 1, out);
                v.swap(k, i);
            }
        }
        let mut orders = Vec::new();
        perms(&mut cycles.to_vec(), 0, &mut orders);
        let nrates = table.len();
        let mut best: Option<f64> = None;
        for order in &orders {
            for combo in 0..nrates.pow(order.len() as u32) {
                let mut acc = combo;
                let seq: Vec<(u64, RateIdx)> = order
                    .iter()
                    .map(|&c| {
                        let r = acc % nrates;
                        acc /= nrates;
                        (c, r)
                    })
                    .collect();
                let span: f64 = seq.iter().map(|&(c, r)| table.exec_time(r, c)).sum();
                if span > deadline + 1e-9 {
                    continue;
                }
                let cost = sequence_cost(params, table, &seq).total();
                best = Some(best.map_or(cost, |b: f64| b.min(cost)));
            }
        }
        best
    }

    #[test]
    fn heuristic_close_to_brute_force_optimum() {
        let table = RateTable::i7_950_two_rates();
        let params = CostParams::batch_paper();
        for cycles in [
            vec![2_000_000_000u64, 1_000_000_000, 3_000_000_000],
            vec![900_000_000u64, 900_000_000, 900_000_000, 900_000_000],
            vec![5_000_000_000u64, 200_000_000],
        ] {
            let tasks = batch_workload(&cycles);
            let min_span: f64 = cycles.iter().map(|&c| table.exec_time(1, c)).sum();
            let max_span: f64 = cycles.iter().map(|&c| table.exec_time(0, c)).sum();
            for frac in [1.05f64, 1.2, 1.5, 1.9] {
                let deadline = (min_span * frac).min(max_span * 1.1);
                let heuristic =
                    schedule_single_core_with_deadline(&tasks, &table, params, deadline);
                let best = brute_force(&cycles, &table, params, deadline);
                match (heuristic, best) {
                    (Some(plan), Some(opt)) => assert!(
                        plan.predicted_cost <= opt * 1.10 + 1e-12,
                        "heuristic {:.6} vs optimum {opt:.6} (deadline {deadline})",
                        plan.predicted_cost
                    ),
                    (None, None) => {}
                    other => panic!("feasibility mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn anneal_never_worse_than_greedy_and_respects_deadline() {
        let table = table();
        let params = CostParams::batch_paper();
        let cycles = [
            4_000_000_000u64,
            3_000_000_000,
            2_000_000_000,
            900_000_000,
            5_500_000_000,
        ];
        let tasks = batch_workload(&cycles);
        for deadline in [5.2f64, 6.0, 7.5, 10.0] {
            let greedy = schedule_single_core_with_deadline(&tasks, &table, params, deadline);
            let annealed = anneal_under_deadline(&tasks, &table, params, deadline, 20_000, 9);
            match (greedy, annealed) {
                (Some(g), Some(a)) => {
                    assert!(a.predicted_cost <= g.predicted_cost * (1.0 + 1e-9));
                    assert!(plan_makespan(&a, &tasks, &table) <= deadline + 1e-9);
                }
                (None, None) => {}
                other => panic!("feasibility mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn anneal_closes_the_greedy_gap_on_two_rate_instances() {
        let table = RateTable::i7_950_two_rates();
        let params = CostParams::batch_paper();
        let cycles = vec![2_000_000_000u64, 1_000_000_000, 3_000_000_000];
        let tasks = batch_workload(&cycles);
        let min_span: f64 = cycles.iter().map(|&c| table.exec_time(1, c)).sum();
        for frac in [1.05f64, 1.2, 1.5] {
            let deadline = min_span * frac;
            let annealed = anneal_under_deadline(&tasks, &table, params, deadline, 30_000, 4)
                .expect("feasible");
            let best = brute_force(&cycles, &table, params, deadline).expect("feasible");
            assert!(
                annealed.predicted_cost <= best * 1.02 + 1e-12,
                "anneal {:.6} vs optimum {best:.6} at deadline {deadline}",
                annealed.predicted_cost
            );
        }
    }

    #[test]
    fn anneal_deterministic_per_seed() {
        let table = table();
        let params = CostParams::batch_paper();
        let tasks = batch_workload(&[6_000_000_000, 2_000_000_000, 4_000_000_000]);
        let a = anneal_under_deadline(&tasks, &table, params, 4.5, 5_000, 42).unwrap();
        let b = anneal_under_deadline(&tasks, &table, params, 4.5, 5_000, 42).unwrap();
        assert_eq!(a, b);
    }

    fn budget_plan_energy(
        plan: &SingleCorePlan,
        tasks: &[dvfs_model::Task],
        table: &RateTable,
    ) -> f64 {
        plan.order
            .iter()
            .map(|&(tid, r)| {
                let t = tasks.iter().find(|t| t.id == tid).unwrap();
                table.energy(r, t.cycles)
            })
            .sum()
    }

    #[test]
    fn budgets_soundness_both_constraints_hold() {
        let table = table();
        let params = CostParams::batch_paper();
        let cycles = [4_000_000_000u64, 2_000_000_000, 1_000_000_000];
        let tasks = batch_workload(&cycles);
        let min_time: f64 = cycles.iter().map(|&c| table.exec_time(4, c)).sum();
        let min_energy: f64 = cycles.iter().map(|&c| table.energy(0, c)).sum();
        for dl_frac in [1.1f64, 1.5, 2.5] {
            for e_frac in [1.05f64, 1.3, 2.2] {
                let deadline = min_time * dl_frac;
                let budget = min_energy * e_frac;
                if let Some(plan) = schedule_single_core_with_budgets(
                    &tasks,
                    &table,
                    params,
                    Some(deadline),
                    Some(budget),
                ) {
                    assert!(plan_makespan(&plan, &tasks, &table) <= deadline + 1e-9);
                    assert!(budget_plan_energy(&plan, &tasks, &table) <= budget + 1e-9);
                }
            }
        }
    }

    #[test]
    fn budgets_one_sided_infeasibility_is_exact() {
        let table = table();
        let params = CostParams::batch_paper();
        let tasks = batch_workload(&[3_000_000_000]);
        // Time-impossible: below the all-max span.
        assert!(
            schedule_single_core_with_budgets(&tasks, &table, params, Some(0.5), None).is_none()
        );
        // Energy-impossible: below the all-min energy (3e9 × 3.375 nJ).
        assert!(
            schedule_single_core_with_budgets(&tasks, &table, params, None, Some(10.0)).is_none()
        );
        // Both generous: feasible.
        assert!(
            schedule_single_core_with_budgets(&tasks, &table, params, Some(10.0), Some(100.0))
                .is_some()
        );
    }

    #[test]
    fn budgets_unconstrained_equals_plain_ltl_cost() {
        let table = table();
        let params = CostParams::batch_paper();
        let tasks = batch_workload(&[6_000_000_000, 1_000_000_000, 2_500_000_000]);
        let free = schedule_single_core_with_budgets(&tasks, &table, params, None, None)
            .expect("always feasible");
        let ltl = crate::batch::schedule_single_core(&tasks, &table, params);
        assert!(
            (free.predicted_cost - ltl.predicted_cost).abs() / ltl.predicted_cost < 1e-9,
            "unconstrained budgets must recover the LTL optimum: {} vs {}",
            free.predicted_cost,
            ltl.predicted_cost
        );
    }

    #[test]
    fn budgets_tight_energy_forces_slow_rates() {
        let table = table();
        let params = CostParams::batch_paper();
        let cycles = [2_000_000_000u64, 2_000_000_000];
        let tasks = batch_workload(&cycles);
        let min_energy: f64 = cycles.iter().map(|&c| table.energy(0, c)).sum();
        let plan = schedule_single_core_with_budgets(
            &tasks,
            &table,
            params,
            None,
            Some(min_energy * 1.001),
        )
        .expect("feasible at the floor");
        assert!(
            plan.order.iter().all(|&(_, r)| r == 0),
            "near-floor budget must pin the slowest rate: {:?}",
            plan.order
        );
    }

    #[test]
    fn multicore_deadline_meets_every_core() {
        use dvfs_model::Platform;
        let platform = Platform::i7_950_quad();
        let params = CostParams::batch_paper();
        let cycles: Vec<u64> = (1..=12).map(|i| i * 800_000_000).collect();
        let tasks = batch_workload(&cycles);
        // Heaviest core carries ~19.2 Gcycles (>= 6.34 s even at 3 GHz);
        // unconstrained WBG would take ~10.5 s there, so a 7 s deadline
        // forces escalation while staying feasible.
        let plan = schedule_multicore_with_deadline(&tasks, &platform, params, 7.0)
            .expect("feasible with escalation");
        for (j, seq) in plan.per_core.iter().enumerate() {
            let table = &platform.core(j).unwrap().rates;
            let span: f64 = seq
                .iter()
                .map(|&(tid, r)| {
                    let t = tasks.iter().find(|t| t.id == tid).unwrap();
                    table.exec_time(r, t.cycles)
                })
                .sum();
            assert!(span <= 7.0 + 1e-9, "core {j} misses: {span}");
        }
        // The end-to-end replay of this plan on the simulator lives in
        // `tests/plan_replay_on_sim.rs` (integration test, so it runs
        // against the library build that dvfs-sim links).
    }

    #[test]
    fn multicore_deadline_infeasible_when_one_task_is_too_big() {
        use dvfs_model::Platform;
        let platform = Platform::i7_950_quad();
        let params = CostParams::batch_paper();
        // 9e9 cycles at 0.33 ns = 2.97 s minimum anywhere.
        let tasks = batch_workload(&[9_000_000_000, 1_000, 1_000]);
        assert!(schedule_multicore_with_deadline(&tasks, &platform, params, 2.0).is_none());
        assert!(schedule_multicore_with_deadline(&tasks, &platform, params, 3.0).is_some());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_deadline_respected_and_feasibility_exact(
            cycles in prop::collection::vec(100_000_000u64..5_000_000_000, 1..10),
            frac in 0.5f64..3.0,
        ) {
            let table = table();
            let params = CostParams::batch_paper();
            let tasks = batch_workload(&cycles);
            let min_span: f64 = cycles.iter().map(|&c| table.exec_time(table.max_rate(), c)).sum();
            let deadline = min_span * frac;
            match schedule_single_core_with_deadline(&tasks, &table, params, deadline) {
                Some(plan) => {
                    prop_assert!(plan_makespan(&plan, &tasks, &table) <= deadline + 1e-9);
                    prop_assert!(frac >= 1.0 - 1e-12);
                }
                None => prop_assert!(frac < 1.0 + 1e-9),
            }
        }
    }
}
