//! Algorithm 1: dominating position ranges.
//!
//! For a backward queue position `k` (the task plus `k − 1` tasks behind
//! it pay for its execution time), the per-cycle cost of running at rate
//! `p_i` is the line `f_i(k) = Re·E(p_i) + Rt·T(p_i)·k` (Equation 20).
//! The *dominating position set* `D_p` of a rate `p` is the set of `k`
//! where `p` minimizes `f`, choosing the higher rate on ties. Because the
//! `f_i` are lines with slopes `Rt·T(p_i)` strictly decreasing in `i`,
//! the minimum over rates is the lower envelope, each `D_p` is a
//! contiguous (possibly empty) range, and the envelope is a convex hull
//! computable in Θ(|P|) with a monotone stack — exactly Algorithm 1.
//!
//! Boundary positions are integers. We compute each boundary with a
//! floating ceil and then repair it by direct `f` comparison, so the
//! result is exact with respect to `f64` line evaluation, including the
//! paper's "higher rate wins ties" convention.

use dvfs_model::{CostParams, RateIdx, RateTable};

/// One dominating range: rate `rate` is optimal for all backward
/// positions `k` with `lb <= k < ub` (`ub = None` means unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeEntry {
    /// The rate index into the originating [`RateTable`].
    pub rate: RateIdx,
    /// Inclusive lower bound of the backward-position range.
    pub lb: u64,
    /// Exclusive upper bound; `None` for the last (unbounded) range.
    pub ub: Option<u64>,
}

impl RangeEntry {
    /// Whether backward position `k` falls in this range.
    #[must_use]
    pub fn contains(&self, k: u64) -> bool {
        k >= self.lb && self.ub.is_none_or(|ub| k < ub)
    }

    /// Inclusive upper bound capped at `n` (the current queue length),
    /// or `None` when the range starts beyond `n`.
    #[must_use]
    pub fn clamped_end(&self, n: u64) -> Option<u64> {
        let hi = match self.ub {
            Some(ub) => (ub - 1).min(n),
            None => n,
        };
        (self.lb <= hi).then_some(hi)
    }
}

/// The full partition of backward positions `1..∞` among the rates of a
/// table (the non-empty `D_p` of Algorithm 1, i.e. the set `P̂`).
///
/// ```
/// use dvfs_core::DominatingRanges;
/// use dvfs_model::{CostParams, RateTable};
///
/// let table = RateTable::i7_950_table2();
/// let dr = DominatingRanges::compute(&table, CostParams::batch_paper());
/// // A task that delays only itself runs slow; one that delays many
/// // runs at the top rate.
/// assert_eq!(dr.rate_for(1), 0);
/// assert_eq!(dr.rate_for(1000), table.max_rate());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DominatingRanges {
    entries: Vec<RangeEntry>,
    /// Cost-line coefficients per entry: `(Re·E(p), Rt·T(p))`.
    coeffs: Vec<(f64, f64)>,
}

impl DominatingRanges {
    /// Run Algorithm 1 for `table` under `params`. Θ(|P|).
    #[must_use]
    pub fn compute(table: &RateTable, params: CostParams) -> Self {
        // Dual points t_i = (x = Rt·T(p_i), y = Re·E(p_i)); ascending
        // rate order gives strictly decreasing x and increasing y.
        let pts: Vec<(f64, f64)> = table
            .points()
            .iter()
            .map(|r| (params.rt * r.time_per_cycle, params.re * r.energy_per_cycle))
            .collect();
        let f = |i: usize, k: u64| pts[i].1 + pts[i].0 * k as f64;

        // Lower-hull monotone stack (Algorithm 1 lines 8–16).
        let cross = |o: (f64, f64), a: (f64, f64), b: (f64, f64)| -> f64 {
            (a.0 - o.0) * (b.1 - o.1) - (b.0 - o.0) * (a.1 - o.1)
        };
        let mut stack: Vec<usize> = Vec::with_capacity(pts.len());
        for i in 0..pts.len() {
            while stack.len() >= 2 {
                let a = stack[stack.len() - 2];
                let b = stack[stack.len() - 1];
                if cross(pts[a], pts[b], pts[i]) >= 0.0 {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(i);
        }

        // Boundary extraction (lines 17–27) with integer repair.
        let mut entries = Vec::with_capacity(stack.len());
        let mut lb: u64 = 1;
        for w in 0..stack.len() {
            let cur = stack[w];
            if w + 1 == stack.len() {
                entries.push(RangeEntry {
                    rate: cur,
                    lb,
                    ub: None,
                });
                break;
            }
            let nxt = stack[w + 1];
            // First integer k where the faster line is no worse:
            // k >= (y_cur − y_nxt)/(x_nxt − x_cur)... solved for
            // f_nxt(k) <= f_cur(k); ceil then repair against exact f64
            // comparisons (ties go to the higher rate, i.e. to nxt).
            let raw = (pts[nxt].1 - pts[cur].1) / (pts[cur].0 - pts[nxt].0);
            let mut k = raw.ceil().max(1.0) as u64;
            while k > 1 && f(nxt, k - 1) <= f(cur, k - 1) {
                k -= 1;
            }
            while f(nxt, k) > f(cur, k) {
                k += 1;
            }
            let nlb = k.max(lb);
            if lb < nlb {
                entries.push(RangeEntry {
                    rate: cur,
                    lb,
                    ub: Some(nlb),
                });
            }
            lb = nlb;
        }
        let coeffs = entries
            .iter()
            .map(|e| {
                let r = table.rate(e.rate);
                (params.re * r.energy_per_cycle, params.rt * r.time_per_cycle)
            })
            .collect();
        DominatingRanges { entries, coeffs }
    }

    /// The non-empty ranges in ascending position (and rate) order.
    #[must_use]
    pub fn entries(&self) -> &[RangeEntry] {
        &self.entries
    }

    /// `|P̂|`: number of rates that dominate at least one position.
    #[must_use]
    pub fn num_used_rates(&self) -> usize {
        self.entries.len()
    }

    /// The cost-line coefficients `(Re·E(p), Rt·T(p))` of range `i`.
    #[must_use]
    pub fn coeffs(&self, i: usize) -> (f64, f64) {
        self.coeffs[i]
    }

    /// Index of the range containing backward position `k` (binary
    /// search; `O(log |P̂|)`).
    ///
    /// # Panics
    /// Panics when `k == 0` (positions are 1-based).
    #[must_use]
    pub fn range_index_for(&self, k: u64) -> usize {
        assert!(k >= 1, "backward positions are 1-based");
        // partition_point: first entry with lb > k, minus one.
        let i = self.entries.partition_point(|e| e.lb <= k);
        debug_assert!(i >= 1);
        i - 1
    }

    /// The optimal rate for backward position `k` (ties already resolved
    /// to the higher rate).
    #[must_use]
    pub fn rate_for(&self, k: u64) -> RateIdx {
        self.entries[self.range_index_for(k)].rate
    }

    /// `C^B(k) = min_p C^B(k, p)`: the per-cycle cost at backward
    /// position `k` under the optimal rate.
    #[must_use]
    pub fn cost_at(&self, k: u64) -> f64 {
        let i = self.range_index_for(k);
        let (e, t) = self.coeffs[i];
        e + t * k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force_rate(table: &RateTable, params: CostParams, k: u64) -> RateIdx {
        let mut best = (f64::INFINITY, 0usize);
        for p in 0..table.len() {
            let r = table.rate(p);
            let c = params.re * r.energy_per_cycle + k as f64 * params.rt * r.time_per_cycle;
            if c <= best.0 {
                best = (c, p); // later (higher) rate wins ties
            }
        }
        best.1
    }

    #[test]
    fn table2_ranges_match_brute_force() {
        let table = RateTable::i7_950_table2();
        let params = CostParams::batch_paper();
        let dr = DominatingRanges::compute(&table, params);
        for k in 1..100_000u64 {
            assert_eq!(
                dr.rate_for(k),
                brute_force_rate(&table, params, k),
                "mismatch at backward position {k}"
            );
        }
    }

    #[test]
    fn ranges_are_contiguous_from_one() {
        let table = RateTable::i7_950_table2();
        let dr = DominatingRanges::compute(&table, CostParams::batch_paper());
        let es = dr.entries();
        assert_eq!(es[0].lb, 1);
        for w in es.windows(2) {
            assert_eq!(w[0].ub, Some(w[1].lb), "ranges must tile the positions");
            assert!(w[0].rate < w[1].rate, "rates ascend with position");
        }
        assert_eq!(es.last().unwrap().ub, None);
    }

    #[test]
    fn position_one_uses_slowest_useful_rate() {
        // With batch params on Table II, a task that delays only itself
        // should run slow; the first range must start at the min rate or
        // at least at the hull's cheapest line at k=1.
        let table = RateTable::i7_950_table2();
        let params = CostParams::batch_paper();
        let dr = DominatingRanges::compute(&table, params);
        assert_eq!(dr.rate_for(1), brute_force_rate(&table, params, 1));
    }

    #[test]
    fn far_positions_use_fastest_rate() {
        let table = RateTable::i7_950_table2();
        let dr = DominatingRanges::compute(&table, CostParams::batch_paper());
        assert_eq!(dr.rate_for(1_000_000_000), table.max_rate());
    }

    #[test]
    fn cost_at_is_increasing_in_backward_position() {
        // Lemma 2 restated: C^B*(k) strictly increases with k.
        let table = RateTable::i7_950_table2();
        let dr = DominatingRanges::compute(&table, CostParams::batch_paper());
        let mut prev = 0.0;
        for k in 1..10_000 {
            let c = dr.cost_at(k);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn energy_heavy_params_never_leave_the_slowest_rate_early() {
        // Huge Re relative to Rt: the slowest rate should dominate a very
        // long prefix of positions.
        let table = RateTable::i7_950_table2();
        let params = CostParams::new(1000.0, 1e-9).unwrap();
        let dr = DominatingRanges::compute(&table, params);
        assert_eq!(dr.rate_for(1), 0);
        assert_eq!(dr.rate_for(1_000_000), 0);
    }

    #[test]
    fn time_heavy_params_use_only_the_fastest_rate() {
        let table = RateTable::i7_950_table2();
        let params = CostParams::new(1e-9, 1000.0).unwrap();
        let dr = DominatingRanges::compute(&table, params);
        assert_eq!(dr.num_used_rates(), 1);
        assert_eq!(dr.entries()[0].rate, table.max_rate());
        assert_eq!(dr.entries()[0].lb, 1);
    }

    #[test]
    fn tie_positions_choose_higher_rate() {
        // Construct two rates whose lines cross exactly at k = 10:
        // f1(k) = 100 + 10k, f2(k) = 150 + 5k → equal at k = 10.
        let table = RateTable::new(vec![
            dvfs_model::RatePoint {
                freq_hz: 0.1,
                energy_per_cycle: 100.0,
                time_per_cycle: 10.0,
            },
            dvfs_model::RatePoint {
                freq_hz: 0.2,
                energy_per_cycle: 150.0,
                time_per_cycle: 5.0,
            },
        ])
        .unwrap();
        let params = CostParams::new(1.0, 1.0).unwrap();
        let dr = DominatingRanges::compute(&table, params);
        assert_eq!(dr.rate_for(9), 0);
        assert_eq!(dr.rate_for(10), 1, "tie at k=10 goes to the higher rate");
        assert_eq!(dr.rate_for(11), 1);
    }

    #[test]
    fn single_rate_table_covers_everything() {
        let table = RateTable::synthetic_quadratic(1, 2.0, 2.0);
        let dr = DominatingRanges::compute(&table, CostParams::batch_paper());
        assert_eq!(dr.num_used_rates(), 1);
        assert_eq!(dr.rate_for(1), 0);
        assert_eq!(dr.rate_for(u64::MAX / 2), 0);
    }

    #[test]
    fn range_entry_helpers() {
        let e = RangeEntry {
            rate: 2,
            lb: 5,
            ub: Some(9),
        };
        assert!(!e.contains(4));
        assert!(e.contains(5));
        assert!(e.contains(8));
        assert!(!e.contains(9));
        assert_eq!(e.clamped_end(100), Some(8));
        assert_eq!(e.clamped_end(6), Some(6));
        assert_eq!(e.clamped_end(4), None);
        let last = RangeEntry {
            rate: 4,
            lb: 20,
            ub: None,
        };
        assert!(last.contains(u64::MAX));
        assert_eq!(last.clamped_end(50), Some(50));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(100))]

        #[test]
        fn prop_matches_brute_force(
            levels in 2usize..12,
            re in 0.01f64..10.0,
            rt in 0.01f64..10.0,
            ks in prop::collection::vec(1u64..200_000, 1..50),
        ) {
            let table = RateTable::synthetic_quadratic(levels, 0.5, 3.5);
            let params = CostParams::new(re, rt).unwrap();
            let dr = DominatingRanges::compute(&table, params);
            for k in ks {
                prop_assert_eq!(dr.rate_for(k), brute_force_rate(&table, params, k));
            }
        }

        #[test]
        fn prop_ranges_tile_positions(levels in 1usize..32, re in 0.01f64..5.0, rt in 0.01f64..5.0) {
            let table = RateTable::synthetic_quadratic(levels, 0.3, 4.0);
            let params = CostParams::new(re, rt).unwrap();
            let dr = DominatingRanges::compute(&table, params);
            let es = dr.entries();
            prop_assert_eq!(es[0].lb, 1);
            for w in es.windows(2) {
                prop_assert_eq!(w[0].ub, Some(w[1].lb));
            }
            prop_assert_eq!(es[es.len()-1].ub, None);
        }
    }
}
