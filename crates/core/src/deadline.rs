//! Scheduling with deadlines (Section III-A).
//!
//! The paper proves Deadline-SingleCore NP-complete by reduction from
//! Partition (Theorem 1) and extends it to Deadline-MultiCore
//! (Theorem 2). This module implements:
//!
//! * [`reduction_from_partition`] — the exact gadget of Theorem 1: two
//!   rates with `T(p_l)=2, T(p_h)=1, E(p_l)=1, E(p_h)=4`, time budget
//!   `1.5·S`, energy budget `2.5·S`;
//! * [`solve_two_rate`] — a pseudo-polynomial exact solver (subset-sum
//!   dynamic program) for two-rate, common-deadline instances;
//! * [`solve_partition_via_reduction`] — Partition answered through the
//!   reduction, demonstrating the equivalence both ways;
//! * [`two_core_deadline_feasible`] — the Theorem 2 instance: two unit
//!   cores, common deadline `S/2`;
//! * [`min_energy_under_deadline`] — an exact Pareto-frontier solver for
//!   the general common-deadline problem with any number of rates
//!   (exponential in the worst case; intended for small instances and
//!   for validating heuristics).

use dvfs_model::{RateIdx, RateTable};

/// A single-core instance: tasks with a *common* deadline and an energy
/// budget, to be run at per-task rates from `table`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineInstance {
    /// Cycle requirement of each task.
    pub cycles: Vec<u64>,
    /// Common absolute deadline (time budget, seconds).
    pub deadline: f64,
    /// Total energy budget (joules).
    pub energy_budget: f64,
    /// The available rates.
    pub table: RateTable,
}

/// Theorem 1's reduction: a Partition instance `a` becomes a
/// Deadline-SingleCore instance that is feasible iff `a` can be split
/// into two halves of equal sum.
#[must_use]
pub fn reduction_from_partition(a: &[u64]) -> DeadlineInstance {
    let s: u64 = a.iter().sum();
    DeadlineInstance {
        cycles: a.to_vec(),
        deadline: 1.5 * s as f64,
        energy_budget: 2.5 * s as f64,
        table: RateTable::theorem1_gadget(),
    }
}

/// Exact solver for **two-rate** common-deadline instances via a
/// subset-sum dynamic program over the cycles run at the high rate.
/// Returns per-task rate indices (into `instance.table`) when feasible.
///
/// Pseudo-polynomial: `O(n · S)` time and `O(S)` space where `S` is the
/// total cycle count.
///
/// # Panics
/// Panics unless the instance has exactly two rates.
#[must_use]
pub fn solve_two_rate(instance: &DeadlineInstance) -> Option<Vec<RateIdx>> {
    assert_eq!(
        instance.table.len(),
        2,
        "solve_two_rate requires a two-rate table"
    );
    let (lo, hi) = (instance.table.rate(0), instance.table.rate(1));
    let s: u64 = instance.cycles.iter().sum();
    let n = instance.cycles.len();

    // reach[h] = Some(i): subset summing to h exists, and its
    // reconstruction uses item i last (set exactly once, while
    // processing item i, with h iterated descending → no reuse).
    let mut reach: Vec<Option<usize>> = vec![None; s as usize + 1];
    reach[0] = Some(usize::MAX); // sentinel for the empty subset
    for (i, &c) in instance.cycles.iter().enumerate() {
        let c = c as usize;
        for h in (c..=s as usize).rev() {
            if reach[h].is_none() && reach[h - c].is_some() {
                reach[h] = Some(i);
            }
        }
    }

    // Feasibility at high-cycle total h:
    //   time(h)   = T_l·(S−h) + T_h·h   (decreasing in h)
    //   energy(h) = E_l·(S−h) + E_h·h   (increasing in h)
    let feasible = |h: u64| -> bool {
        let rest = (s - h) as f64;
        let h = h as f64;
        let time = lo.time_per_cycle * rest + hi.time_per_cycle * h;
        let energy = lo.energy_per_cycle * rest + hi.energy_per_cycle * h;
        time <= instance.deadline + 1e-9 && energy <= instance.energy_budget + 1e-9
    };

    let h = (0..=s).find(|&h| reach[h as usize].is_some() && feasible(h))?;

    // Reconstruct the high-rate subset.
    let mut rates = vec![0usize; n];
    let mut rem = h as usize;
    while rem > 0 {
        let i = reach[rem].expect("reachable sums have provenance");
        rates[i] = 1;
        rem -= instance.cycles[i] as usize;
    }
    Some(rates)
}

/// Answer Partition through Theorem 1's reduction: `Some(mask)` with
/// `mask[i] == true` for one half when the multiset splits evenly.
#[must_use]
pub fn solve_partition_via_reduction(a: &[u64]) -> Option<Vec<bool>> {
    let s: u64 = a.iter().sum();
    if !s.is_multiple_of(2) {
        return None;
    }
    let instance = reduction_from_partition(a);
    let rates = solve_two_rate(&instance)?;
    // The gadget admits a schedule iff the high-rate cycles total exactly
    // S/2 (Theorem 1's counting argument); the high-rate set is one half.
    let half: u64 = a
        .iter()
        .zip(&rates)
        .filter(|&(_, &r)| r == 1)
        .map(|(&c, _)| c)
        .sum();
    debug_assert_eq!(half * 2, s, "gadget forces an exact split");
    Some(rates.iter().map(|&r| r == 1).collect())
}

/// Theorem 2's instance: two identical unit-speed cores, common deadline.
/// Feasible iff the tasks partition into halves each finishing by the
/// deadline; with `deadline = S/2` this *is* Partition. Returns the
/// core-0 membership mask when feasible.
#[must_use]
pub fn two_core_deadline_feasible(cycles: &[u64], deadline: f64) -> Option<Vec<bool>> {
    let s: u64 = cycles.iter().sum();
    // Largest per-core load allowed.
    let cap = deadline.floor();
    if cap < 0.0 {
        return None;
    }
    let cap = cap as u64;
    // Need a subset with sum in [S − cap, cap].
    if (s as f64) > 2.0 * cap as f64 {
        return None;
    }
    let mut reach: Vec<Option<usize>> = vec![None; s as usize + 1];
    reach[0] = Some(usize::MAX);
    for (i, &c) in cycles.iter().enumerate() {
        let c = c as usize;
        for h in (c..=s as usize).rev() {
            if reach[h].is_none() && reach[h - c].is_some() {
                reach[h] = Some(i);
            }
        }
    }
    let lo = s.saturating_sub(cap);
    let pick = (lo..=cap.min(s)).find(|&h| reach[h as usize].is_some())?;
    let mut mask = vec![false; cycles.len()];
    let mut rem = pick as usize;
    while rem > 0 {
        let i = reach[rem].expect("reachable sums have provenance");
        mask[i] = true;
        rem -= cycles[i] as usize;
    }
    Some(mask)
}

/// Exact minimum-energy schedule for a common deadline with an arbitrary
/// rate table: enumerate the Pareto frontier of `(time, energy)` over
/// per-task rate choices (order is irrelevant under a common deadline on
/// one core). Returns the rates and the minimum energy, or `None` when
/// even the fastest rates miss the deadline.
///
/// Worst-case exponential; intended for small `n` (validation and the
/// examples), with dominance pruning that keeps typical instances tiny.
#[must_use]
pub fn min_energy_under_deadline(
    cycles: &[u64],
    table: &RateTable,
    deadline: f64,
) -> Option<(Vec<RateIdx>, f64)> {
    #[derive(Clone)]
    struct State {
        time: f64,
        energy: f64,
        choices: Vec<RateIdx>,
    }
    let mut frontier = vec![State {
        time: 0.0,
        energy: 0.0,
        choices: Vec::new(),
    }];
    for &c in cycles {
        let mut next: Vec<State> = Vec::with_capacity(frontier.len() * table.len());
        for st in &frontier {
            for r in 0..table.len() {
                let time = st.time + table.exec_time(r, c);
                if time > deadline + 1e-9 {
                    continue; // rates get faster with r; but time shrinks → do not break
                }
                let mut choices = st.choices.clone();
                choices.push(r);
                next.push(State {
                    time,
                    energy: st.energy + table.energy(r, c),
                    choices,
                });
            }
        }
        if next.is_empty() {
            return None;
        }
        // Pareto prune: sort by time, keep strictly decreasing energy.
        next.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("finite")
                .then(a.energy.partial_cmp(&b.energy).expect("finite"))
        });
        let mut pruned: Vec<State> = Vec::new();
        let mut best_energy = f64::INFINITY;
        for st in next {
            if st.energy < best_energy - 1e-15 {
                best_energy = st.energy;
                pruned.push(st);
            }
        }
        frontier = pruned;
    }
    frontier
        .into_iter()
        .min_by(|a, b| a.energy.partial_cmp(&b.energy).expect("finite"))
        .map(|s| (s.choices, s.energy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force Partition for ground truth.
    fn partition_exists(a: &[u64]) -> bool {
        let s: u64 = a.iter().sum();
        if !s.is_multiple_of(2) {
            return false;
        }
        let target = s / 2;
        (0..(1u64 << a.len())).any(|mask| {
            let sum: u64 = a
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &c)| c)
                .sum();
            sum == target
        })
    }

    #[test]
    fn reduction_matches_theorem_constants() {
        let inst = reduction_from_partition(&[3, 5, 8]);
        assert_eq!(inst.cycles, vec![3, 5, 8]);
        assert_eq!(inst.deadline, 24.0); // 1.5 * 16
        assert_eq!(inst.energy_budget, 40.0); // 2.5 * 16
        assert_eq!(inst.table.len(), 2);
    }

    #[test]
    fn feasible_partition_instances_solve() {
        // {3, 5, 8}: 3+5 = 8 → partitionable.
        let sol = solve_partition_via_reduction(&[3, 5, 8]).expect("partitionable");
        let s: u64 = [3u64, 5, 8]
            .iter()
            .zip(&sol)
            .filter(|&(_, &m)| m)
            .map(|(&c, _)| c)
            .sum();
        assert_eq!(s, 8);
    }

    #[test]
    fn infeasible_partition_instances_fail() {
        assert!(solve_partition_via_reduction(&[1, 2, 4]).is_none());
        assert!(solve_partition_via_reduction(&[1]).is_none());
        // Even sum but no valid split: {1, 1, 4, 6} → sum 12, target 6 =
        // 6 alone... that splits. Use {2, 2, 2, 10}: sum 16, target 8,
        // subsets: 2,4,6,10,12,14,16 → no 8.
        assert!(solve_partition_via_reduction(&[2, 2, 2, 10]).is_none());
    }

    #[test]
    fn two_rate_solver_respects_both_budgets() {
        let inst = reduction_from_partition(&[4, 4, 4, 4]);
        let rates = solve_two_rate(&inst).expect("feasible: split 8/8");
        let (lo, hi) = (inst.table.rate(0), inst.table.rate(1));
        let time: f64 = inst
            .cycles
            .iter()
            .zip(&rates)
            .map(|(&c, &r)| {
                c as f64
                    * if r == 1 {
                        hi.time_per_cycle
                    } else {
                        lo.time_per_cycle
                    }
            })
            .sum();
        let energy: f64 = inst
            .cycles
            .iter()
            .zip(&rates)
            .map(|(&c, &r)| {
                c as f64
                    * if r == 1 {
                        hi.energy_per_cycle
                    } else {
                        lo.energy_per_cycle
                    }
            })
            .sum();
        assert!(time <= inst.deadline + 1e-9);
        assert!(energy <= inst.energy_budget + 1e-9);
    }

    #[test]
    fn two_core_matches_partition() {
        // deadline = S/2 ⇔ Partition (Theorem 2).
        let a = [3u64, 5, 8];
        let mask = two_core_deadline_feasible(&a, 8.0).expect("partitionable");
        let s0: u64 = a
            .iter()
            .zip(&mask)
            .filter(|&(_, &m)| m)
            .map(|(&c, _)| c)
            .sum();
        assert_eq!(s0, 8); // both halves are 8
        assert!(two_core_deadline_feasible(&[2, 2, 2, 10], 8.0).is_none());
        // Looser deadline admits unbalanced splits.
        assert!(two_core_deadline_feasible(&[2, 2, 2, 10], 10.0).is_some());
        // Impossibly tight deadline fails.
        assert!(two_core_deadline_feasible(&[4, 4], 3.0).is_none());
    }

    #[test]
    fn min_energy_uses_slow_rates_when_deadline_is_loose() {
        let table = RateTable::i7_950_table2();
        let cycles = [1_000_000_000u64, 2_000_000_000];
        let (rates, energy) = min_energy_under_deadline(&cycles, &table, 1e9).unwrap();
        assert!(rates.iter().all(|&r| r == 0), "loose deadline → all slow");
        let expect: f64 = cycles.iter().map(|&c| table.energy(0, c)).sum();
        assert!((energy - expect).abs() < 1e-9);
    }

    #[test]
    fn min_energy_fails_when_even_max_rate_misses() {
        let table = RateTable::i7_950_table2();
        // 3e9 cycles at 0.33 ns = 0.99 s minimum; deadline 0.5 s fails.
        assert!(min_energy_under_deadline(&[3_000_000_000], &table, 0.5).is_none());
    }

    #[test]
    fn min_energy_mixes_rates_under_tight_deadline() {
        let table = RateTable::i7_950_two_rates();
        // Two 1.6e9-cycle tasks: all-slow takes 2.0 s, all-fast 1.056 s.
        // Deadline 1.6 s forces exactly one task fast (1.528 s).
        let (rates, _) = min_energy_under_deadline(&[1_600_000_000, 1_600_000_000], &table, 1.6)
            .expect("feasible with one fast task");
        let fast = rates.iter().filter(|&&r| r == 1).count();
        assert_eq!(fast, 1, "exactly one task should run fast: {rates:?}");
    }

    #[test]
    fn min_energy_matches_exhaustive_enumeration() {
        let table = RateTable::i7_950_table2();
        let cycles = [900_000_000u64, 2_500_000_000, 600_000_000];
        let deadline = 2.0;
        let got = min_energy_under_deadline(&cycles, &table, deadline);
        // Exhaustive 5^3 enumeration.
        let mut best: Option<f64> = None;
        for mask in 0..125usize {
            let mut m = mask;
            let (mut time, mut energy) = (0.0, 0.0);
            for &c in &cycles {
                let r = m % 5;
                m /= 5;
                time += table.exec_time(r, c);
                energy += table.energy(r, c);
            }
            if time <= deadline {
                best = Some(best.map_or(energy, |b: f64| b.min(energy)));
            }
        }
        match (got, best) {
            (Some((_, e)), Some(b)) => assert!((e - b).abs() < 1e-9),
            (None, None) => {}
            other => panic!("solver and enumeration disagree: {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_reduction_equivalent_to_partition(
            a in prop::collection::vec(1u64..60, 1..12),
        ) {
            let via_reduction = solve_partition_via_reduction(&a).is_some();
            prop_assert_eq!(via_reduction, partition_exists(&a));
        }

        #[test]
        fn prop_two_core_equivalent_to_partition(
            a in prop::collection::vec(1u64..60, 1..12),
        ) {
            let s: u64 = a.iter().sum();
            if s.is_multiple_of(2) {
                let feasible = two_core_deadline_feasible(&a, s as f64 / 2.0).is_some();
                prop_assert_eq!(feasible, partition_exists(&a));
            }
        }

        #[test]
        fn prop_returned_masks_are_valid(
            a in prop::collection::vec(1u64..40, 2..10),
        ) {
            if let Some(mask) = solve_partition_via_reduction(&a) {
                let s: u64 = a.iter().sum();
                let half: u64 = a.iter().zip(&mask).filter(|&(_, &m)| m).map(|(&c, _)| c).sum();
                prop_assert_eq!(half * 2, s);
            }
        }
    }
}
