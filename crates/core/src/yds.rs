//! The Yao–Demers–Shenker (YDS) optimal speed-scaling algorithm.
//!
//! The paper's related work (Section VI) anchors on Yao et al.'s
//! "offline optimal algorithm ... for aperiodic real-time applications":
//! given jobs with release times, deadlines, and work, and a *continuous*
//! speed range with convex power `P(s) = s^α`, YDS computes the
//! minimum-energy feasible schedule by repeatedly peeling off the
//! maximum-intensity *critical interval*. We implement it as the
//! continuous-speed energy **lower bound** against which the discrete
//! per-core-DVFS schedulers of this crate are compared (the
//! `yds_compare` experiment binary): the gap between YDS and the
//! discrete exact solver is the price of a finite rate set; the gap
//! between the discrete exact solver and the greedy escalation heuristic
//! is the price of polynomial time.
//!
//! Complexity: the straightforward O(n³) formulation (n ≤ a few
//! thousand comfortably).

/// A YDS job: release time, absolute deadline, and work (cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YdsJob {
    /// Caller-meaningful identifier.
    pub id: u64,
    /// Release time in seconds.
    pub release: f64,
    /// Absolute deadline in seconds (`> release`).
    pub deadline: f64,
    /// Work in cycles.
    pub work: f64,
}

/// One scheduled job: the constant speed (cycles/second) YDS assigns it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YdsAssignment {
    /// The job's identifier.
    pub id: u64,
    /// Execution speed in cycles per second.
    pub speed: f64,
}

/// The full YDS result.
#[derive(Debug, Clone, PartialEq)]
pub struct YdsSchedule {
    /// Per-job speed assignments.
    pub assignments: Vec<YdsAssignment>,
    /// The critical intervals in peel order: `(start, end, intensity)`
    /// in original time coordinates of each round's *transformed*
    /// instance (diagnostic; speeds are what matters).
    pub intervals: Vec<(f64, f64, f64)>,
}

impl YdsSchedule {
    /// Total energy under `P(s) = coeff · s^alpha` per second:
    /// each job runs `work / speed` seconds at power `coeff·speed^alpha`.
    #[must_use]
    pub fn energy(&self, jobs: &[YdsJob], coeff: f64, alpha: f64) -> f64 {
        self.assignments
            .iter()
            .map(|a| {
                let job = jobs
                    .iter()
                    .find(|j| j.id == a.id)
                    .expect("assignment references an input job");
                let duration = job.work / a.speed;
                coeff * a.speed.powf(alpha) * duration
            })
            .sum()
    }

    /// Speed assigned to a job id.
    #[must_use]
    pub fn speed_of(&self, id: u64) -> Option<f64> {
        self.assignments
            .iter()
            .find(|a| a.id == id)
            .map(|a| a.speed)
    }
}

/// Run YDS.
///
/// # Panics
/// Panics when a job has a non-positive window or non-positive work.
#[must_use]
pub fn yds(jobs: &[YdsJob]) -> YdsSchedule {
    for j in jobs {
        assert!(
            j.deadline > j.release && j.work > 0.0,
            "job {} must have a positive window and work",
            j.id
        );
    }
    let mut remaining: Vec<YdsJob> = jobs.to_vec();
    let mut assignments = Vec::with_capacity(jobs.len());
    let mut intervals = Vec::new();

    while !remaining.is_empty() {
        // Candidate interval endpoints: all releases and deadlines.
        let mut starts: Vec<f64> = remaining.iter().map(|j| j.release).collect();
        starts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        starts.dedup();
        let mut ends: Vec<f64> = remaining.iter().map(|j| j.deadline).collect();
        ends.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ends.dedup();

        // Maximum-intensity interval.
        let mut best: Option<(f64, f64, f64)> = None; // (t1, t2, g)
        for &t1 in &starts {
            for &t2 in &ends {
                if t2 <= t1 {
                    continue;
                }
                let work: f64 = remaining
                    .iter()
                    .filter(|j| j.release >= t1 - 1e-12 && j.deadline <= t2 + 1e-12)
                    .map(|j| j.work)
                    .sum();
                if work <= 0.0 {
                    continue;
                }
                let g = work / (t2 - t1);
                if best.is_none_or(|(_, _, bg)| g > bg) {
                    best = Some((t1, t2, g));
                }
            }
        }
        let (t1, t2, g) = best.expect("non-empty remaining set has a critical interval");
        intervals.push((t1, t2, g));

        // Peel: jobs inside the critical interval run at speed g.
        let (inside, outside): (Vec<YdsJob>, Vec<YdsJob>) = remaining
            .into_iter()
            .partition(|j| j.release >= t1 - 1e-12 && j.deadline <= t2 + 1e-12);
        for j in &inside {
            assignments.push(YdsAssignment { id: j.id, speed: g });
        }

        // Collapse [t1, t2] out of the timeline for the survivors.
        let collapse = |t: f64| -> f64 {
            if t <= t1 {
                t
            } else if t >= t2 {
                t - (t2 - t1)
            } else {
                t1
            }
        };
        remaining = outside
            .into_iter()
            .map(|mut j| {
                j.release = collapse(j.release);
                j.deadline = collapse(j.deadline);
                j
            })
            .collect();
    }
    YdsSchedule {
        assignments,
        intervals,
    }
}

/// Quantize a YDS (continuous) speed up to the nearest available rate of
/// a discrete table — the standard way to apply YDS on real DVFS
/// hardware. Returns `None` when even the top rate is too slow.
#[must_use]
pub fn quantize_speed_up(
    table: &dvfs_model::RateTable,
    speed_hz: f64,
) -> Option<dvfs_model::RateIdx> {
    // Execution speed of rate r is 1/T(r) cycles per second.
    (0..table.len()).find(|&r| 1.0 / table.rate(r).time_per_cycle >= speed_hz - 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn job(id: u64, release: f64, deadline: f64, work: f64) -> YdsJob {
        YdsJob {
            id,
            release,
            deadline,
            work,
        }
    }

    /// EDF-simulate the assignments and confirm every deadline is met:
    /// the defining feasibility property of a YDS schedule.
    fn assert_feasible(jobs: &[YdsJob], schedule: &YdsSchedule) {
        // Discrete-event EDF with per-job fixed speeds.
        let mut pending: Vec<(YdsJob, f64)> = jobs
            .iter()
            .map(|j| (*j, schedule.speed_of(j.id).expect("assigned")))
            .collect();
        pending.sort_by(|a, b| a.0.release.partial_cmp(&b.0.release).expect("finite"));
        let mut t = 0.0f64;
        let mut active: Vec<(YdsJob, f64, f64)> = Vec::new(); // (job, speed, remaining)
        let mut idx = 0;
        while idx < pending.len() || !active.is_empty() {
            if active.is_empty() {
                let (j, s) = pending[idx];
                t = t.max(j.release);
                active.push((j, s, j.work));
                idx += 1;
                // Pull in everything else released at the same instant.
                while idx < pending.len() && pending[idx].0.release <= t + 1e-12 {
                    let (j2, s2) = pending[idx];
                    active.push((j2, s2, j2.work));
                    idx += 1;
                }
            }
            // Earliest deadline first.
            active.sort_by(|a, b| a.0.deadline.partial_cmp(&b.0.deadline).expect("finite"));
            let next_release = pending.get(idx).map(|(j, _)| j.release);
            let (j, s, rem) = active[0];
            let finish = t + rem / s;
            match next_release {
                Some(r) if r < finish - 1e-12 => {
                    let done = (r - t) * s;
                    active[0].2 -= done;
                    t = r;
                    while idx < pending.len() && pending[idx].0.release <= t + 1e-12 {
                        let (j2, s2) = pending[idx];
                        active.push((j2, s2, j2.work));
                        idx += 1;
                    }
                }
                _ => {
                    t = finish;
                    assert!(
                        t <= j.deadline + 1e-6,
                        "job {} misses its deadline: {} > {}",
                        j.id,
                        t,
                        j.deadline
                    );
                    active.remove(0);
                }
            }
        }
    }

    #[test]
    fn single_job_runs_at_exact_density() {
        let jobs = [job(1, 0.0, 2.0, 6.0)];
        let s = yds(&jobs);
        assert!((s.speed_of(1).unwrap() - 3.0).abs() < 1e-12);
        assert_feasible(&jobs, &s);
    }

    #[test]
    fn disjoint_jobs_get_independent_speeds() {
        let jobs = [job(1, 0.0, 1.0, 5.0), job(2, 10.0, 12.0, 2.0)];
        let s = yds(&jobs);
        assert!((s.speed_of(1).unwrap() - 5.0).abs() < 1e-12);
        assert!((s.speed_of(2).unwrap() - 1.0).abs() < 1e-12);
        assert_feasible(&jobs, &s);
    }

    #[test]
    fn nested_tight_job_forms_its_own_critical_interval() {
        // Outer job [0, 10] with 10 work; inner job [4, 5] with 5 work.
        // The inner interval has intensity 5; peeling it leaves the
        // outer job 10 work over 9 remaining seconds.
        let jobs = [job(1, 0.0, 10.0, 10.0), job(2, 4.0, 5.0, 5.0)];
        let s = yds(&jobs);
        assert!((s.speed_of(2).unwrap() - 5.0).abs() < 1e-9);
        assert!((s.speed_of(1).unwrap() - 10.0 / 9.0).abs() < 1e-9);
        assert_feasible(&jobs, &s);
    }

    #[test]
    fn identical_windows_share_one_speed() {
        let jobs = [
            job(1, 0.0, 4.0, 3.0),
            job(2, 0.0, 4.0, 5.0),
            job(3, 0.0, 4.0, 4.0),
        ];
        let s = yds(&jobs);
        for id in 1..=3 {
            assert!((s.speed_of(id).unwrap() - 3.0).abs() < 1e-12);
        }
        assert_eq!(s.intervals.len(), 1);
        assert_feasible(&jobs, &s);
    }

    #[test]
    fn energy_beats_constant_speed_alternatives() {
        // YDS minimizes Σ s²·(w/s) = Σ w·s for α=2... more precisely
        // energy = Σ coeff·s^(α−1)·w. Compare against running everything
        // at the single lowest feasible constant speed.
        let jobs = [
            job(1, 0.0, 3.0, 6.0),
            job(2, 1.0, 4.0, 2.0),
            job(3, 5.0, 9.0, 1.0),
        ];
        let s = yds(&jobs);
        assert_feasible(&jobs, &s);
        let yds_energy = s.energy(&jobs, 1.0, 2.0);
        // Cheapest feasible constant speed: search numerically.
        let mut best_const = f64::INFINITY;
        for i in 1..2000 {
            let speed = i as f64 * 0.01;
            let sched = YdsSchedule {
                assignments: jobs
                    .iter()
                    .map(|j| YdsAssignment { id: j.id, speed })
                    .collect(),
                intervals: vec![],
            };
            let feasible = std::panic::catch_unwind(|| assert_feasible(&jobs, &sched)).is_ok();
            if feasible {
                best_const = best_const.min(sched.energy(&jobs, 1.0, 2.0));
            }
        }
        assert!(
            yds_energy <= best_const + 1e-9,
            "YDS {yds_energy} must not exceed best constant-speed {best_const}"
        );
    }

    #[test]
    fn quantization_rounds_up() {
        let table = dvfs_model::RateTable::i7_950_table2();
        // Exec speeds are 1/T: 1.6, 2.0, 2.381, 2.778, 3.030 Gcycles/s.
        assert_eq!(quantize_speed_up(&table, 1.0e9), Some(0));
        assert_eq!(quantize_speed_up(&table, 1.7e9), Some(1));
        assert_eq!(quantize_speed_up(&table, 2.5e9), Some(3));
        assert_eq!(quantize_speed_up(&table, 3.0e9), Some(4));
        assert_eq!(quantize_speed_up(&table, 3.5e9), None);
    }

    #[test]
    #[should_panic(expected = "positive window")]
    fn rejects_empty_window() {
        let _ = yds(&[job(1, 2.0, 2.0, 1.0)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_yds_schedules_are_feasible(
            specs in prop::collection::vec(
                (0.0f64..50.0, 0.1f64..20.0, 0.1f64..30.0),
                1..12,
            ),
        ) {
            let jobs: Vec<YdsJob> = specs
                .iter()
                .enumerate()
                .map(|(i, &(r, span, w))| job(i as u64, r, r + span, w))
                .collect();
            let s = yds(&jobs);
            prop_assert_eq!(s.assignments.len(), jobs.len());
            assert_feasible(&jobs, &s);
        }

        #[test]
        fn prop_peeled_intensities_non_increasing(
            specs in prop::collection::vec(
                (0.0f64..50.0, 0.5f64..20.0, 0.1f64..30.0),
                1..10,
            ),
        ) {
            // The defining structure of YDS: critical-interval
            // intensities are non-increasing across rounds.
            let jobs: Vec<YdsJob> = specs
                .iter()
                .enumerate()
                .map(|(i, &(r, span, w))| job(i as u64, r, r + span, w))
                .collect();
            let s = yds(&jobs);
            for w in s.intervals.windows(2) {
                prop_assert!(w[0].2 >= w[1].2 - 1e-9,
                    "intensity increased: {} then {}", w[0].2, w[1].2);
            }
        }
    }
}
