//! The engine-agnostic scheduling interface.
//!
//! A *scheduler* (the paper's online policies — LMC, the baselines, a
//! batch-plan replayer) reacts to task lifecycle events by issuing
//! dispatch / preempt / set-rate commands. An *executor* owns cores and
//! a clock and carries those commands out. This module defines the
//! boundary between the two:
//!
//! * [`ExecutorView`] — what a scheduler may observe and command:
//!   per-core rate tables and caps, current rates, occupancy, remaining
//!   work, and the three mutations (`set_rate`, `dispatch`, `preempt`).
//! * [`Scheduler`] — the event hooks a policy implements (`on_arrival`,
//!   `on_completion`, `on_tick`).
//!
//! Two executors implement the view today: the virtual-time simulator
//! (`dvfs-sim`, where `SimView` adapts the event-driven engine) and the
//! wall-clock service executor (`dvfs-serve`, which drives the sysfs
//! actuator directly). Policies written against these traits run on
//! either without modification — the layering the paper's deployment
//! story (an online judge scheduling real submissions) requires.
//!
//! Writing a new executor means implementing [`ExecutorView`] over your
//! engine state and invoking the [`Scheduler`] hooks at the right
//! moments: `on_arrival` when a task becomes ready, `on_completion`
//! after its bookkeeping is final, `on_tick` from any periodic driver.
//! The executor owns time and accounting; the scheduler only ever sees
//! this view.

use dvfs_model::{CoreId, RateIdx, RateTable, Task, TaskId};
use dvfs_trace::TraceSink;

/// What a scheduler can observe about — and command of — an executor.
///
/// Cores are indexed `0..num_cores()`. Rates are indices into a core's
/// [`RateTable`], and every mutation is carried out synchronously: after
/// [`ExecutorView::dispatch`] returns, the task is running.
pub trait ExecutorView {
    /// Current time in seconds (virtual or wall-derived, per executor).
    fn now(&self) -> f64;

    /// Number of cores on the platform.
    fn num_cores(&self) -> usize;

    /// Rate table of core `j`.
    fn rate_table(&self, j: CoreId) -> &RateTable;

    /// Highest rate index core `j` may use.
    fn max_allowed_rate(&self, j: CoreId) -> RateIdx;

    /// Current rate index of core `j`.
    fn current_rate(&self, j: CoreId) -> RateIdx;

    /// The task running on core `j`, if any.
    fn running_task(&self, j: CoreId) -> Option<TaskId>;

    /// Whether core `j` is idle.
    fn is_idle(&self, j: CoreId) -> bool {
        self.running_task(j).is_none()
    }

    /// Cycles still owed by task `t` (0 once complete).
    fn remaining_cycles(&self, t: TaskId) -> f64;

    /// Set core `j`'s rate. Takes effect immediately (also for a task
    /// currently running on `j`).
    ///
    /// # Panics
    /// Implementations panic when `rate` exceeds the core's allowed cap.
    fn set_rate(&mut self, j: CoreId, rate: RateIdx);

    /// Start `task` on idle core `j`, optionally switching the core to
    /// `rate` first.
    ///
    /// # Panics
    /// Implementations panic when `j` is busy or `task` is not ready.
    fn dispatch(&mut self, j: CoreId, task: TaskId, rate: Option<RateIdx>);

    /// Preempt the task running on core `j`, returning it to the ready
    /// pool; returns the preempted task's id.
    ///
    /// # Panics
    /// Implementations panic when `j` is idle.
    fn preempt(&mut self, j: CoreId) -> TaskId;

    /// The lifecycle trace sink wired into this executor, if tracing is
    /// enabled. Policies use it to attach decision provenance (e.g.
    /// LMC's per-core marginal-cost comparison) to the event stream the
    /// executor is already recording. The default is `None`: executors
    /// without tracing pay one virtual call returning `None`, and
    /// policies need no feature flags.
    fn trace(&mut self) -> Option<&mut dyn TraceSink> {
        None
    }
}

/// The event hooks a scheduling policy implements.
///
/// An executor calls these with a fresh view at each lifecycle event;
/// the scheduler responds by commanding the view. State the scheduler
/// needs across events (queues, ledgers, cursors) lives in `self`.
pub trait Scheduler {
    /// Human-readable policy name (for reports).
    fn name(&self) -> String;

    /// `task` has arrived and is ready to dispatch.
    fn on_arrival(&mut self, x: &mut dyn ExecutorView, task: &Task);

    /// `task` just completed on `core` (the core is idle again).
    fn on_completion(&mut self, x: &mut dyn ExecutorView, core: CoreId, task: &Task);

    /// Periodic governor tick for `core` (only fired by executors that
    /// run kernel-style governors).
    fn on_tick(&mut self, _x: &mut dyn ExecutorView, _core: CoreId) {}
}

/// Replays a [`BatchPlan`]: every task is assumed to have arrived by
/// t = 0 (batch mode); each core starts its sequence immediately and
/// dispatches the next task on completion.
///
/// [`BatchPlan`]: dvfs_model::BatchPlan
#[derive(Debug)]
pub struct PlanPolicy {
    plan: dvfs_model::BatchPlan,
    cursor: Vec<usize>,
    arrived: usize,
    expected: usize,
}

impl PlanPolicy {
    /// Build a policy that replays `plan`.
    #[must_use]
    pub fn new(plan: dvfs_model::BatchPlan) -> Self {
        let n = plan.per_core.len();
        let expected = plan.num_tasks();
        PlanPolicy {
            plan,
            cursor: vec![0; n],
            arrived: 0,
            expected,
        }
    }

    fn dispatch_next(&mut self, x: &mut dyn ExecutorView, core: CoreId) {
        let pos = self.cursor[core];
        if let Some(&(task, rate)) = self.plan.per_core[core].get(pos) {
            self.cursor[core] += 1;
            x.dispatch(core, task, Some(rate));
        }
    }
}

impl Scheduler for PlanPolicy {
    fn name(&self) -> String {
        "batch-plan".into()
    }

    fn on_arrival(&mut self, x: &mut dyn ExecutorView, _task: &Task) {
        self.arrived += 1;
        // Batch semantics: all tasks arrive at t = 0; once the last
        // arrival lands, kick every core's sequence off.
        if self.arrived == self.expected {
            for core in 0..x.num_cores() {
                if x.is_idle(core) {
                    self.dispatch_next(x, core);
                }
            }
        }
    }

    fn on_completion(&mut self, x: &mut dyn ExecutorView, core: CoreId, _task: &Task) {
        self.dispatch_next(x, core);
    }
}

pub mod conformance;
