//! The dynamic cost ledger of Section IV-A (Algorithms 4–6).
//!
//! A single-core queue of non-interactive tasks is kept sorted in
//! non-decreasing cycle order (Theorem 3). The ledger stores the tasks in
//! a [`CycleTree`] (descending cycles, so tree rank = backward position
//! `k^B`) and, per dominating position range `i` (Algorithm 1), the
//! bookkeeping tuple `(α_i, β_i, a_i, b_i, x_i, d_i)`:
//!
//! * `a_i` — the range's fixed lower backward position;
//! * `b_i` — the occupied inclusive end (`a_i − 1` when empty);
//! * `x_i = ξ(D_i)` — total cycles of tasks currently in the range;
//! * `d_i = Δ(D_i)` — their position-weighted sum, positions local to
//!   the range;
//! * `α_i`/`β_i` — handles of the first/last task in the range.
//!
//! Insertion and deletion maintain all tuples in `O(|P̂| + log N)`: one
//! tree operation plus at most one boundary shift per dominating range,
//! each O(1) thanks to the tree's linked-list threading. The total cost
//!
//! `C = Σ_i Re·E(p_i)·x_i + Rt·T(p_i)·(d_i + (a_i − 1)·x_i)`   (Eq. 32)
//!
//! is recomputed from the `|P̂|` tuples after each update, so reading it
//! is Θ(1).
//!
//! Note: Algorithm 6 line 20 in the paper reads
//! `d_i ← d_i − (k^B−a_i+1)·∗ptr **+** range_sum(Z, [k^B+1, b_i])`; the
//! `+` is a typo — tasks behind the deleted one shift *down* one
//! position, so their ξ must be subtracted. The tests against a naive
//! recomputation pin this down.

use crate::dominating::DominatingRanges;
use dvfs_model::{CostParams, RateIdx, RateTable};
use dvfs_ostree::{CycleTree, Handle};

#[derive(Debug, Clone)]
struct RangeState {
    /// Fixed inclusive lower backward position (Algorithm 4 line 6).
    a: u64,
    /// Fixed inclusive upper backward position (`u64::MAX` for the last).
    ub: u64,
    /// Current occupied inclusive end; `a - 1` when the range is empty.
    b: u64,
    /// `ξ` of the occupied positions.
    x: u128,
    /// `Δ` of the occupied positions (local positions).
    d: u128,
    /// First task of the range (backward position `a`).
    alpha: Option<Handle>,
    /// Last task of the range (backward position `b`).
    beta: Option<Handle>,
}

impl RangeState {
    fn is_empty(&self) -> bool {
        self.b < self.a
    }
    fn len(&self) -> u64 {
        self.b + 1 - self.a
    }
}

/// Dynamic single-core scheduling ledger with `O(|P̂| + log N)`
/// insert/delete and Θ(1) total cost (Algorithms 4–6).
///
/// ```
/// use dvfs_core::CostLedger;
/// use dvfs_model::{CostParams, RateTable};
///
/// let mut ledger = CostLedger::new(&RateTable::i7_950_table2(), CostParams::batch_paper());
/// let h = ledger.insert(2_000_000_000);
/// ledger.insert(500_000_000);
/// // Total cost is maintained; reading it is Θ(1).
/// assert!(ledger.total_cost() > 0.0);
/// // The next task to dispatch is the smallest (shortest-first order).
/// let next = ledger.peek_next_dispatch().unwrap();
/// assert_eq!(ledger.cycles(next), 500_000_000);
/// ledger.remove(h);
/// assert_eq!(ledger.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CostLedger {
    tree: CycleTree,
    ranges: DominatingRanges,
    st: Vec<RangeState>,
    cost: f64,
}

impl CostLedger {
    /// Algorithm 4: initialize from a rate table and cost parameters.
    #[must_use]
    pub fn new(table: &RateTable, params: CostParams) -> Self {
        let ranges = DominatingRanges::compute(table, params);
        let st = ranges
            .entries()
            .iter()
            .map(|e| RangeState {
                a: e.lb,
                ub: e.ub.map_or(u64::MAX, |u| u - 1),
                b: e.lb - 1,
                x: 0,
                d: 0,
                alpha: None,
                beta: None,
            })
            .collect();
        CostLedger {
            tree: CycleTree::new(),
            ranges,
            st,
            cost: 0.0,
        }
    }

    /// Number of queued tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The maintained total cost `C` (Equation 32). Θ(1).
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.cost
    }

    /// The dominating ranges this ledger schedules against.
    #[must_use]
    pub fn ranges(&self) -> &DominatingRanges {
        &self.ranges
    }

    /// Cycle count of a queued task.
    ///
    /// # Panics
    /// Panics on a stale handle.
    #[must_use]
    pub fn cycles(&self, h: Handle) -> u64 {
        self.tree.cycles(h)
    }

    /// Current backward position of a queued task.
    ///
    /// # Panics
    /// Panics on a stale handle.
    #[must_use]
    pub fn backward_position(&self, h: Handle) -> u64 {
        self.tree.rank(h) as u64
    }

    /// The rate the task at backward position `k` should run at.
    #[must_use]
    pub fn rate_at(&self, k: u64) -> RateIdx {
        self.ranges.rate_for(k)
    }

    /// The smallest-cycle task (largest backward position): the next task
    /// to dispatch under shortest-first execution.
    #[must_use]
    pub fn peek_next_dispatch(&self) -> Option<Handle> {
        self.tree.last()
    }

    fn recompute_cost(&mut self) {
        let mut c = 0.0;
        for (i, s) in self.st.iter().enumerate() {
            if s.is_empty() {
                continue;
            }
            let (re_e, rt_t) = self.ranges.coeffs(i);
            let gamma = s.d + (s.a as u128 - 1) * s.x;
            c += re_e * s.x as f64 + rt_t * gamma as f64;
        }
        self.cost = c;
    }

    /// Algorithm 5: insert a task. `O(|P̂| + log N)`.
    pub fn insert(&mut self, cycles: u64) -> Handle {
        let h = self.tree.insert(cycles);
        let kb = self.tree.rank(h) as u64;
        let mut i = self.ranges.range_index_for(kb);
        {
            let s = &mut self.st[i];
            if kb == s.a {
                s.alpha = Some(h);
            }
            if kb > s.b {
                s.beta = Some(h);
            }
            s.b += 1;
            s.x += cycles as u128;
        }
        // d update needs a tree query; split borrows.
        let shift = self.tree.xi_range(kb as usize + 1, self.st[i].b as usize);
        self.st[i].d += (kb - self.st[i].a + 1) as u128 * cycles as u128 + shift;

        // Cascade overflow across subsequent ranges (one element each).
        while self.st[i].b > self.st[i].ub {
            let ptr = self.st[i].beta.expect("overflowing range has a tail");
            let lt = self.tree.cycles(ptr) as u128;
            {
                let s = &mut self.st[i];
                s.d -= s.len() as u128 * lt;
                s.x -= lt;
                s.b -= 1;
            }
            if self.st[i].is_empty() {
                self.st[i].alpha = None;
                self.st[i].beta = None;
            } else {
                self.st[i].beta = self.tree.prev(ptr);
            }
            i += 1;
            let s = &mut self.st[i];
            s.alpha = Some(ptr);
            if s.is_empty() {
                s.beta = Some(ptr);
            }
            s.b += 1;
            s.x += lt;
            s.d += s.x;
        }
        self.recompute_cost();
        h
    }

    /// Algorithm 6: delete a queued task. `O(|P̂| + log N)`.
    ///
    /// # Panics
    /// Panics on a stale handle.
    pub fn remove(&mut self, h: Handle) -> u64 {
        let kb = self.tree.rank(h) as u64;
        let cycles = self.tree.cycles(h);
        // Last non-empty range.
        let mut i = self
            .st
            .iter()
            .rposition(|s| !s.is_empty())
            .expect("remove from a non-empty ledger");
        // Shift the head of every range after kb down into the
        // predecessor range (ranks after kb decrease by one).
        while self.st[i].a > kb {
            let tptr = self.st[i].alpha.expect("non-empty range has a head");
            let lt = self.tree.cycles(tptr) as u128;
            {
                let s = &mut self.st[i];
                s.d -= s.x;
                s.x -= lt;
                s.b -= 1;
            }
            if self.st[i].is_empty() {
                self.st[i].alpha = None;
                self.st[i].beta = None;
            } else {
                self.st[i].alpha = self.tree.next(tptr);
            }
            i -= 1;
            let s = &mut self.st[i];
            if s.is_empty() {
                s.alpha = Some(tptr);
            }
            s.beta = Some(tptr);
            s.b += 1;
            s.x += lt;
            s.d += s.len() as u128 * lt;
        }
        debug_assert_eq!(
            i,
            self.ranges.range_index_for(kb),
            "cascade must stop at the target range"
        );
        // Remove the task from its own range (paper line 20 with the
        // sign typo fixed: trailing tasks shift down, subtract their ξ).
        let shift = self.tree.xi_range(kb as usize + 1, self.st[i].b as usize);
        {
            let s = &mut self.st[i];
            s.d -= (kb - s.a + 1) as u128 * cycles as u128 + shift;
            s.x -= cycles as u128;
            s.b -= 1;
        }
        if self.st[i].is_empty() {
            self.st[i].alpha = None;
            self.st[i].beta = None;
        } else {
            if self.st[i].alpha == Some(h) {
                self.st[i].alpha = self.tree.next(h);
            }
            if self.st[i].beta == Some(h) {
                self.st[i].beta = self.tree.prev(h);
            }
        }
        self.tree.remove(h);
        self.recompute_cost();
        cycles
    }

    /// The marginal cost of inserting a task with `cycles` cycles:
    /// `C_after − C_before` (used by Least Marginal Cost when choosing a
    /// core for a non-interactive task). Leaves the ledger unchanged.
    pub fn marginal_insert_cost(&mut self, cycles: u64) -> f64 {
        let before = self.cost;
        let h = self.insert(cycles);
        let after = self.cost;
        self.remove(h);
        debug_assert!((self.cost - before).abs() <= before.abs() * 1e-9 + 1e-12);
        after - before
    }

    /// Recompute the total via per-range tree queries (Equation 32
    /// directly): `O(|P̂| log N)`. Used for verification and as the
    /// ablation baseline against the maintained Θ(1) value.
    #[must_use]
    pub fn recompute_via_queries(&self) -> f64 {
        let n = self.tree.len() as u64;
        let mut c = 0.0;
        for (i, e) in self.ranges.entries().iter().enumerate() {
            let Some(end) = e.clamped_end(n) else {
                continue;
            };
            let (re_e, rt_t) = self.ranges.coeffs(i);
            let xi = self.tree.xi_range(e.lb as usize, end as usize);
            let gamma = self.tree.gamma_range(e.lb as usize, end as usize);
            c += re_e * xi as f64 + rt_t * gamma as f64;
        }
        c
    }

    /// Fully naive total cost: walk all tasks, `Σ C^B(k)·L_k`. `O(N)`.
    #[must_use]
    pub fn naive_cost(&self) -> f64 {
        self.tree
            .iter()
            .enumerate()
            .map(|(idx, (_, cycles))| self.ranges.cost_at(idx as u64 + 1) * cycles as f64)
            .sum()
    }

    /// Verify the per-range bookkeeping against direct tree queries.
    /// Intended for tests.
    ///
    /// # Panics
    /// Panics on the first inconsistent tuple.
    pub fn assert_state(&self) {
        let n = self.tree.len() as u64;
        let mut covered = 0u64;
        for (i, s) in self.st.iter().enumerate() {
            let e = &self.ranges.entries()[i];
            assert_eq!(s.a, e.lb);
            let expect_b = match e.clamped_end(n) {
                Some(end) => end,
                None => s.a - 1,
            };
            assert_eq!(s.b, expect_b, "range {i} occupancy end");
            let xi = self.tree.xi_range(s.a as usize, s.b as usize);
            let delta = self.tree.delta_range(s.a as usize, s.b as usize);
            assert_eq!(s.x, xi, "range {i} xi");
            assert_eq!(s.d, delta, "range {i} delta");
            if s.is_empty() {
                assert!(s.alpha.is_none() && s.beta.is_none(), "range {i} pointers");
            } else {
                let alpha = s.alpha.expect("non-empty range has alpha");
                let beta = s.beta.expect("non-empty range has beta");
                assert_eq!(self.tree.rank(alpha) as u64, s.a, "range {i} alpha rank");
                assert_eq!(self.tree.rank(beta) as u64, s.b, "range {i} beta rank");
                covered += s.len();
            }
        }
        assert_eq!(covered, n, "ranges must cover every queued task");
        let naive = self.naive_cost();
        assert!(
            (self.cost - naive).abs() <= naive.abs() * 1e-9 + 1e-12,
            "maintained cost {} diverged from naive {}",
            self.cost,
            naive
        );
        let via_q = self.recompute_via_queries();
        assert!(
            (self.cost - via_q).abs() <= via_q.abs() * 1e-9 + 1e-12,
            "maintained cost {} diverged from query-based {}",
            self.cost,
            via_q
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn ledger() -> CostLedger {
        CostLedger::new(&RateTable::i7_950_table2(), CostParams::batch_paper())
    }

    #[test]
    fn empty_ledger_costs_zero() {
        let l = ledger();
        assert_eq!(l.total_cost(), 0.0);
        assert_eq!(l.len(), 0);
        assert!(l.is_empty());
        assert!(l.peek_next_dispatch().is_none());
        l.assert_state();
    }

    #[test]
    fn single_insert_and_remove() {
        let mut l = ledger();
        let h = l.insert(1_000_000_000);
        assert_eq!(l.len(), 1);
        assert_eq!(l.backward_position(h), 1);
        l.assert_state();
        let expected = l.ranges().cost_at(1) * 1e9;
        assert!((l.total_cost() - expected).abs() < 1e-9);
        assert_eq!(l.remove(h), 1_000_000_000);
        assert!(l.is_empty());
        assert_eq!(l.total_cost(), 0.0);
        l.assert_state();
    }

    #[test]
    fn inserts_spanning_multiple_ranges() {
        let mut l = ledger();
        // Enough tasks to spill into several dominating ranges.
        let mut handles = Vec::new();
        for i in 1..=200u64 {
            handles.push(l.insert(i * 13 + 1));
            if i % 20 == 0 {
                l.assert_state();
            }
        }
        l.assert_state();
        // Remove in mixed order.
        for (i, h) in handles.into_iter().enumerate() {
            l.remove(h);
            if i % 31 == 0 {
                l.assert_state();
            }
        }
        assert!(l.is_empty());
        l.assert_state();
    }

    #[test]
    fn peek_next_dispatch_is_smallest_task() {
        let mut l = ledger();
        l.insert(500);
        let small = l.insert(10);
        l.insert(300);
        let next = l.peek_next_dispatch().unwrap();
        assert_eq!(next, small);
        assert_eq!(l.cycles(next), 10);
        assert_eq!(l.backward_position(next) as usize, l.len());
    }

    #[test]
    fn marginal_cost_is_exact_and_non_destructive() {
        let mut l = ledger();
        for c in [100u64, 5000, 70, 900, 42] {
            l.insert(c);
        }
        let before = l.total_cost();
        let mc = l.marginal_insert_cost(333);
        assert!((l.total_cost() - before).abs() < 1e-9, "ledger restored");
        assert_eq!(l.len(), 5);
        // Cross-check by actually inserting.
        let h = l.insert(333);
        assert!((l.total_cost() - (before + mc)).abs() < before * 1e-9 + 1e-9);
        l.remove(h);
        l.assert_state();
    }

    #[test]
    fn marginal_cost_grows_with_queue_length() {
        // The same task inserted into a longer queue delays more work →
        // at least as expensive.
        let mut short = ledger();
        let mut long = ledger();
        for c in [1000u64, 2000] {
            short.insert(c);
        }
        for c in [1000u64, 2000, 3000, 4000, 5000, 6000] {
            long.insert(c);
        }
        let probe = 1500;
        assert!(long.marginal_insert_cost(probe) > short.marginal_insert_cost(probe));
    }

    #[test]
    fn duplicate_cycle_counts_are_handled() {
        let mut l = ledger();
        let hs: Vec<_> = (0..50).map(|_| l.insert(777)).collect();
        l.assert_state();
        for h in hs {
            l.remove(h);
        }
        assert!(l.is_empty());
    }

    #[test]
    fn boundary_position_inserts_and_deletes() {
        // Table II ranges under batch params: [1,2) [2,3) [3,5) [5,10)
        // [10,inf). Drive insert/delete sequences that land exactly on
        // every boundary and verify state after each step.
        let mut l = ledger();
        let mut handles = Vec::new();
        // Fill positions 1..=12 (crosses every boundary).
        for i in 0..12u64 {
            handles.push(l.insert(1_000_000 + i)); // ascending → each lands at rank 1
            l.assert_state();
        }
        // Remove exactly the boundary ranks 1, 2, 3, 5, 10 (refreshing
        // handles as ranks shift).
        for target_rank in [1usize, 2, 3, 5] {
            let h = l // find current handle at the rank via peek + walk
                .ranges()
                .entries()
                .iter()
                .find_map(|e| (e.lb as usize <= target_rank).then_some(()))
                .map(|()| {
                    // select by rank through the public API: walk with
                    // backward_position.
                    let mut found = None;
                    for &h in &handles {
                        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            l.backward_position(h)
                        }))
                        .map(|r| r as usize == target_rank)
                        .unwrap_or(false)
                        {
                            found = Some(h);
                            break;
                        }
                    }
                    found.expect("rank occupied")
                })
                .expect("ranges exist");
            l.remove(h);
            l.assert_state();
        }
    }

    #[test]
    fn alternating_head_tail_churn() {
        // Insert a strictly increasing sequence (always rank 1) and a
        // strictly decreasing one (always last), interleaved; then drain
        // from both ends.
        let mut l = ledger();
        let mut heads = Vec::new();
        let mut tails = Vec::new();
        for i in 1..=30u64 {
            heads.push(l.insert(1_000_000_000 + i));
            tails.push(l.insert(1_000 - i));
            l.assert_state();
        }
        while let Some(h) = heads.pop() {
            l.remove(h);
            l.remove(tails.pop().expect("same length"));
            l.assert_state();
        }
        assert!(l.is_empty());
    }

    #[test]
    fn randomized_incremental_matches_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let mut l = ledger();
        let mut live: Vec<Handle> = Vec::new();
        for step in 0..2000 {
            if live.is_empty() || rng.gen_bool(0.58) {
                live.push(l.insert(rng.gen_range(1..100_000_000)));
            } else {
                let i = rng.gen_range(0..live.len());
                let h = live.swap_remove(i);
                l.remove(h);
            }
            let naive = l.naive_cost();
            assert!(
                (l.total_cost() - naive).abs() <= naive.abs() * 1e-9 + 1e-12,
                "diverged at step {step}: {} vs {naive}",
                l.total_cost()
            );
            if step % 200 == 0 {
                l.assert_state();
            }
        }
        l.assert_state();
    }

    #[test]
    fn single_rate_table_degenerates_gracefully() {
        let table = RateTable::synthetic_quadratic(1, 1.0, 1.0);
        let mut l = CostLedger::new(&table, CostParams::batch_paper());
        let hs: Vec<_> = (1..=20).map(|i| l.insert(i * 11)).collect();
        l.assert_state();
        for h in hs {
            l.remove(h);
        }
        l.assert_state();
    }

    #[test]
    fn two_rate_theorem1_gadget_ledger() {
        let mut l = CostLedger::new(
            &RateTable::theorem1_gadget(),
            CostParams::new(1.0, 1.0).unwrap(),
        );
        for i in 1..=40 {
            l.insert(i);
        }
        l.assert_state();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_ledger_matches_naive(
            ops in prop::collection::vec((0u8..2, 1u64..10_000_000), 1..150),
            levels in 2usize..8,
            re in 0.05f64..2.0,
            rt in 0.05f64..2.0,
        ) {
            let table = RateTable::synthetic_quadratic(levels, 0.5, 3.3);
            let params = CostParams::new(re, rt).unwrap();
            let mut l = CostLedger::new(&table, params);
            let mut live: Vec<Handle> = Vec::new();
            for (op, val) in ops {
                if op == 0 || live.is_empty() {
                    live.push(l.insert(val));
                } else {
                    let h = live.swap_remove(val as usize % live.len());
                    l.remove(h);
                }
                let naive = l.naive_cost();
                prop_assert!((l.total_cost() - naive).abs() <= naive.abs() * 1e-9 + 1e-12);
            }
            l.assert_state();
        }
    }
}
