//! Executor-agnostic replay-determinism conformance suite.
//!
//! The repo's determinism contract says every [`super::ExecutorView`]
//! implementation — the virtual-time simulator, the wall-clock service
//! executor, and the worker-backed sharded service — must produce the
//! *same schedule* for the same trace: identical completion order and
//! bit-identical (`==`, no epsilon) per-task and aggregate floats. The
//! pins used to live inline in the serve end-to-end tests; this module
//! extracts them so any executor can be checked against any reference.
//!
//! The module is deliberately executor-free: it defines the pinned
//! workload ([`mixed_trace`]), a normalized run summary ([`Outcome`]),
//! and the exact-equality assertion ([`assert_identical`]). Harnesses
//! (e.g. the workspace's `tests/conformance.rs`) adapt each concrete
//! executor's report into an [`Outcome`] and compare pairs. Keeping the
//! adapters out of this crate preserves the layering: `dvfs-core`
//! depends on neither the simulator nor the service.

use dvfs_model::{CostParams, Task, TaskClass, TaskId, TaskRecord};
use std::collections::BTreeMap;

/// The pinned conformance workload: interleaved interactive /
/// non-interactive tasks with staggered arrivals and unequal sizes,
/// enough to force non-trivial LMC decisions on two cores. Ids are
/// multiples of 4 so the whole trace hashes to shard 0 at every shard
/// count CI sweeps (1, 2, 4) — the schedule must not depend on the
/// shard count.
///
/// # Panics
/// Never in practice — every generated task is model-valid.
#[must_use]
pub fn mixed_trace() -> Vec<Task> {
    (0..10u64)
        .map(|i| {
            let class = if i % 3 == 0 {
                TaskClass::Interactive
            } else {
                TaskClass::NonInteractive
            };
            Task::online(i * 4, (i + 1) * 50_000_000, i as f64 * 0.02, None, class)
                .expect("valid synthetic task")
        })
        .collect()
}

/// A normalized run summary: what every executor must agree on.
///
/// Build one from each executor's native report via [`Outcome::new`]
/// (records must be supplied **in completion order** — the order is
/// part of the contract) and compare with [`assert_identical`].
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Task ids in the order they completed.
    pub completion_order: Vec<TaskId>,
    /// Per-task lifecycle records, keyed by id.
    pub records: BTreeMap<TaskId, TaskRecord>,
    /// Total active energy in joules.
    pub active_energy_joules: f64,
    /// Sum of turnaround times in seconds.
    pub total_turnaround_s: f64,
    /// Time the last task completed.
    pub makespan_s: f64,
}

impl Outcome {
    /// Build an outcome from completion-ordered records plus the run's
    /// aggregate totals.
    #[must_use]
    pub fn new(
        completions: Vec<TaskRecord>,
        active_energy_joules: f64,
        total_turnaround_s: f64,
        makespan_s: f64,
    ) -> Self {
        let completion_order = completions.iter().map(|r| r.id).collect();
        let records = completions.into_iter().map(|r| (r.id, r)).collect();
        Outcome {
            completion_order,
            records,
            active_energy_joules,
            total_turnaround_s,
            makespan_s,
        }
    }
}

/// Assert `got` reproduces `want` exactly: same completion order, and
/// per task bit-equal completion time, first start, energy, preemption
/// count, and monetary cost (`re·E + rt·turnaround`, computed the way
/// the service's histograms charge it), plus bit-equal aggregate
/// energy, turnaround sum, and makespan. `label` names the executor
/// under test in failure messages.
///
/// # Panics
/// Panics (test-style assertion) on the first divergence.
pub fn assert_identical(want: &Outcome, got: &Outcome, params: CostParams, label: &str) {
    assert_eq!(
        got.completion_order, want.completion_order,
        "{label}: completion order diverged"
    );
    for (id, rec) in &got.records {
        let reference = &want.records[id];
        assert_eq!(rec.completion, reference.completion, "{label}: task {id}");
        assert_eq!(rec.first_start, reference.first_start, "{label}: task {id}");
        assert_eq!(
            rec.energy_joules, reference.energy_joules,
            "{label}: task {id}"
        );
        assert_eq!(rec.preemptions, reference.preemptions, "{label}: task {id}");
        let got_cost =
            params.re * rec.energy_joules + params.rt * rec.turnaround().expect("completed task");
        let want_cost = params.re * reference.energy_joules
            + params.rt * reference.turnaround().expect("completed task");
        assert_eq!(got_cost, want_cost, "{label}: task {id} cost");
    }
    assert_eq!(
        got.active_energy_joules, want.active_energy_joules,
        "{label}: active energy diverged"
    );
    assert_eq!(
        got.total_turnaround_s, want.total_turnaround_s,
        "{label}: turnaround sum diverged"
    );
    assert_eq!(
        got.makespan_s, want.makespan_s,
        "{label}: makespan diverged"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_trace_is_pinned_and_shard0_pure() {
        let trace = mixed_trace();
        assert_eq!(trace.len(), 10);
        for (i, t) in trace.iter().enumerate() {
            let i = i as u64;
            assert_eq!(t.id.0, i * 4, "ids are multiples of 4");
            assert_eq!(t.id.0 % 4, 0, "hashes to shard 0 at shards 1/2/4");
            assert_eq!(t.cycles, (i + 1) * 50_000_000);
            assert_eq!(t.arrival, i as f64 * 0.02);
        }
        let interactive = trace
            .iter()
            .filter(|t| t.class == TaskClass::Interactive)
            .count();
        assert_eq!(interactive, 4, "i % 3 == 0 for i in 0..10");
    }

    fn record(id: u64, completion: f64) -> TaskRecord {
        TaskRecord {
            id: TaskId(id),
            class: TaskClass::NonInteractive,
            cycles: 1,
            arrival: 0.0,
            first_start: Some(0.0),
            completion: Some(completion),
            energy_joules: 1.5,
            preemptions: 0,
        }
    }

    #[test]
    fn identical_outcomes_pass() {
        let make = || Outcome::new(vec![record(0, 1.0), record(1, 2.0)], 3.0, 3.0, 2.0);
        assert_identical(&make(), &make(), CostParams::online_paper(), "self");
    }

    #[test]
    #[should_panic(expected = "completion order diverged")]
    fn reordered_completions_fail() {
        let want = Outcome::new(vec![record(0, 1.0), record(1, 2.0)], 3.0, 3.0, 2.0);
        let got = Outcome::new(vec![record(1, 2.0), record(0, 1.0)], 3.0, 3.0, 2.0);
        assert_identical(&want, &got, CostParams::online_paper(), "reordered");
    }

    #[test]
    #[should_panic(expected = "active energy diverged")]
    fn an_energy_ulp_off_fails() {
        let want = Outcome::new(vec![record(0, 1.0)], 3.0, 1.0, 1.0);
        let got = Outcome::new(
            vec![record(0, 1.0)],
            f64::from_bits(3.0f64.to_bits() + 1),
            1.0,
            1.0,
        );
        assert_identical(&want, &got, CostParams::online_paper(), "ulp");
    }
}
