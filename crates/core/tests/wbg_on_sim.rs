//! WBG online-reassignment behavior pinned on the virtual-time
//! executor (integration tests — see `lmc_on_sim.rs` for why these are
//! not unit tests).

use dvfs_core::{LeastMarginalCost, WbgReassign};
use dvfs_model::{CostParams, Platform, Task};
use dvfs_sim::{SimConfig, SimReport, Simulator};

fn trace(seed: u64, n_ni: u64, n_i: u64) -> Vec<Task> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut id = 0;
    for _ in 0..n_ni {
        out.push(
            Task::non_interactive(
                id,
                rng.gen_range(100_000_000..20_000_000_000),
                rng.gen_range(0.0..300.0),
            )
            .unwrap(),
        );
        id += 1;
    }
    for _ in 0..n_i {
        out.push(
            Task::interactive(
                id,
                rng.gen_range(500_000..5_000_000),
                rng.gen_range(0.0..300.0),
            )
            .unwrap(),
        );
        id += 1;
    }
    out.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
    out
}

fn run(policy_kind: &str, tasks: &[Task]) -> SimReport {
    let platform = Platform::i7_950_quad();
    let params = CostParams::online_paper();
    let mut sim = Simulator::new(SimConfig::new(platform.clone()));
    sim.add_tasks(tasks);
    match policy_kind {
        "wbg" => {
            let mut p = WbgReassign::new(&platform, params);
            sim.run(&mut p)
        }
        _ => {
            let mut p = LeastMarginalCost::new(&platform, params);
            sim.run(&mut p)
        }
    }
}

#[test]
fn completes_mixed_workloads() {
    let tasks = trace(1, 60, 200);
    let report = run("wbg", &tasks);
    assert_eq!(report.completed(), tasks.len());
}

#[test]
fn interactive_still_preempts() {
    let platform = Platform::i7_950_quad();
    let params = CostParams::online_paper();
    let tasks = vec![
        Task::non_interactive(0, 30_000_000_000, 0.0).unwrap(),
        Task::non_interactive(1, 30_000_000_000, 0.0).unwrap(),
        Task::non_interactive(2, 30_000_000_000, 0.0).unwrap(),
        Task::non_interactive(3, 30_000_000_000, 0.0).unwrap(),
        Task::interactive(4, 100_000_000, 1.0).unwrap(),
    ];
    let mut sim = Simulator::new(SimConfig::new(platform.clone()));
    sim.add_tasks(&tasks);
    let mut p = WbgReassign::new(&platform, params);
    let report = sim.run(&mut p);
    let r = report.tasks[&dvfs_model::TaskId(4)];
    assert!(r.turnaround().unwrap() < 0.05, "{:?}", r.turnaround());
}

#[test]
fn reassignment_cost_at_most_lmc_on_batch_bursts() {
    // A burst of simultaneous non-interactive arrivals: WBG reassign
    // converges to the optimal batch plan, so it must not lose to
    // the no-migration heuristic by more than a whisker.
    let params = CostParams::online_paper();
    let mut tasks = Vec::new();
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    for id in 0..32 {
        tasks.push(
            Task::non_interactive(id, rng.gen_range(1_000_000_000..30_000_000_000), 0.0).unwrap(),
        );
    }
    let wbg = run("wbg", &tasks).cost(params).total();
    let lmc = run("lmc", &tasks).cost(params).total();
    assert!(
        wbg <= lmc * 1.02,
        "free-migration WBG {wbg} should not lose to LMC {lmc}"
    );
}

#[test]
fn deterministic_runs() {
    let tasks = trace(9, 40, 100);
    let a = run("wbg", &tasks);
    let b = run("wbg", &tasks);
    assert_eq!(a.active_energy_joules, b.active_energy_joules);
    assert_eq!(a.makespan, b.makespan);
}
