//! `PlanPolicy` replay and deadline-plan behavior on the virtual-time
//! executor (integration tests — see `lmc_on_sim.rs` for why these are
//! not unit tests).

use dvfs_core::PlanPolicy;
use dvfs_model::task::batch_workload;
use dvfs_model::{BatchPlan, CoreSpec, CostParams, Platform, RateTable, Task, TaskId};
use dvfs_sim::{SimConfig, Simulator};

#[test]
fn plan_replays_in_order_at_planned_rates() {
    let platform = Platform::homogeneous(2, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
    let tasks = vec![
        Task::batch(0, 1_600_000_000).unwrap(), // 1 s @1.6GHz
        Task::batch(1, 3_000_000_000).unwrap(), // 0.99 s @3GHz (0.33ns/c)
        Task::batch(2, 1_600_000_000).unwrap(),
    ];
    let plan = BatchPlan {
        per_core: vec![vec![(TaskId(0), 0), (TaskId(2), 0)], vec![(TaskId(1), 4)]],
    };
    assert_eq!(plan.num_tasks(), 3);
    assert_eq!(plan.entries().count(), 3);
    let mut sim = Simulator::new(SimConfig::new(platform));
    sim.add_tasks(&tasks);
    let report = sim.run(&mut PlanPolicy::new(plan));
    let c0 = report.tasks[&TaskId(0)].completion.unwrap();
    let c1 = report.tasks[&TaskId(1)].completion.unwrap();
    let c2 = report.tasks[&TaskId(2)].completion.unwrap();
    assert!((c0 - 1.0).abs() < 1e-9);
    assert!((c1 - 3.0e9 * 0.33e-9).abs() < 1e-9);
    assert!((c2 - 2.0).abs() < 1e-9, "task 2 queued behind task 0");
}

#[test]
fn empty_core_sequences_are_fine() {
    let platform = Platform::homogeneous(4, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
    let tasks = vec![Task::batch(0, 1_000_000).unwrap()];
    let mut plan = BatchPlan::empty(4);
    plan.per_core[2].push((TaskId(0), 1));
    let mut sim = Simulator::new(SimConfig::new(platform));
    sim.add_tasks(&tasks);
    let report = sim.run(&mut PlanPolicy::new(plan));
    assert_eq!(report.completed(), 1);
}

#[test]
fn multicore_deadline_plan_executes_within_deadline() {
    // Companion to the analytic span check in `deadline_batch`'s unit
    // tests: the same plan, replayed end-to-end on the simulator, must
    // finish by the deadline.
    let platform = Platform::i7_950_quad();
    let params = CostParams::batch_paper();
    let cycles: Vec<u64> = (1..=12).map(|i| i * 800_000_000).collect();
    let tasks = batch_workload(&cycles);
    let plan =
        dvfs_core::deadline_batch::schedule_multicore_with_deadline(&tasks, &platform, params, 7.0)
            .expect("feasible with escalation");
    let mut sim = Simulator::new(SimConfig::new(platform));
    sim.add_tasks(&tasks);
    let report = sim.run(&mut PlanPolicy::new(plan));
    assert!(report.makespan <= 7.0 + 1e-9);
}
