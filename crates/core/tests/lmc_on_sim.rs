//! LMC behavior pinned on the virtual-time executor.
//!
//! These live as integration tests (not unit tests) deliberately: the
//! policies are engine-agnostic, and `dvfs-sim` is only a
//! dev-dependency of this crate, so driving them through the simulator
//! must happen against the library build.

use dvfs_core::{InteractivePlacement, LeastMarginalCost};
use dvfs_model::{CoreSpec, CostParams, Platform, RateTable, Task, TaskId};
use dvfs_sim::{SimConfig, SimReport, Simulator};

fn quad() -> Platform {
    Platform::i7_950_quad()
}

fn run(platform: Platform, tasks: Vec<Task>) -> SimReport {
    let mut policy = LeastMarginalCost::new(&platform, CostParams::online_paper());
    let mut sim = Simulator::new(SimConfig::new(platform));
    sim.add_tasks(&tasks);
    sim.run(&mut policy)
}

#[test]
fn all_tasks_complete() {
    let tasks: Vec<Task> = (0..40)
        .map(|i| {
            if i % 3 == 0 {
                Task::interactive(i, 1_000_000, i as f64 * 0.01).unwrap()
            } else {
                Task::non_interactive(i, (i + 1) * 50_000_000, i as f64 * 0.01).unwrap()
            }
        })
        .collect();
    let report = run(quad(), tasks);
    assert_eq!(report.completed(), 40);
}

#[test]
fn interactive_preempts_running_non_interactive() {
    let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
    let big = Task::non_interactive(1, 16_000_000_000, 0.0).unwrap();
    let small = Task::interactive(2, 300_000_000, 1.0).unwrap();
    let report = run(platform, vec![big, small]);
    let r_int = report.tasks[&TaskId(2)];
    let r_ni = report.tasks[&TaskId(1)];
    // Interactive runs immediately at max rate: 3e8 * 0.33ns ≈ 0.099 s.
    let turnaround = r_int.turnaround().unwrap();
    assert!(
        (turnaround - 0.099).abs() < 1e-6,
        "interactive turnaround {turnaround}"
    );
    assert_eq!(r_ni.preemptions, 1);
    assert!(r_ni.completion.unwrap() > r_int.completion.unwrap());
}

#[test]
fn interactive_chooses_least_loaded_core() {
    // Two cores; core 0 gets two big non-interactive tasks first, so
    // an interactive arrival must land on core 1... but LMC will
    // spread the two NI tasks across cores. Load three NI tasks so
    // queues are (2,1) or (1,2), then check the interactive task is
    // served without waiting behind a queue.
    let platform = Platform::homogeneous(2, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
    let tasks = vec![
        Task::non_interactive(1, 8_000_000_000, 0.0).unwrap(),
        Task::non_interactive(2, 8_000_000_000, 0.0).unwrap(),
        Task::interactive(3, 160_000_000, 0.5).unwrap(),
    ];
    let report = run(platform, tasks);
    let r = report.tasks[&TaskId(3)];
    // Served immediately by preemption at max rate on either core:
    // 1.6e8 cycles * 0.33 ns = 52.8 ms.
    assert!((r.turnaround().unwrap() - 0.0528).abs() < 1e-6);
}

#[test]
fn non_interactive_shortest_runs_first_within_a_core() {
    let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
    // Arrive together at t=0 via three arrivals at the same instant;
    // a tiny runner task is dispatched first (whichever arrives
    // first), then the queue drains shortest-first.
    let tasks = vec![
        Task::non_interactive(1, 1_000_000, 0.0).unwrap(), // dispatched at once
        Task::non_interactive(2, 9_000_000_000, 0.0).unwrap(),
        Task::non_interactive(3, 2_000_000_000, 0.0).unwrap(),
        Task::non_interactive(4, 4_000_000_000, 0.0).unwrap(),
    ];
    let report = run(platform, tasks);
    let c2 = report.tasks[&TaskId(2)].completion.unwrap();
    let c3 = report.tasks[&TaskId(3)].completion.unwrap();
    let c4 = report.tasks[&TaskId(4)].completion.unwrap();
    assert!(c3 < c4 && c4 < c2, "queue must drain shortest-first");
}

#[test]
fn back_to_back_interactive_tasks_fifo_on_same_core() {
    let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
    let tasks = vec![
        Task::interactive(1, 3_000_000_000, 0.0).unwrap(), // ~0.99 s at max
        Task::interactive(2, 3_000_000_000, 0.1).unwrap(),
    ];
    let report = run(platform, tasks);
    let c1 = report.tasks[&TaskId(1)].completion.unwrap();
    let c2 = report.tasks[&TaskId(2)].completion.unwrap();
    assert!((c1 - 0.99).abs() < 1e-6);
    assert!(
        (c2 - 1.98).abs() < 1e-6,
        "second runs right after the first"
    );
    assert_eq!(report.tasks[&TaskId(1)].preemptions, 0);
}

#[test]
fn suspended_task_resumes_after_interactive_burst() {
    let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
    let tasks = vec![
        Task::non_interactive(1, 3_200_000_000, 0.0).unwrap(),
        Task::interactive(2, 1_600_000_000, 0.5).unwrap(),
        Task::interactive(3, 1_600_000_000, 0.6).unwrap(),
    ];
    let report = run(platform, tasks);
    assert_eq!(report.completed(), 3);
    let r1 = report.tasks[&TaskId(1)];
    assert_eq!(r1.preemptions, 1, "preempted once, then resumed");
    let c2 = report.tasks[&TaskId(2)].completion.unwrap();
    let c3 = report.tasks[&TaskId(3)].completion.unwrap();
    assert!(r1.completion.unwrap() > c3.max(c2));
}

#[test]
fn heterogeneous_platform_runs_clean() {
    let platform = Platform::big_little(2, 2);
    let tasks: Vec<Task> = (0..60)
        .map(|i| {
            if i % 4 == 0 {
                Task::interactive(i, 2_000_000, i as f64 * 0.05).unwrap()
            } else {
                Task::non_interactive(i, 100_000_000 + i * 7_000_000, i as f64 * 0.05).unwrap()
            }
        })
        .collect();
    let report = run(platform, tasks);
    assert_eq!(report.completed(), 60);
    assert!(report.active_energy_joules > 0.0);
}

#[test]
fn eq27_equals_least_queue_on_homogeneous_cores() {
    // The paper: "if the cores are homogeneous, we simply choose the
    // core with the least N_j" — the two placements must produce
    // bit-identical runs.
    let tasks: Vec<Task> = (0..80)
        .map(|i| {
            if i % 3 == 0 {
                Task::interactive(i, 1_000_000 + i * 7_000, i as f64 * 0.02).unwrap()
            } else {
                Task::non_interactive(i, (i + 1) * 40_000_000, i as f64 * 0.02).unwrap()
            }
        })
        .collect();
    let platform = quad();
    let params = CostParams::online_paper();
    let run_variant = |placement: InteractivePlacement| {
        let mut policy =
            LeastMarginalCost::new(&platform, params).with_interactive_placement(placement);
        let mut sim = Simulator::new(SimConfig::new(platform.clone()));
        sim.add_tasks(&tasks);
        sim.run(&mut policy)
    };
    let a = run_variant(InteractivePlacement::MarginalCost);
    let b = run_variant(InteractivePlacement::LeastQueue);
    assert_eq!(a.active_energy_joules, b.active_energy_joules);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.total_turnaround(), b.total_turnaround());
}

#[test]
fn eq27_beats_round_robin_on_heterogeneous_cores() {
    // Sparse interactive-only arrivals on big.LITTLE: Equation 27
    // weighs each core's E/T at max rate and (under the paper's
    // energy-heavy online parameters) routes queries to the frugal
    // core; round-robin wastes every other query on the big core's
    // 8x per-cycle energy.
    let tasks: Vec<Task> = (0..40)
        .map(|i| Task::interactive(i, 100_000_000, i as f64 * 1.0).unwrap())
        .collect();
    let platform = Platform::big_little(1, 1);
    let params = CostParams::online_paper();
    let run_variant = |placement: InteractivePlacement| {
        let mut policy =
            LeastMarginalCost::new(&platform, params).with_interactive_placement(placement);
        let mut sim = Simulator::new(SimConfig::new(platform.clone()));
        sim.add_tasks(&tasks);
        sim.run(&mut policy).cost(params).total()
    };
    let eq27 = run_variant(InteractivePlacement::MarginalCost);
    let rr = run_variant(InteractivePlacement::RoundRobin);
    assert!(
        eq27 < rr * 0.75,
        "Eq. 27 placement {eq27} must clearly beat round-robin {rr} on big.LITTLE"
    );
}

#[test]
fn queue_growth_raises_running_task_rate() {
    // One core: start a long NI task (alone → slowest dominating
    // rate), then flood the queue; the running task's rate should
    // rise, finishing it sooner than the all-alone schedule would at
    // the same rate... measurable via energy: more energy per cycle.
    let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
    let mut tasks = vec![Task::non_interactive(0, 16_000_000_000, 0.0).unwrap()];
    for i in 1..=30 {
        tasks.push(Task::non_interactive(i, 1_000_000_000, 0.1).unwrap());
    }
    let report = run(platform.clone(), tasks);
    let solo = run(
        platform,
        vec![Task::non_interactive(0, 16_000_000_000, 0.0).unwrap()],
    );
    let flood_energy_rate = report.tasks[&TaskId(0)].energy_joules / 16.0e9;
    let solo_energy_rate = solo.tasks[&TaskId(0)].energy_joules / 16.0e9;
    assert!(
        flood_energy_rate > solo_energy_rate * 1.05,
        "rate must rise under queue pressure: {flood_energy_rate} vs {solo_energy_rate}"
    );
}

#[test]
fn steal_longest_picks_longest_first_and_lowers_the_queued_cost() {
    use dvfs_core::sched::{ExecutorView, Scheduler};
    use dvfs_model::RateIdx;

    /// Occupancy-only executor (the `dvfs-bench` idiom): enough state
    /// to drive `on_arrival` and observe the rate re-derivation that
    /// stealing must trigger.
    struct StubExec {
        table: RateTable,
        running: Vec<Option<TaskId>>,
        rates: Vec<RateIdx>,
        max_rate: RateIdx,
    }
    impl ExecutorView for StubExec {
        fn now(&self) -> f64 {
            0.0
        }
        fn num_cores(&self) -> usize {
            self.running.len()
        }
        fn rate_table(&self, _j: usize) -> &RateTable {
            &self.table
        }
        fn max_allowed_rate(&self, _j: usize) -> RateIdx {
            self.max_rate
        }
        fn current_rate(&self, j: usize) -> RateIdx {
            self.rates[j]
        }
        fn running_task(&self, j: usize) -> Option<TaskId> {
            self.running[j]
        }
        fn remaining_cycles(&self, _t: TaskId) -> f64 {
            0.0
        }
        fn set_rate(&mut self, j: usize, rate: RateIdx) {
            self.rates[j] = rate;
        }
        fn dispatch(&mut self, j: usize, task: TaskId, rate: Option<RateIdx>) {
            if let Some(r) = rate {
                self.rates[j] = r;
            }
            self.running[j] = Some(task);
        }
        fn preempt(&mut self, j: usize) -> TaskId {
            self.running[j].take().expect("preempt of idle core")
        }
    }

    let table = RateTable::i7_950_table2();
    let platform = Platform::homogeneous(1, CoreSpec::new(table.clone())).unwrap();
    let mut policy = LeastMarginalCost::new(&platform, CostParams::online_paper());
    let mut exec = StubExec {
        max_rate: table.max_rate(),
        table,
        running: vec![None],
        rates: vec![0],
    };
    // First arrival dispatches; the next three queue in the ledger.
    for (id, cycles) in [
        (1u64, 8_000_000_000u64),
        (2, 2_000_000_000),
        (3, 4_000_000_000),
        (4, 6_000_000_000),
    ] {
        policy.on_arrival(&mut exec, &Task::non_interactive(id, cycles, 0.0).unwrap());
    }
    assert_eq!(exec.running[0], Some(TaskId(1)));
    assert_eq!(policy.stealable_tasks(), 3, "one running, three queued");
    let cost_before = policy.queued_cost();
    assert!(cost_before > 0.0);
    let rate_before = exec.rates[0];

    let stolen = policy.steal_longest(&mut exec, 2);
    assert_eq!(stolen, vec![TaskId(4), TaskId(3)], "longest cycles first");
    assert_eq!(policy.stealable_tasks(), 1);
    assert!(policy.queued_cost() < cost_before);
    // The queue shrank, so the running task's backward position fell;
    // its re-derived dominating rate can only drop or hold.
    assert!(exec.rates[0] <= rate_before);

    // Asking for more than remains drains the ledger and stops.
    let rest = policy.steal_longest(&mut exec, 10);
    assert_eq!(rest, vec![TaskId(2)]);
    assert_eq!(policy.stealable_tasks(), 0);
    assert_eq!(policy.queued_cost(), 0.0);
}
