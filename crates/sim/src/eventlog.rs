//! Optional decision logging.
//!
//! When enabled (`SimConfig::with_event_log`), the engine records every
//! scheduling-relevant transition — arrivals, dispatches, preemptions,
//! frequency changes, completions — with timestamps. The log is the
//! ground truth for debugging a policy ("why did core 2 slow down at
//! t = 14.2?") and for offline analysis; `dvfs-cli` can dump it as JSON
//! lines alongside the report.

use dvfs_model::{CoreId, RateIdx, TaskId};
use serde::{Deserialize, Serialize};

/// One logged transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LogEvent {
    /// A task arrived in the system.
    Arrival {
        /// The task.
        task: TaskId,
    },
    /// A task started (or resumed) on a core at a rate.
    Dispatch {
        /// Target core.
        core: CoreId,
        /// The task.
        task: TaskId,
        /// Rate index the core runs at.
        rate: RateIdx,
    },
    /// A running task was preempted.
    Preempt {
        /// The core.
        core: CoreId,
        /// The preempted task.
        task: TaskId,
    },
    /// A core's frequency changed (policy or governor).
    RateChange {
        /// The core.
        core: CoreId,
        /// Previous rate index.
        from: RateIdx,
        /// New rate index.
        to: RateIdx,
    },
    /// A task completed.
    Completion {
        /// The core.
        core: CoreId,
        /// The task.
        task: TaskId,
    },
}

/// A timestamped log entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Simulation time in seconds.
    pub time: f64,
    /// What happened.
    pub event: LogEvent,
}

/// The collected log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    /// Entries in chronological order.
    pub entries: Vec<LogEntry>,
}

impl EventLog {
    /// Record an event at a time.
    pub fn push(&mut self, time: f64, event: LogEvent) {
        self.entries.push(LogEntry { time, event });
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries touching a given core (arrivals have no core and
    /// are excluded).
    pub fn for_core(&self, core: CoreId) -> impl Iterator<Item = &LogEntry> + '_ {
        self.entries.iter().filter(move |e| match e.event {
            LogEvent::Arrival { .. } => false,
            LogEvent::Dispatch { core: c, .. }
            | LogEvent::Preempt { core: c, .. }
            | LogEvent::RateChange { core: c, .. }
            | LogEvent::Completion { core: c, .. } => c == core,
        })
    }

    /// Iterate entries touching a given task.
    pub fn for_task(&self, task: TaskId) -> impl Iterator<Item = &LogEntry> + '_ {
        self.entries.iter().filter(move |e| match e.event {
            LogEvent::Arrival { task: t }
            | LogEvent::Dispatch { task: t, .. }
            | LogEvent::Preempt { task: t, .. }
            | LogEvent::Completion { task: t, .. } => t == task,
            LogEvent::RateChange { .. } => false,
        })
    }

    /// Count frequency changes (policy + governor) across all cores —
    /// the quantity the switch-latency ablation stresses.
    #[must_use]
    pub fn rate_changes(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.event, LogEvent::RateChange { .. }))
            .count()
    }

    /// Serialize as JSON lines.
    ///
    /// # Errors
    /// Propagates serialization/IO failures.
    pub fn write_jsonl<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for e in &self.entries {
            let line = serde_json::to_string(e).map_err(std::io::Error::other)?;
            writeln!(w, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventLog {
        let mut log = EventLog::default();
        log.push(0.0, LogEvent::Arrival { task: TaskId(1) });
        log.push(
            0.0,
            LogEvent::Dispatch {
                core: 0,
                task: TaskId(1),
                rate: 2,
            },
        );
        log.push(
            1.0,
            LogEvent::RateChange {
                core: 0,
                from: 2,
                to: 4,
            },
        );
        log.push(
            1.5,
            LogEvent::Preempt {
                core: 0,
                task: TaskId(1),
            },
        );
        log.push(
            2.0,
            LogEvent::Completion {
                core: 1,
                task: TaskId(2),
            },
        );
        log
    }

    #[test]
    fn filters_by_core_and_task() {
        let log = sample();
        assert_eq!(log.len(), 5);
        assert!(!log.is_empty());
        assert_eq!(log.for_core(0).count(), 3);
        assert_eq!(log.for_core(1).count(), 1);
        assert_eq!(log.for_task(TaskId(1)).count(), 3);
        assert_eq!(log.for_task(TaskId(2)).count(), 1);
        assert_eq!(log.rate_changes(), 1);
    }

    #[test]
    fn jsonl_roundtrip() {
        let log = sample();
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let lines: Vec<LogEntry> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines, log.entries);
    }
}
