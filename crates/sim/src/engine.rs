//! The event-driven simulation engine.

use crate::event::{EventKind, EventQueue};
use crate::governor::GovernorKind;
use crate::metrics::{SimReport, TaskRecord};
use dvfs_core::sched::{ExecutorView, Scheduler as Policy};
use dvfs_model::{CoreId, Platform, RateIdx, RateTable, Task, TaskId};
use dvfs_trace::TraceSink;
use std::collections::BTreeMap;

/// Contention factor: given the number of simultaneously busy cores,
/// return the effective speed multiplier in `(0, 1]`. `None` models an
/// ideal (contention-free) machine. `Send + Sync` so a simulator can
/// live behind a lock in a multi-threaded service.
pub type ContentionFn = Box<dyn Fn(usize) -> f64 + Send + Sync>;

/// Simulator configuration.
pub struct SimConfig {
    /// The hardware platform.
    pub platform: Platform,
    /// Per-core governor (defaults to `Userspace` everywhere).
    pub governors: Vec<GovernorKind>,
    /// Per-core cap on the usable rate index (defaults to the table max;
    /// the Power Saving baseline lowers it).
    pub max_allowed_rate: Vec<RateIdx>,
    /// Optional shared-resource contention model.
    pub contention: Option<ContentionFn>,
    /// Record the `(time, watts)` platform power step function.
    pub record_power_timeline: bool,
    /// DVFS transition latency in seconds: after a frequency change the
    /// core stalls (draws active power, executes nothing) for this long.
    /// Real per-core DVFS transitions cost on the order of tens of
    /// microseconds; the default 0 models the paper's idealization.
    pub switch_latency_s: f64,
    /// Record a decision [`crate::EventLog`] (arrivals, dispatches,
    /// preemptions, rate changes, completions).
    pub record_event_log: bool,
    /// Safety valve: abort after this many processed events.
    pub event_budget: u64,
}

impl SimConfig {
    /// Default configuration: userspace governors, no caps, no
    /// contention, timeline recording off.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        let n = platform.num_cores();
        let caps = (0..n)
            .map(|j| platform.core(j).expect("in range").rates.max_rate())
            .collect();
        SimConfig {
            platform,
            governors: vec![GovernorKind::Userspace; n],
            max_allowed_rate: caps,
            contention: None,
            record_power_timeline: false,
            switch_latency_s: 0.0,
            record_event_log: false,
            event_budget: 2_000_000_000,
        }
    }

    /// Use `governor` on every core.
    #[must_use]
    pub fn with_governor(mut self, governor: GovernorKind) -> Self {
        self.governors = vec![governor; self.platform.num_cores()];
        self
    }

    /// Cap every core's usable rates at `idx` (Power Saving).
    #[must_use]
    pub fn with_rate_cap(mut self, idx: RateIdx) -> Self {
        for (j, cap) in self.max_allowed_rate.iter_mut().enumerate() {
            let hw_max = self.platform.core(j).expect("in range").rates.max_rate();
            *cap = idx.min(hw_max);
        }
        self
    }

    /// Install a contention model.
    #[must_use]
    pub fn with_contention(mut self, f: ContentionFn) -> Self {
        self.contention = Some(f);
        self
    }

    /// Enable power-timeline recording.
    #[must_use]
    pub fn with_power_timeline(mut self) -> Self {
        self.record_power_timeline = true;
        self
    }

    /// Enable decision logging.
    #[must_use]
    pub fn with_event_log(mut self) -> Self {
        self.record_event_log = true;
        self
    }

    /// Set the DVFS transition latency.
    ///
    /// # Panics
    /// Panics when `latency` is negative or not finite.
    #[must_use]
    pub fn with_switch_latency(mut self, latency_s: f64) -> Self {
        assert!(
            latency_s.is_finite() && latency_s >= 0.0,
            "switch latency must be finite and non-negative"
        );
        self.switch_latency_s = latency_s;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    /// Known to the simulator but not yet arrived.
    Future,
    /// Arrived; waiting for a policy dispatch (also after preemption).
    Ready,
    /// Executing on the given core.
    Running(CoreId),
    /// Finished.
    Done,
}

struct Job {
    task: Task,
    remaining: f64,
    phase: JobPhase,
    record: TaskRecord,
}

struct Core {
    rate: RateIdx,
    max_allowed: RateIdx,
    governor: GovernorKind,
    epoch: u64,
    running: Option<TaskId>,
    last_sync: f64,
    busy_time: f64,
    busy_at_last_tick: f64,
    /// Busy seconds per rate index.
    residency: Vec<f64>,
    /// The core stalls (no execution) until this time after a DVFS
    /// transition.
    stall_until: f64,
}

/// The simulation engine. Construct with [`Simulator::new`], add tasks,
/// then [`Simulator::run`] with a policy.
///
/// ```
/// use dvfs_core::PlanPolicy;
/// use dvfs_model::{BatchPlan, Platform, Task, TaskId};
/// use dvfs_sim::{SimConfig, Simulator};
///
/// let platform = Platform::i7_950_quad();
/// let task = Task::batch(0, 1_600_000_000).unwrap(); // 1 s at 1.6 GHz
/// let mut plan = BatchPlan::empty(4);
/// plan.per_core[0].push((TaskId(0), 0));
///
/// let mut sim = Simulator::new(SimConfig::new(platform));
/// sim.add_tasks(&[task]);
/// let report = sim.run(&mut PlanPolicy::new(plan));
/// assert_eq!(report.completed(), 1);
/// assert!((report.makespan - 1.0).abs() < 1e-9);
/// ```
pub struct Simulator {
    cfg: SimConfig,
    cores: Vec<Core>,
    jobs: BTreeMap<TaskId, Job>,
    queue: EventQueue,
    now: f64,
    done: usize,
    total: usize,
    active_energy: f64,
    power_timeline: Vec<(f64, f64)>,
    last_completion: f64,
    event_log: crate::EventLog,
    /// Whether governor ticks have been primed (first run/step).
    started: bool,
    /// Incremental mode: tasks may keep arriving via [`Simulator::push_task`],
    /// so periodic governors re-arm even when the current backlog drains.
    incremental: bool,
    /// Events processed so far (budget accounting across steps).
    processed: u64,
    /// Completions since the last [`Simulator::take_completions`] drain.
    fresh_completions: Vec<TaskId>,
    /// Optional lifecycle trace sink (see `dvfs-trace`). Events are
    /// timestamped with simulation seconds only, so drained traces are
    /// bit-identical across runs.
    trace: Option<Box<dyn TraceSink>>,
}

impl Simulator {
    /// Build a simulator from a configuration.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        let cores = (0..cfg.platform.num_cores())
            .map(|j| {
                let gov = cfg.governors[j];
                let start_rate = match gov {
                    GovernorKind::Performance => cfg.max_allowed_rate[j],
                    // An idle machine settles at the lowest level under
                    // the demand-driven governors; start there.
                    GovernorKind::OnDemand { .. } | GovernorKind::Conservative { .. } => 0,
                    GovernorKind::Userspace => 0,
                };
                let nrates = cfg.platform.core(j).expect("in range").rates.len();
                Core {
                    rate: start_rate,
                    max_allowed: cfg.max_allowed_rate[j],
                    governor: gov,
                    epoch: 0,
                    running: None,
                    last_sync: 0.0,
                    busy_time: 0.0,
                    busy_at_last_tick: 0.0,
                    residency: vec![0.0; nrates],
                    stall_until: 0.0,
                }
            })
            .collect();
        Simulator {
            cores,
            jobs: BTreeMap::new(),
            queue: EventQueue::new(),
            now: 0.0,
            done: 0,
            total: 0,
            active_energy: 0.0,
            power_timeline: Vec::new(),
            last_completion: 0.0,
            event_log: crate::EventLog::default(),
            started: false,
            incremental: false,
            processed: 0,
            fresh_completions: Vec::new(),
            trace: None,
            cfg,
        }
    }

    fn log(&mut self, event: crate::LogEvent) {
        if self.cfg.record_event_log {
            self.event_log.push(self.now, event);
        }
    }

    /// Attach (or detach, with `None`) a lifecycle trace sink. The
    /// engine records dispatch / preempt / rate-change / complete
    /// events into it; policies reach the same sink through
    /// [`ExecutorView::trace`] to add decision provenance.
    pub fn set_trace_sink(&mut self, sink: Option<Box<dyn TraceSink>>) {
        self.trace = sink;
    }

    /// Take the attached trace sink back out (e.g. to drain a ring).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    fn trace_record(&mut self, kind: dvfs_trace::EventKind) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(self.now, kind);
        }
    }

    /// Register tasks; each arrives at its `Task::arrival` time.
    ///
    /// # Panics
    /// Panics on duplicate task ids.
    pub fn add_tasks(&mut self, tasks: &[Task]) {
        for t in tasks {
            let prev = self.jobs.insert(
                t.id,
                Job {
                    task: t.clone(),
                    remaining: t.cycles as f64,
                    phase: JobPhase::Future,
                    record: TaskRecord {
                        id: t.id,
                        class: t.class,
                        cycles: t.cycles,
                        arrival: t.arrival,
                        first_start: None,
                        completion: None,
                        energy_joules: 0.0,
                        preemptions: 0,
                    },
                },
            );
            assert!(prev.is_none(), "duplicate task id {}", t.id);
            self.queue
                .push(t.arrival, EventKind::Arrival { task: t.id });
            self.total += 1;
        }
    }

    fn busy_count(&self) -> usize {
        self.cores.iter().filter(|c| c.running.is_some()).count()
    }

    fn contention_factor(&self, busy: usize) -> f64 {
        match &self.cfg.contention {
            Some(f) => {
                let v = f(busy);
                debug_assert!(v > 0.0 && v <= 1.0, "contention factor out of (0,1]");
                v
            }
            None => 1.0,
        }
    }

    fn rate_table(&self, j: CoreId) -> &RateTable {
        &self.cfg.platform.core(j).expect("core in range").rates
    }

    /// Advance all cores' progress/energy accounting to `self.now`.
    fn sync_all(&mut self) {
        let factor = self.contention_factor(self.busy_count());
        for j in 0..self.cores.len() {
            let dt = self.now - self.cores[j].last_sync;
            debug_assert!(dt >= -1e-9, "time went backwards on core {j}");
            if dt > 0.0 {
                if let Some(tid) = self.cores[j].running {
                    let rp = self.rate_table(j).rate(self.cores[j].rate);
                    // Execution speed follows the model's T(p), which the
                    // paper publishes with rounding (Table II), rather
                    // than the nominal frequency: Equation 2 is the
                    // ground truth for t_k = L_k * T(p). A core stalled
                    // by a DVFS transition draws power but makes no
                    // progress until stall_until.
                    let exec_dt = (self.now
                        - self.cores[j].stall_until.max(self.cores[j].last_sync))
                    .clamp(0.0, dt);
                    let cycles_done = (1.0 / rp.time_per_cycle) * factor * exec_dt;
                    let energy = rp.active_power_watts() * dt;
                    let job = self.jobs.get_mut(&tid).expect("running job exists");
                    job.remaining -= cycles_done;
                    job.record.energy_joules += energy;
                    self.active_energy += energy;
                    self.cores[j].busy_time += dt;
                    let rate = self.cores[j].rate;
                    self.cores[j].residency[rate] += dt;
                }
            }
            self.cores[j].last_sync = self.now;
        }
    }

    /// Total active power right now, in watts.
    fn total_active_power(&self) -> f64 {
        (0..self.cores.len())
            .filter(|&j| self.cores[j].running.is_some())
            .map(|j| {
                self.rate_table(j)
                    .rate(self.cores[j].rate)
                    .active_power_watts()
            })
            .sum()
    }

    fn record_power_point(&mut self) {
        if self.cfg.record_power_timeline {
            let w = self.total_active_power();
            self.power_timeline.push((self.now, w));
        }
    }

    /// Reschedule the completion event of core `j` (if busy) based on the
    /// current rate and contention.
    fn reschedule(&mut self, j: CoreId) {
        self.cores[j].epoch += 1;
        if let Some(tid) = self.cores[j].running {
            let remaining = self.jobs[&tid].remaining.max(0.0);
            let rp = self.rate_table(j).rate(self.cores[j].rate);
            let eff = (1.0 / rp.time_per_cycle) * self.contention_factor(self.busy_count());
            let stall = (self.cores[j].stall_until - self.now).max(0.0);
            let t_fin = self.now + stall + remaining / eff;
            self.queue.push(
                t_fin,
                EventKind::Completion {
                    core: j,
                    epoch: self.cores[j].epoch,
                },
            );
        }
    }

    /// Reschedule completions after a change that may alter effective
    /// speeds: the mutated core always, every busy core when contention
    /// is active (the busy count moved).
    fn reschedule_after_mutation(&mut self, mutated: CoreId) {
        if self.cfg.contention.is_some() {
            for j in 0..self.cores.len() {
                if j == mutated || self.cores[j].running.is_some() {
                    self.reschedule(j);
                }
            }
        } else {
            self.reschedule(mutated);
        }
        self.record_power_point();
    }

    /// Prime periodic governor ticks; idempotent across run/step calls.
    fn start_ticks(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for j in 0..self.cores.len() {
            if let Some(p) = self.cores[j].governor.period() {
                self.queue.push(p, EventKind::GovernorTick { core: j });
            }
        }
    }

    /// Process one event against the policy.
    fn process_event(&mut self, policy: &mut dyn Policy, ev: crate::event::Event) {
        self.processed += 1;
        assert!(
            self.processed <= self.cfg.event_budget,
            "event budget exceeded: likely a policy/governor livelock"
        );
        debug_assert!(ev.time >= self.now - 1e-9, "event time precedes now");
        self.now = self.now.max(ev.time);
        match ev.kind {
            EventKind::Arrival { task } => {
                self.sync_all();
                let job = self.jobs.get_mut(&task).expect("arrival for known task");
                debug_assert_eq!(job.phase, JobPhase::Future);
                job.phase = JobPhase::Ready;
                let t = job.task.clone();
                self.log(crate::LogEvent::Arrival { task: t.id });
                policy.on_arrival(&mut SimView { sim: self }, &t);
            }
            EventKind::Completion { core, epoch } => {
                if self.cores[core].epoch != epoch {
                    return; // stale
                }
                self.sync_all();
                let tid = self.cores[core]
                    .running
                    .expect("valid completion implies a running task");
                {
                    let job = self.jobs.get_mut(&tid).expect("job exists");
                    debug_assert!(
                        job.remaining.abs() < 1.0,
                        "completion fired with {} cycles left",
                        job.remaining
                    );
                    job.remaining = 0.0;
                    job.phase = JobPhase::Done;
                    job.record.completion = Some(self.now);
                }
                self.cores[core].running = None;
                self.done += 1;
                self.last_completion = self.now;
                self.fresh_completions.push(tid);
                self.log(crate::LogEvent::Completion { core, task: tid });
                if self.trace.is_some() {
                    let rec = self.jobs[&tid].record;
                    self.trace_record(dvfs_trace::EventKind::Complete {
                        task: tid.0,
                        core: core as u32,
                        energy_j: rec.energy_joules,
                        turnaround_s: self.now - rec.arrival,
                    });
                }
                self.reschedule_after_mutation(core);
                let t = self.jobs[&tid].task.clone();
                policy.on_completion(&mut SimView { sim: self }, core, &t);
            }
            EventKind::GovernorTick { core } => {
                self.sync_all();
                let c = &self.cores[core];
                let period = c.governor.period().expect("tick implies periodic governor");
                let load = ((c.busy_time - c.busy_at_last_tick) / period).clamp(0.0, 1.0);
                let next = c.governor.next_rate(load, c.rate, c.max_allowed);
                self.cores[core].busy_at_last_tick = self.cores[core].busy_time;
                if next != self.cores[core].rate {
                    let from = self.cores[core].rate;
                    self.cores[core].rate = next;
                    if self.cfg.switch_latency_s > 0.0 {
                        self.cores[core].stall_until = self.now + self.cfg.switch_latency_s;
                    }
                    self.log(crate::LogEvent::RateChange {
                        core,
                        from,
                        to: next,
                    });
                    self.trace_record(dvfs_trace::EventKind::RateChange {
                        core: core as u32,
                        from: from as u32,
                        to: next as u32,
                    });
                    self.reschedule_after_mutation(core);
                }
                if self.done < self.total || self.incremental {
                    self.queue
                        .push(self.now + period, EventKind::GovernorTick { core });
                }
                policy.on_tick(&mut SimView { sim: self }, core);
            }
        }
    }

    /// Run the simulation to completion and report.
    ///
    /// In incremental mode (after [`Simulator::push_task`] /
    /// [`Simulator::step_until`]) this drains the remaining backlog —
    /// the natural "graceful shutdown" path for a service.
    ///
    /// # Panics
    /// Panics when the event queue drains while tasks remain unfinished
    /// (the policy failed to dispatch them), or when the event budget is
    /// exceeded.
    pub fn run(&mut self, policy: &mut dyn Policy) -> SimReport {
        self.start_ticks();
        while self.done < self.total {
            let ev = self.queue.pop().unwrap_or_else(|| {
                panic!(
                    "event queue drained with {} of {} tasks unfinished: the policy \
                     failed to dispatch them",
                    self.total - self.done,
                    self.total
                )
            });
            self.process_event(policy, ev);
        }
        self.finalize(policy.name())
    }

    /// Register one task while the simulation is (possibly) underway:
    /// the arrival fires at `task.arrival` or now, whichever is later.
    /// Switches the simulator into incremental mode.
    ///
    /// # Panics
    /// Panics on a duplicate task id.
    pub fn push_task(&mut self, task: &Task) {
        self.incremental = true;
        let arrival = task.arrival.max(self.now);
        let prev = self.jobs.insert(
            task.id,
            Job {
                task: task.clone(),
                remaining: task.cycles as f64,
                phase: JobPhase::Future,
                record: TaskRecord {
                    id: task.id,
                    class: task.class,
                    cycles: task.cycles,
                    arrival,
                    first_start: None,
                    completion: None,
                    energy_joules: 0.0,
                    preemptions: 0,
                },
            },
        );
        assert!(prev.is_none(), "duplicate task id {}", task.id);
        self.queue
            .push(arrival, EventKind::Arrival { task: task.id });
        self.total += 1;
    }

    /// Advance the simulation clock to `t`, processing every event due
    /// at or before it. Time then rests exactly at `t` (cores idle or
    /// mid-task), ready for more [`Simulator::push_task`] calls — the
    /// paced-real-time driver of a long-running service.
    ///
    /// # Panics
    /// Panics when `t` is not finite or precedes the current time by
    /// more than rounding error, or when the event budget is exceeded.
    pub fn step_until(&mut self, policy: &mut dyn Policy, t: f64) {
        assert!(t.is_finite(), "step_until: time must be finite");
        assert!(
            t >= self.now - 1e-9,
            "step_until: t={t} precedes now={}",
            self.now
        );
        self.incremental = true;
        self.start_ticks();
        while self.queue.peek().is_some_and(|ev| ev.time <= t) {
            let ev = self.queue.pop().expect("peeked");
            self.process_event(policy, ev);
        }
        self.now = self.now.max(t);
        self.sync_all();
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Tasks registered but not yet completed.
    #[must_use]
    pub fn pending_tasks(&self) -> usize {
        self.total - self.done
    }

    /// Drain the records of tasks completed since the previous drain
    /// (completion order).
    pub fn take_completions(&mut self) -> Vec<TaskRecord> {
        std::mem::take(&mut self.fresh_completions)
            .into_iter()
            .map(|tid| self.jobs[&tid].record)
            .collect()
    }

    /// The decision log accumulated so far (empty unless
    /// [`SimConfig::with_event_log`]). Incremental drivers can diff
    /// this between steps to mirror rate changes onto an actuator.
    #[must_use]
    pub fn event_log(&self) -> &crate::EventLog {
        &self.event_log
    }

    /// Snapshot a report of everything simulated so far without
    /// consuming the simulator (the timeline, busy counters, and event
    /// log move out; incremental callers should treat this as final).
    pub fn report(&mut self, policy_name: String) -> SimReport {
        self.finalize(policy_name)
    }

    fn finalize(&mut self, policy: String) -> SimReport {
        self.sync_all();
        let makespan = self.last_completion;
        let idle_energy: f64 = (0..self.cores.len())
            .map(|j| {
                let idle = (makespan - self.cores[j].busy_time).max(0.0);
                self.cfg
                    .platform
                    .core(j)
                    .expect("in range")
                    .idle_power_watts
                    * idle
            })
            .sum();
        SimReport {
            policy,
            tasks: self
                .jobs
                .iter()
                .map(|(id, job)| (*id, job.record))
                .collect(),
            active_energy_joules: self.active_energy,
            idle_energy_joules: idle_energy,
            makespan,
            power_timeline: std::mem::take(&mut self.power_timeline),
            core_busy: self.cores.iter().map(|c| c.busy_time).collect(),
            rate_residency: self.cores.iter().map(|c| c.residency.clone()).collect(),
            event_log: std::mem::take(&mut self.event_log),
        }
    }
}

/// The mutable window a [`Policy`] gets into the simulation: the
/// virtual-time implementation of the engine-agnostic
/// [`ExecutorView`]. Policies written against the trait run unchanged
/// on any other executor (e.g. the wall-clock one in `dvfs-serve`).
pub struct SimView<'a> {
    sim: &'a mut Simulator,
}

impl ExecutorView for SimView<'_> {
    fn now(&self) -> f64 {
        SimView::now(self)
    }
    fn num_cores(&self) -> usize {
        SimView::num_cores(self)
    }
    fn rate_table(&self, j: CoreId) -> &RateTable {
        SimView::rate_table(self, j)
    }
    fn max_allowed_rate(&self, j: CoreId) -> RateIdx {
        SimView::max_allowed_rate(self, j)
    }
    fn current_rate(&self, j: CoreId) -> RateIdx {
        SimView::current_rate(self, j)
    }
    fn running_task(&self, j: CoreId) -> Option<TaskId> {
        SimView::running_task(self, j)
    }
    fn is_idle(&self, j: CoreId) -> bool {
        SimView::is_idle(self, j)
    }
    fn remaining_cycles(&self, t: TaskId) -> f64 {
        SimView::remaining_cycles(self, t)
    }
    fn set_rate(&mut self, j: CoreId, rate: RateIdx) {
        SimView::set_rate(self, j, rate);
    }
    fn dispatch(&mut self, j: CoreId, task: TaskId, rate: Option<RateIdx>) {
        SimView::dispatch(self, j, task, rate);
    }
    fn preempt(&mut self, j: CoreId) -> TaskId {
        SimView::preempt(self, j)
    }
    fn trace(&mut self) -> Option<&mut dyn TraceSink> {
        self.sim
            .trace
            .as_mut()
            .map(|s| s.as_mut() as &mut dyn TraceSink)
    }
}

impl SimView<'_> {
    /// Current simulation time in seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.sim.now
    }

    /// Number of cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.sim.cores.len()
    }

    /// The rate table of core `j`.
    ///
    /// # Panics
    /// Panics when `j` is out of range.
    #[must_use]
    pub fn rate_table(&self, j: CoreId) -> &RateTable {
        self.sim.rate_table(j)
    }

    /// Highest rate index the core is allowed to use.
    #[must_use]
    pub fn max_allowed_rate(&self, j: CoreId) -> RateIdx {
        self.sim.cores[j].max_allowed
    }

    /// Current rate index of core `j`.
    #[must_use]
    pub fn current_rate(&self, j: CoreId) -> RateIdx {
        self.sim.cores[j].rate
    }

    /// Task currently running on core `j`.
    #[must_use]
    pub fn running_task(&self, j: CoreId) -> Option<TaskId> {
        self.sim.cores[j].running
    }

    /// Whether core `j` has no running task.
    #[must_use]
    pub fn is_idle(&self, j: CoreId) -> bool {
        self.sim.cores[j].running.is_none()
    }

    /// Remaining cycles of a task (full cycles if it never ran).
    ///
    /// # Panics
    /// Panics for an unknown task id.
    #[must_use]
    pub fn remaining_cycles(&self, t: TaskId) -> f64 {
        self.sim.jobs[&t].remaining.max(0.0)
    }

    /// The immutable task definition.
    ///
    /// # Panics
    /// Panics for an unknown task id.
    #[must_use]
    pub fn task(&self, t: TaskId) -> &Task {
        &self.sim.jobs[&t].task
    }

    /// Set the frequency of core `j` (userspace control). Takes effect
    /// immediately; an in-flight task simply proceeds at the new speed,
    /// as per-core DVFS allows in the online mode.
    ///
    /// # Panics
    /// Panics when the rate exceeds the core's allowed cap.
    pub fn set_rate(&mut self, j: CoreId, rate: RateIdx) {
        assert!(
            rate <= self.sim.cores[j].max_allowed,
            "rate {rate} above allowed cap {} on core {j}",
            self.sim.cores[j].max_allowed
        );
        if self.sim.cores[j].rate == rate {
            return;
        }
        self.sim.sync_all();
        let from = self.sim.cores[j].rate;
        self.sim.cores[j].rate = rate;
        if self.sim.cfg.switch_latency_s > 0.0 {
            self.sim.cores[j].stall_until = self.sim.now + self.sim.cfg.switch_latency_s;
        }
        self.sim.log(crate::LogEvent::RateChange {
            core: j,
            from,
            to: rate,
        });
        self.sim.trace_record(dvfs_trace::EventKind::RateChange {
            core: j as u32,
            from: from as u32,
            to: rate as u32,
        });
        self.sim.reschedule_after_mutation(j);
    }

    /// Start `task` on idle core `j`, optionally setting the rate first.
    ///
    /// # Panics
    /// Panics when the core is busy, the task is not ready (not yet
    /// arrived, already running, or done), or the rate is above the cap.
    pub fn dispatch(&mut self, j: CoreId, task: TaskId, rate: Option<RateIdx>) {
        assert!(
            self.sim.cores[j].running.is_none(),
            "dispatch onto busy core {j}"
        );
        self.sim.sync_all();
        if let Some(r) = rate {
            assert!(
                r <= self.sim.cores[j].max_allowed,
                "rate {r} above allowed cap on core {j}"
            );
            if r != self.sim.cores[j].rate && self.sim.cfg.switch_latency_s > 0.0 {
                self.sim.cores[j].stall_until = self.sim.now + self.sim.cfg.switch_latency_s;
            }
            self.sim.cores[j].rate = r;
        }
        let now = self.sim.now;
        let job = self.sim.jobs.get_mut(&task).expect("dispatch unknown task");
        assert_eq!(
            job.phase,
            JobPhase::Ready,
            "task {task} not ready for dispatch"
        );
        job.phase = JobPhase::Running(j);
        if job.record.first_start.is_none() {
            job.record.first_start = Some(now);
        }
        self.sim.cores[j].running = Some(task);
        let rate_now = self.sim.cores[j].rate;
        self.sim.log(crate::LogEvent::Dispatch {
            core: j,
            task,
            rate: rate_now,
        });
        if self.sim.trace.is_some() {
            // Mirror `reschedule`'s exact arithmetic so the predicted
            // energy is bit-comparable with the measured accrual when a
            // dispatch runs in one uninterrupted slice.
            let remaining = self.sim.jobs[&task].remaining.max(0.0);
            let rp = self.sim.rate_table(j).rate(rate_now);
            let eff = (1.0 / rp.time_per_cycle) * self.sim.contention_factor(self.sim.busy_count());
            let stall = (self.sim.cores[j].stall_until - self.sim.now).max(0.0);
            let predicted_time_s = stall + remaining / eff;
            let predicted_energy_j = rp.active_power_watts() * predicted_time_s;
            self.sim.trace_record(dvfs_trace::EventKind::Dispatch {
                task: task.0,
                core: j as u32,
                rate: rate_now as u32,
                predicted_energy_j,
                predicted_time_s,
            });
        }
        self.sim.reschedule_after_mutation(j);
    }

    /// Preempt the task running on core `j`, returning its id. Progress
    /// is preserved; the task becomes ready for a later dispatch.
    ///
    /// # Panics
    /// Panics when the core is idle.
    pub fn preempt(&mut self, j: CoreId) -> TaskId {
        let tid = self.sim.cores[j].running.expect("preempt on an idle core");
        self.sim.sync_all();
        let job = self.sim.jobs.get_mut(&tid).expect("job exists");
        job.phase = JobPhase::Ready;
        job.record.preemptions += 1;
        self.sim.cores[j].running = None;
        self.sim
            .log(crate::LogEvent::Preempt { core: j, task: tid });
        self.sim.trace_record(dvfs_trace::EventKind::Preempt {
            task: tid.0,
            core: j as u32,
        });
        self.sim.reschedule_after_mutation(j);
        tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_model::{CoreSpec, TaskClass};

    /// Runs every batch task on core 0 at a fixed rate, FIFO.
    struct Fifo {
        rate: RateIdx,
        queue: std::collections::VecDeque<TaskId>,
    }

    impl Fifo {
        fn new(rate: RateIdx) -> Self {
            Fifo {
                rate,
                queue: Default::default(),
            }
        }
    }

    impl Policy for Fifo {
        fn name(&self) -> String {
            "fifo-test".into()
        }
        fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
            self.queue.push_back(task.id);
            if sim.is_idle(0) {
                let next = self.queue.pop_front().expect("just pushed");
                sim.dispatch(0, next, Some(self.rate));
            }
        }
        fn on_completion(&mut self, sim: &mut dyn ExecutorView, _core: CoreId, _task: &Task) {
            if let Some(next) = self.queue.pop_front() {
                sim.dispatch(0, next, Some(self.rate));
            }
        }
    }

    fn single_core_platform() -> Platform {
        Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap()
    }

    #[test]
    fn single_task_timing_and_energy_exact() {
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        // 1.6e9 cycles at 1.6 GHz (rate 0): exactly 1 s, 5.4 J.
        sim.add_tasks(&[Task::batch(1, 1_600_000_000).unwrap()]);
        let report = sim.run(&mut Fifo::new(0));
        let rec = report.tasks[&TaskId(1)];
        assert!((rec.completion.unwrap() - 1.0).abs() < 1e-9);
        assert!((rec.energy_joules - 5.4).abs() < 1e-6);
        assert!((report.active_energy_joules - 5.4).abs() < 1e-6);
        assert!((report.makespan - 1.0).abs() < 1e-9);
        assert_eq!(report.completed(), 1);
    }

    #[test]
    fn fifo_turnarounds_accumulate() {
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        // Two 1-second tasks back to back: completions at 1 s and 2 s.
        sim.add_tasks(&[
            Task::batch(1, 1_600_000_000).unwrap(),
            Task::batch(2, 1_600_000_000).unwrap(),
        ]);
        let report = sim.run(&mut Fifo::new(0));
        assert!((report.total_turnaround() - 3.0).abs() < 1e-9);
        assert!((report.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_rate_shortens_time_but_raises_energy() {
        let run_at = |rate: RateIdx| {
            let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
            sim.add_tasks(&[Task::batch(1, 3_000_000_000).unwrap()]);
            sim.run(&mut Fifo::new(rate))
        };
        let slow = run_at(0);
        let fast = run_at(4);
        assert!(fast.makespan < slow.makespan);
        assert!(fast.active_energy_joules > slow.active_energy_joules);
    }

    #[test]
    fn mid_task_rate_change_is_honored() {
        /// Dispatch at low rate, then raise to max at arrival of a
        /// sentinel second task.
        struct Switcher;
        impl Policy for Switcher {
            fn name(&self) -> String {
                "switcher".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                if task.id == TaskId(1) {
                    sim.dispatch(0, task.id, Some(0));
                } else {
                    // Sentinel arrival: crank the frequency.
                    sim.set_rate(0, 4);
                }
            }
            fn on_completion(&mut self, sim: &mut dyn ExecutorView, _c: CoreId, task: &Task) {
                if task.id == TaskId(1) {
                    sim.dispatch(0, TaskId(2), None);
                }
            }
        }
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        // Task 1: 3.2e9 cycles. At 1.6 GHz alone it would take 2 s.
        // At t=1 s (1.6e9 cycles done) we switch to the top level, whose
        // per-cycle time is T=0.33 ns (Table II), so the remaining
        // 1.6e9 cycles take 1.6e9 * 0.33 ns = 0.528 s.
        let t1 = Task::batch(1, 3_200_000_000).unwrap();
        let t2 = Task::online(2, 1_000, 1.0, None, TaskClass::Batch).unwrap();
        sim.add_tasks(&[t1, t2]);
        let report = sim.run(&mut Switcher);
        let done1 = report.tasks[&TaskId(1)].completion.unwrap();
        assert!((done1 - (1.0 + 0.528)).abs() < 1e-6, "got {done1}");
        // Energy: 1 s at 1.6 GHz power + 0.528 s at top-level power.
        let p_slow = 3.375e-9 / 0.625e-9;
        let p_fast = 7.1e-9 / 0.33e-9;
        let expect = p_slow * 1.0 + p_fast * 0.528;
        let e1 = report.tasks[&TaskId(1)].energy_joules;
        assert!((e1 - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn preemption_preserves_progress() {
        /// Runs task 1; at task 2's arrival preempts and runs task 2,
        /// then resumes task 1.
        struct Preemptor {
            resumed: Option<TaskId>,
        }
        impl Policy for Preemptor {
            fn name(&self) -> String {
                "preemptor".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                if task.id == TaskId(1) {
                    sim.dispatch(0, task.id, Some(0));
                } else {
                    let prev = sim.preempt(0);
                    self.resumed = Some(prev);
                    sim.dispatch(0, task.id, Some(4));
                }
            }
            fn on_completion(&mut self, sim: &mut dyn ExecutorView, _c: CoreId, task: &Task) {
                if task.id == TaskId(2) {
                    let prev = self.resumed.take().expect("preempted task saved");
                    sim.dispatch(0, prev, Some(0));
                }
            }
        }
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        // Task 1: 3.2e9 cycles at 1.6 GHz = 2 s if uninterrupted.
        // Task 2 arrives at t=1 (task 1 half done), runs 3e9 cycles at
        // the top level (T=0.33 ns) = 0.99 s. Task 1 resumes at t=1.99,
        // finishes remaining 1.6e9 cycles at 1.6 GHz in 1 s → t=2.99.
        sim.add_tasks(&[
            Task::batch(1, 3_200_000_000).unwrap(),
            Task::online(2, 3_000_000_000, 1.0, None, TaskClass::Interactive).unwrap(),
        ]);
        let report = sim.run(&mut Preemptor { resumed: None });
        let r1 = report.tasks[&TaskId(1)];
        let r2 = report.tasks[&TaskId(2)];
        assert!((r2.completion.unwrap() - 1.99).abs() < 1e-9);
        assert!((r1.completion.unwrap() - 2.99).abs() < 1e-9);
        assert_eq!(r1.preemptions, 1);
        assert_eq!(r2.preemptions, 0);
    }

    #[test]
    fn contention_dilates_execution_and_energy() {
        /// Dispatches task k on core k at max rate.
        struct OnePerCore;
        impl Policy for OnePerCore {
            fn name(&self) -> String {
                "one-per-core".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                let core = task.id.0 as usize;
                let max = sim.max_allowed_rate(core);
                sim.dispatch(core, task.id, Some(max));
            }
            fn on_completion(&mut self, _s: &mut dyn ExecutorView, _c: CoreId, _t: &Task) {}
        }
        let platform = Platform::i7_950_quad();
        let tasks: Vec<Task> = (0..4)
            .map(|i| Task::batch(i, 3_000_000_000).unwrap())
            .collect();

        let mut ideal = Simulator::new(SimConfig::new(platform.clone()));
        ideal.add_tasks(&tasks);
        let ideal_report = ideal.run(&mut OnePerCore);

        let mut contended =
            Simulator::new(SimConfig::new(platform).with_contention(Box::new(|busy| {
                if busy <= 1 {
                    1.0
                } else {
                    1.0 / (1.0 + 0.04 * (busy as f64 - 1.0))
                }
            })));
        contended.add_tasks(&tasks);
        let contended_report = contended.run(&mut OnePerCore);

        // 4 busy cores → factor 1/1.12: makespan stretches ~12%.
        let ideal_span = 3.0e9 * 0.33e-9; // T(p_max) = 0.33 ns
        assert!((ideal_report.makespan - ideal_span).abs() < 1e-9);
        let ratio = contended_report.makespan / ideal_report.makespan;
        assert!(ratio > 1.11 && ratio < 1.13, "got ratio {ratio}");
        assert!(contended_report.active_energy_joules > ideal_report.active_energy_joules * 1.11);
    }

    #[test]
    fn ondemand_governor_ramps_up_under_load() {
        /// Dispatches everything on core 0 FIFO *without* setting rates,
        /// leaving frequency to the governor.
        struct GovFifo {
            queue: std::collections::VecDeque<TaskId>,
        }
        impl Policy for GovFifo {
            fn name(&self) -> String {
                "gov-fifo".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                self.queue.push_back(task.id);
                if sim.is_idle(0) {
                    let next = self.queue.pop_front().expect("just pushed");
                    sim.dispatch(0, next, None);
                }
            }
            fn on_completion(&mut self, sim: &mut dyn ExecutorView, _c: CoreId, _t: &Task) {
                if let Some(next) = self.queue.pop_front() {
                    sim.dispatch(0, next, None);
                }
            }
        }
        let platform = single_core_platform();
        let cfg = SimConfig::new(platform).with_governor(GovernorKind::ondemand_paper());
        let mut sim = Simulator::new(cfg);
        // 16e9 cycles: at 1.6 GHz would take 10 s; the governor ramps to
        // 3.0 GHz after the first 1 s tick, so the run must finish in
        // well under 10 s but more than the 3 GHz-only 5.33 s.
        sim.add_tasks(&[Task::batch(1, 16_000_000_000).unwrap()]);
        let report = sim.run(&mut GovFifo {
            queue: Default::default(),
        });
        let t = report.makespan;
        assert!(t > 5.3 && t < 6.5, "governor ramp produced makespan {t}");
    }

    #[test]
    fn power_saving_cap_limits_frequency() {
        struct MaxFifo;
        impl Policy for MaxFifo {
            fn name(&self) -> String {
                "max-fifo".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                let cap = sim.max_allowed_rate(0);
                sim.dispatch(0, task.id, Some(cap));
            }
            fn on_completion(&mut self, _s: &mut dyn ExecutorView, _c: CoreId, _t: &Task) {}
        }
        let cfg = SimConfig::new(single_core_platform()).with_rate_cap(2);
        let mut sim = Simulator::new(cfg);
        // 2.4e9 cycles at the capped 2.4 GHz finish in exactly 1 s ×
        // T(2.4 GHz)=0.42ns/cycle → 1.008 s (Table II rounding).
        sim.add_tasks(&[Task::batch(1, 2_400_000_000).unwrap()]);
        let report = sim.run(&mut MaxFifo);
        assert!((report.makespan - 2.4e9 * 0.42e-9).abs() < 1e-9);
    }

    #[test]
    fn idle_energy_accounts_for_unused_cores() {
        struct CoreZeroOnly;
        impl Policy for CoreZeroOnly {
            fn name(&self) -> String {
                "core-zero".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                sim.dispatch(0, task.id, Some(0));
            }
            fn on_completion(&mut self, _s: &mut dyn ExecutorView, _c: CoreId, _t: &Task) {}
        }
        let mut sim = Simulator::new(SimConfig::new(Platform::i7_950_quad()));
        sim.add_tasks(&[Task::batch(1, 1_600_000_000).unwrap()]);
        let report = sim.run(&mut CoreZeroOnly);
        // 3 idle cores × 2 W × 1 s makespan.
        assert!((report.idle_energy_joules - 6.0).abs() < 1e-6);
        assert!((report.core_busy[0] - 1.0).abs() < 1e-9);
        assert_eq!(report.core_busy[1], 0.0);
    }

    #[test]
    fn power_timeline_records_step_changes() {
        let cfg = SimConfig::new(single_core_platform()).with_power_timeline();
        let mut sim = Simulator::new(cfg);
        sim.add_tasks(&[Task::batch(1, 1_600_000_000).unwrap()]);
        let report = sim.run(&mut Fifo::new(0));
        assert!(!report.power_timeline.is_empty());
        // First point: dispatch at t=0 with 1.6 GHz power.
        let (t0, w0) = report.power_timeline[0];
        assert_eq!(t0, 0.0);
        assert!((w0 - 3.375 / 0.625).abs() < 1e-9);
        // Last point: completion back to 0 W.
        let (_, wlast) = *report.power_timeline.last().unwrap();
        assert_eq!(wlast, 0.0);
    }

    #[test]
    fn switch_latency_stalls_execution() {
        // Same Switcher scenario as mid_task_rate_change_is_honored, but
        // with a 10 ms transition latency: the completion shifts by
        // exactly that stall.
        struct Switcher;
        impl Policy for Switcher {
            fn name(&self) -> String {
                "switcher".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                if task.id == TaskId(1) {
                    sim.dispatch(0, task.id, Some(0));
                } else {
                    sim.set_rate(0, 4);
                }
            }
            fn on_completion(&mut self, sim: &mut dyn ExecutorView, _c: CoreId, task: &Task) {
                if task.id == TaskId(1) {
                    sim.dispatch(0, TaskId(2), None);
                }
            }
        }
        let cfg = SimConfig::new(single_core_platform()).with_switch_latency(0.010);
        let mut sim = Simulator::new(cfg);
        let t1 = Task::batch(1, 3_200_000_000).unwrap();
        let t2 = Task::online(2, 1_000, 1.0, None, TaskClass::Batch).unwrap();
        sim.add_tasks(&[t1, t2]);
        let report = sim.run(&mut Switcher);
        let done1 = report.tasks[&TaskId(1)].completion.unwrap();
        // Without latency: 1.0 + 0.528 (see the sibling test); the
        // 10 ms stall adds exactly on top.
        assert!((done1 - (1.0 + 0.010 + 0.528)).abs() < 1e-6, "got {done1}");
        // Energy includes the stall at the new rate's active power.
        let p_slow = 3.375e-9 / 0.625e-9;
        let p_fast = 7.1e-9 / 0.33e-9;
        let expect = p_slow * 1.0 + p_fast * (0.528 + 0.010);
        let e1 = report.tasks[&TaskId(1)].energy_joules;
        assert!(
            (e1 - expect).abs() / expect < 1e-6,
            "energy {e1} vs {expect}"
        );
    }

    #[test]
    fn zero_latency_dispatch_rate_change_costs_nothing() {
        let cfg = SimConfig::new(single_core_platform()).with_switch_latency(0.0);
        let mut sim = Simulator::new(cfg);
        sim.add_tasks(&[Task::batch(1, 3_000_000_000).unwrap()]);
        let report = sim.run(&mut Fifo::new(4)); // dispatch switches 0 → 4
        assert!((report.makespan - 3.0e9 * 0.33e-9).abs() < 1e-9);
    }

    #[test]
    fn dispatch_rate_change_also_stalls() {
        let cfg = SimConfig::new(single_core_platform()).with_switch_latency(0.025);
        let mut sim = Simulator::new(cfg);
        sim.add_tasks(&[Task::batch(1, 3_000_000_000).unwrap()]);
        let report = sim.run(&mut Fifo::new(4));
        assert!(
            (report.makespan - (0.025 + 3.0e9 * 0.33e-9)).abs() < 1e-9,
            "got {}",
            report.makespan
        );
    }

    #[test]
    fn event_log_records_lifecycle() {
        let cfg = SimConfig::new(single_core_platform()).with_event_log();
        let mut sim = Simulator::new(cfg);
        sim.add_tasks(&[
            Task::batch(1, 1_600_000_000).unwrap(),
            Task::batch(2, 1_600_000_000).unwrap(),
        ]);
        let report = sim.run(&mut Fifo::new(2));
        let log = &report.event_log;
        assert!(!log.is_empty());
        use crate::LogEvent;
        let count =
            |pred: fn(&LogEvent) -> bool| log.entries.iter().filter(|e| pred(&e.event)).count();
        assert_eq!(count(|e| matches!(e, LogEvent::Arrival { .. })), 2);
        assert_eq!(count(|e| matches!(e, LogEvent::Dispatch { .. })), 2);
        assert_eq!(count(|e| matches!(e, LogEvent::Completion { .. })), 2);
        assert_eq!(
            log.rate_changes(),
            0,
            "dispatch-time rate selection is logged as the dispatch itself"
        );
        // Per-task view has arrival -> dispatch -> completion in order.
        let t1: Vec<_> = log.for_task(TaskId(1)).collect();
        assert_eq!(t1.len(), 3);
        assert!(t1.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn event_log_off_by_default() {
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        sim.add_tasks(&[Task::batch(1, 100_000).unwrap()]);
        let report = sim.run(&mut Fifo::new(0));
        assert!(report.event_log.is_empty());
    }

    #[test]
    #[should_panic(expected = "above allowed cap")]
    fn set_rate_above_cap_panics() {
        struct Overclocker;
        impl Policy for Overclocker {
            fn name(&self) -> String {
                "overclocker".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                sim.dispatch(0, task.id, Some(2));
                sim.set_rate(0, 4); // cap is 2
            }
            fn on_completion(&mut self, _s: &mut dyn ExecutorView, _c: CoreId, _t: &Task) {}
        }
        let cfg = SimConfig::new(single_core_platform()).with_rate_cap(2);
        let mut sim = Simulator::new(cfg);
        sim.add_tasks(&[Task::batch(1, 1_000_000).unwrap()]);
        sim.run(&mut Overclocker);
    }

    #[test]
    #[should_panic(expected = "preempt on an idle core")]
    fn preempt_idle_core_panics() {
        struct BadPreemptor;
        impl Policy for BadPreemptor {
            fn name(&self) -> String {
                "bad".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                let _ = sim.preempt(0);
                sim.dispatch(0, task.id, None);
            }
            fn on_completion(&mut self, _s: &mut dyn ExecutorView, _c: CoreId, _t: &Task) {}
        }
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        sim.add_tasks(&[Task::batch(1, 1_000_000).unwrap()]);
        sim.run(&mut BadPreemptor);
    }

    #[test]
    fn contention_and_switch_latency_compose() {
        // Both features on at once: a 2-core platform, two tasks, one
        // rate switch each; timings must include both effects without
        // the accounting drifting.
        struct PerCore;
        impl Policy for PerCore {
            fn name(&self) -> String {
                "per-core".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                let core = task.id.0 as usize;
                sim.dispatch(core, task.id, Some(4));
            }
            fn on_completion(&mut self, _s: &mut dyn ExecutorView, _c: CoreId, _t: &Task) {}
        }
        let platform =
            Platform::homogeneous(2, dvfs_model::CoreSpec::new(RateTable::i7_950_table2()))
                .unwrap();
        let cfg = SimConfig::new(platform)
            .with_contention(Box::new(|busy| if busy <= 1 { 1.0 } else { 0.5 }))
            .with_switch_latency(0.1);
        let mut sim = Simulator::new(cfg);
        sim.add_tasks(&[
            Task::batch(0, 3_000_000_000).unwrap(),
            Task::batch(1, 3_000_000_000).unwrap(),
        ]);
        let report = sim.run(&mut PerCore);
        assert_eq!(report.completed(), 2);
        // Each task: 0.1 s stall + 0.99 s of work at half speed while
        // both run. Both dispatched at t=0, both stalled to 0.1, then
        // run together at factor 0.5: 0.99/0.5 = 1.98 s → finish ~2.08.
        assert!(
            (report.makespan - 2.08).abs() < 1e-6,
            "makespan {}",
            report.makespan
        );
        // Energy conservation still holds.
        let task_energy: f64 = report.tasks.values().map(|t| t.energy_joules).sum();
        assert!((task_energy - report.active_energy_joules).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "failed to dispatch")]
    fn undelivered_tasks_panic() {
        struct Lazy;
        impl Policy for Lazy {
            fn name(&self) -> String {
                "lazy".into()
            }
            fn on_arrival(&mut self, _s: &mut dyn ExecutorView, _t: &Task) {}
            fn on_completion(&mut self, _s: &mut dyn ExecutorView, _c: CoreId, _t: &Task) {}
        }
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        sim.add_tasks(&[Task::batch(1, 100).unwrap()]);
        sim.run(&mut Lazy);
    }

    #[test]
    fn incremental_stepping_matches_batch_run() {
        // Batch reference: both tasks known upfront.
        let mut batch = Simulator::new(SimConfig::new(single_core_platform()));
        batch.add_tasks(&[
            Task::batch(1, 1_600_000_000).unwrap(),
            Task::batch(2, 1_600_000_000).unwrap(),
        ]);
        let want = batch.run(&mut Fifo::new(0));

        // Incremental: push the same tasks mid-run, step in small
        // slices, then drain.
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        let mut policy = Fifo::new(0);
        sim.push_task(&Task::batch(1, 1_600_000_000).unwrap());
        sim.step_until(&mut policy, 0.5);
        assert_eq!(sim.pending_tasks(), 1);
        assert!(sim.take_completions().is_empty());
        sim.push_task(&Task::batch(2, 1_600_000_000).unwrap());
        sim.step_until(&mut policy, 1.5);
        let first = sim.take_completions();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].id, TaskId(1));
        assert!((first[0].completion.unwrap() - 1.0).abs() < 1e-9);
        let got = sim.run(&mut policy);
        assert!((got.makespan - want.makespan).abs() < 1e-9);
        assert!((got.active_energy_joules - want.active_energy_joules).abs() < 1e-9);
        for (id, rec) in &want.tasks {
            let g = got.tasks[id];
            assert!((g.completion.unwrap() - rec.completion.unwrap()).abs() < 1e-9);
            assert!((g.energy_joules - rec.energy_joules).abs() < 1e-9);
        }
    }

    #[test]
    fn step_until_advances_clock_when_idle() {
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        let mut policy = Fifo::new(0);
        sim.step_until(&mut policy, 2.5);
        assert!((sim.now() - 2.5).abs() < 1e-12);
        assert_eq!(sim.pending_tasks(), 0);
        // A task pushed after idle time arrives at the current clock.
        sim.push_task(&Task::batch(1, 1_600_000_000).unwrap());
        sim.step_until(&mut policy, 4.0);
        let done = sim.take_completions();
        assert_eq!(done.len(), 1);
        assert!((done[0].completion.unwrap() - 3.5).abs() < 1e-9);
        assert!((done[0].arrival - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate task id")]
    fn push_task_rejects_duplicate_ids() {
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        sim.push_task(&Task::batch(1, 100).unwrap());
        sim.push_task(&Task::batch(1, 100).unwrap());
    }

    #[test]
    #[should_panic(expected = "dispatch onto busy core")]
    fn double_dispatch_panics() {
        struct Doubler;
        impl Policy for Doubler {
            fn name(&self) -> String {
                "doubler".into()
            }
            fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
                sim.dispatch(0, task.id, Some(0));
            }
            fn on_completion(&mut self, _s: &mut dyn ExecutorView, _c: CoreId, _t: &Task) {}
        }
        let mut sim = Simulator::new(SimConfig::new(single_core_platform()));
        sim.add_tasks(&[
            Task::batch(1, 1_600_000_000).unwrap(),
            Task::batch(2, 1_600_000_000).unwrap(),
        ]);
        sim.run(&mut Doubler);
    }
}
