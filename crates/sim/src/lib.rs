//! # dvfs-sim
//!
//! An event-driven multi-core simulator with **per-core DVFS**, built as
//! the experimental substrate for the ICPP 2014 scheduler reproduction.
//! The paper evaluates on a quad-core Intel i7-950 with individually
//! tunable core frequencies; this crate substitutes that testbed with a
//! simulator implementing the same execution model:
//!
//! * each core runs at one of its discrete rates `p ∈ P`, executing
//!   `p` cycles per second and drawing `E(p)/T(p)` watts while busy;
//! * a [`Policy`] — the engine-agnostic `dvfs_core::sched::Scheduler`
//!   trait — decides task placement, ordering, preemption, and per-core
//!   frequency through the abstract `ExecutorView`, which [`SimView`]
//!   implements here (the paper's schedulers and baselines are written
//!   against the trait and also run on the wall-clock executor in
//!   `dvfs-serve`);
//! * frequency *governors* (Linux `ondemand`-style) can own a core's
//!   frequency instead of the policy, for the baseline comparisons;
//! * an optional **contention model** dilates execution when several
//!   cores are busy, reproducing the sim-vs-experiment gap of Fig. 1;
//! * the engine records per-task metrics, active/idle energy, and a
//!   platform power timeline that `dvfs-power` can "measure" the way the
//!   paper's DW-6091 power meter does.
//!
//! ## Execution semantics
//!
//! Progress is tracked in continuous cycles: a core at frequency `f` with
//! contention factor `s ∈ (0, 1]` completes `f·s` cycles of the running
//! task per second. Completion events carry a per-core *epoch*; any
//! mutation (dispatch, preemption, rate change, contention change)
//! invalidates outstanding completions by bumping the epoch, so stale
//! events are discarded when popped.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod engine;
pub mod event;
pub mod eventlog;
pub mod governor;
pub mod metrics;

pub use analysis::{gantt, queue_depth_series, GanttSegment};
pub use engine::{SimConfig, SimView, Simulator};
pub use eventlog::{EventLog, LogEntry, LogEvent};
pub use governor::GovernorKind;
pub use metrics::{SimReport, TaskRecord};

/// The engine-agnostic policy trait this executor drives. An alias for
/// [`dvfs_core::sched::Scheduler`]; the former `dvfs_sim::{plan,
/// policy}` re-export modules are gone — import `BatchPlan` from
/// `dvfs_model` and `PlanPolicy`/`ExecutorView` from `dvfs_core`.
pub use dvfs_core::sched::Scheduler as Policy;
