//! The scheduling-policy interface.

use crate::engine::SimView;
use dvfs_model::{CoreId, Task};

/// A scheduling policy plugged into the simulator.
///
/// The simulator owns time, task progress, energy accounting, and
/// frequency governors; the policy owns *decisions*: where tasks go, in
/// what order they run, when to preempt, and (on `userspace` cores) at
/// which rate to run. Policies keep their own queues and dispatch work
/// through the [`SimView`] passed to each hook.
pub trait Policy {
    /// Human-readable policy name used in reports.
    fn name(&self) -> String;

    /// A task arrived at the current simulation time.
    fn on_arrival(&mut self, sim: &mut SimView<'_>, task: &Task);

    /// The task that was running on `core` completed.
    fn on_completion(&mut self, sim: &mut SimView<'_>, core: CoreId, task: &Task);

    /// A governor tick fired on `core` (after the governor adjusted the
    /// rate). Most policies ignore this.
    fn on_tick(&mut self, _sim: &mut SimView<'_>, _core: CoreId) {}
}
