//! The scheduling-policy interface — now a re-export.
//!
//! The hooks formerly defined here moved to `dvfs_core::sched` as the
//! engine-agnostic [`Scheduler`](dvfs_core::sched::Scheduler) trait over
//! [`ExecutorView`]; the simulator is
//! one executor implementing that view (see
//! [`SimView`](crate::engine::SimView)). `Policy` remains as an alias so
//! simulator-facing code keeps reading naturally.

pub use dvfs_core::sched::ExecutorView;
pub use dvfs_core::sched::Scheduler as Policy;
