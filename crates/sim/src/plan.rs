//! Executing a precomputed batch plan.
//!
//! Batch-mode schedulers (WBG, the batch baselines) produce a *plan*: for
//! each core, an execution sequence of `(task, rate)` pairs. The paper
//! executes such plans on the real machine; [`PlanPolicy`] replays one on
//! the simulator, dispatching each core's sequence in order at the
//! planned frequencies.

use crate::engine::SimView;
use crate::policy::Policy;
use dvfs_model::{CoreId, RateIdx, Task, TaskId};

/// A batch execution plan: per-core ordered `(task, rate)` sequences.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchPlan {
    /// `per_core[j]` is the execution order on core `j` with the rate
    /// each task runs at (rates are indices into core `j`'s table).
    pub per_core: Vec<Vec<(TaskId, RateIdx)>>,
}

impl BatchPlan {
    /// Plan with `n` empty core sequences.
    #[must_use]
    pub fn empty(n_cores: usize) -> Self {
        BatchPlan {
            per_core: vec![Vec::new(); n_cores],
        }
    }

    /// Total number of planned task placements.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// Iterate all `(core, position, task, rate)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (CoreId, usize, TaskId, RateIdx)> + '_ {
        self.per_core.iter().enumerate().flat_map(|(j, seq)| {
            seq.iter()
                .enumerate()
                .map(move |(pos, &(t, r))| (j, pos, t, r))
        })
    }
}

/// Replays a [`BatchPlan`]: every task is assumed to have arrived by
/// t = 0 (batch mode); each core starts its sequence immediately and
/// dispatches the next task on completion.
#[derive(Debug)]
pub struct PlanPolicy {
    plan: BatchPlan,
    cursor: Vec<usize>,
    arrived: usize,
    expected: usize,
}

impl PlanPolicy {
    /// Build a policy that replays `plan`.
    #[must_use]
    pub fn new(plan: BatchPlan) -> Self {
        let n = plan.per_core.len();
        let expected = plan.num_tasks();
        PlanPolicy {
            plan,
            cursor: vec![0; n],
            arrived: 0,
            expected,
        }
    }

    fn dispatch_next(&mut self, sim: &mut SimView<'_>, core: CoreId) {
        let pos = self.cursor[core];
        if let Some(&(task, rate)) = self.plan.per_core[core].get(pos) {
            self.cursor[core] += 1;
            sim.dispatch(core, task, Some(rate));
        }
    }
}

impl Policy for PlanPolicy {
    fn name(&self) -> String {
        "batch-plan".into()
    }

    fn on_arrival(&mut self, sim: &mut SimView<'_>, _task: &Task) {
        self.arrived += 1;
        // Batch semantics: all tasks arrive at t = 0; once the last
        // arrival lands, kick every core's sequence off.
        if self.arrived == self.expected {
            for core in 0..sim.num_cores() {
                if sim.is_idle(core) {
                    self.dispatch_next(sim, core);
                }
            }
        }
    }

    fn on_completion(&mut self, sim: &mut SimView<'_>, core: CoreId, _task: &Task) {
        self.dispatch_next(sim, core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use dvfs_model::{CoreSpec, Platform, RateTable};

    #[test]
    fn plan_replays_in_order_at_planned_rates() {
        let platform = Platform::homogeneous(2, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        let tasks = vec![
            Task::batch(0, 1_600_000_000).unwrap(), // 1 s @1.6GHz
            Task::batch(1, 3_000_000_000).unwrap(), // 0.99 s @3GHz (0.33ns/c)
            Task::batch(2, 1_600_000_000).unwrap(),
        ];
        let plan = BatchPlan {
            per_core: vec![vec![(TaskId(0), 0), (TaskId(2), 0)], vec![(TaskId(1), 4)]],
        };
        assert_eq!(plan.num_tasks(), 3);
        assert_eq!(plan.entries().count(), 3);
        let mut sim = Simulator::new(SimConfig::new(platform));
        sim.add_tasks(&tasks);
        let report = sim.run(&mut PlanPolicy::new(plan));
        let c0 = report.tasks[&TaskId(0)].completion.unwrap();
        let c1 = report.tasks[&TaskId(1)].completion.unwrap();
        let c2 = report.tasks[&TaskId(2)].completion.unwrap();
        assert!((c0 - 1.0).abs() < 1e-9);
        assert!((c1 - 3.0e9 * 0.33e-9).abs() < 1e-9);
        assert!((c2 - 2.0).abs() < 1e-9, "task 2 queued behind task 0");
    }

    #[test]
    fn empty_core_sequences_are_fine() {
        let platform = Platform::homogeneous(4, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        let tasks = vec![Task::batch(0, 1_000_000).unwrap()];
        let mut plan = BatchPlan::empty(4);
        plan.per_core[2].push((TaskId(0), 1));
        let mut sim = Simulator::new(SimConfig::new(platform));
        sim.add_tasks(&tasks);
        let report = sim.run(&mut PlanPolicy::new(plan));
        assert_eq!(report.completed(), 1);
    }
}
