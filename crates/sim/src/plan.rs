//! Batch-plan types — now re-exports.
//!
//! Deprecated location, kept for one release: [`BatchPlan`] moved to
//! `dvfs_model::plan` (plans are pure model artifacts produced by
//! `dvfs-core` and replayable by any executor), and [`PlanPolicy`] moved
//! to `dvfs_core::sched` alongside the engine-agnostic scheduler traits.
//! Import from those crates directly in new code.

pub use dvfs_core::sched::PlanPolicy;
pub use dvfs_model::BatchPlan;
