//! Offline analysis of a recorded [`EventLog`].
//!
//! Reconstructs what actually happened on the platform from the decision
//! log alone: per-core Gantt segments (who ran where, when, at which
//! rate) and the waiting-queue depth over time. Both are the raw
//! material for plotting and for sanity cross-checks against the
//! engine's own accounting (the tests do exactly that).

use crate::eventlog::{EventLog, LogEvent};
use dvfs_model::{CoreId, RateIdx, TaskId};
use serde::{Deserialize, Serialize};

/// One contiguous execution interval of a task on a core at a rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GanttSegment {
    /// Core index.
    pub core: CoreId,
    /// Task executing.
    pub task: TaskId,
    /// Segment start time.
    pub start: f64,
    /// Segment end time.
    pub end: f64,
    /// Rate index during the segment.
    pub rate: RateIdx,
}

impl GanttSegment {
    /// Segment length in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Reconstruct per-core Gantt segments from a decision log. A segment
/// closes on preemption, completion, or a rate change (the latter opens
/// a new segment for the same task at the new rate).
///
/// # Panics
/// Panics on a malformed log (e.g. completion on an idle core), which
/// cannot be produced by the engine.
#[must_use]
pub fn gantt(log: &EventLog) -> Vec<GanttSegment> {
    #[derive(Clone, Copy)]
    struct Open {
        task: TaskId,
        since: f64,
        rate: RateIdx,
    }
    let ncores = log
        .entries
        .iter()
        .filter_map(|e| match e.event {
            LogEvent::Dispatch { core, .. }
            | LogEvent::Preempt { core, .. }
            | LogEvent::RateChange { core, .. }
            | LogEvent::Completion { core, .. } => Some(core + 1),
            LogEvent::Arrival { .. } => None,
        })
        .max()
        .unwrap_or(0);
    let mut open: Vec<Option<Open>> = vec![None; ncores];
    let mut out = Vec::new();
    for e in &log.entries {
        match e.event {
            LogEvent::Arrival { .. } => {}
            LogEvent::Dispatch { core, task, rate } => {
                assert!(open[core].is_none(), "dispatch on a busy core in the log");
                open[core] = Some(Open {
                    task,
                    since: e.time,
                    rate,
                });
            }
            LogEvent::Preempt { core, task } | LogEvent::Completion { core, task } => {
                let o = open[core].take().expect("stop event on an idle core");
                debug_assert_eq!(o.task, task);
                if e.time > o.since {
                    out.push(GanttSegment {
                        core,
                        task: o.task,
                        start: o.since,
                        end: e.time,
                        rate: o.rate,
                    });
                }
            }
            LogEvent::RateChange { core, to, .. } => {
                // Only splits a segment when the core is busy; idle-core
                // rate changes just set the rate for the next dispatch
                // (the dispatch logs it).
                if let Some(o) = open[core].take() {
                    if e.time > o.since {
                        out.push(GanttSegment {
                            core,
                            task: o.task,
                            start: o.since,
                            end: e.time,
                            rate: o.rate,
                        });
                    }
                    open[core] = Some(Open {
                        task: o.task,
                        since: e.time,
                        rate: to,
                    });
                }
            }
        }
    }
    out
}

/// Waiting-queue depth over time: `(time, tasks arrived but neither
/// running nor finished)`. One point per change.
#[must_use]
pub fn queue_depth_series(log: &EventLog) -> Vec<(f64, usize)> {
    let mut depth: i64 = 0;
    let mut out: Vec<(f64, usize)> = Vec::new();
    for e in &log.entries {
        match e.event {
            LogEvent::Arrival { .. } | LogEvent::Preempt { .. } => depth += 1,
            LogEvent::Dispatch { .. } => depth -= 1,
            LogEvent::Completion { .. } | LogEvent::RateChange { .. } => continue,
        }
        debug_assert!(depth >= 0, "queue depth went negative");
        match out.last_mut() {
            Some(last) if last.0 == e.time => last.1 = depth as usize,
            _ => out.push((e.time, depth as usize)),
        }
    }
    out
}

/// Write Gantt segments as CSV (`core,task,start,end,rate`).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_gantt_csv<W: std::io::Write>(
    mut w: W,
    segments: &[GanttSegment],
) -> std::io::Result<()> {
    writeln!(w, "core,task,start,end,rate")?;
    for s in segments {
        writeln!(
            w,
            "{},{},{},{},{}",
            s.core, s.task.0, s.start, s.end, s.rate
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use dvfs_core::sched::{ExecutorView, Scheduler as Policy};
    use dvfs_model::{CoreSpec, Platform, RateTable, Task};

    struct Fifo {
        rate: RateIdx,
        queue: std::collections::VecDeque<TaskId>,
    }
    impl Policy for Fifo {
        fn name(&self) -> String {
            "fifo".into()
        }
        fn on_arrival(&mut self, sim: &mut dyn ExecutorView, task: &Task) {
            self.queue.push_back(task.id);
            if sim.is_idle(0) {
                let t = self.queue.pop_front().expect("just pushed");
                sim.dispatch(0, t, Some(self.rate));
            }
        }
        fn on_completion(&mut self, sim: &mut dyn ExecutorView, _c: CoreId, _t: &Task) {
            if let Some(t) = self.queue.pop_front() {
                sim.dispatch(0, t, Some(self.rate));
            }
        }
    }

    fn run_logged(tasks: &[Task]) -> crate::SimReport {
        let platform = Platform::homogeneous(1, CoreSpec::new(RateTable::i7_950_table2())).unwrap();
        let mut sim = Simulator::new(SimConfig::new(platform).with_event_log());
        sim.add_tasks(tasks);
        sim.run(&mut Fifo {
            rate: 0,
            queue: Default::default(),
        })
    }

    #[test]
    fn gantt_reconstructs_fifo_run() {
        let tasks = vec![
            Task::batch(1, 1_600_000_000).unwrap(), // 1 s
            Task::batch(2, 3_200_000_000).unwrap(), // 2 s
        ];
        let report = run_logged(&tasks);
        let segs = gantt(&report.event_log);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].task, TaskId(1));
        assert!((segs[0].start - 0.0).abs() < 1e-12);
        assert!((segs[0].end - 1.0).abs() < 1e-9);
        assert_eq!(segs[1].task, TaskId(2));
        assert!((segs[1].end - 3.0).abs() < 1e-9);
        // Per-core segments never overlap.
        assert!(segs[0].end <= segs[1].start + 1e-12);
    }

    #[test]
    fn gantt_durations_sum_to_core_busy() {
        let tasks: Vec<Task> = (0..7)
            .map(|i| Task::batch(i, (i + 1) * 300_000_000).unwrap())
            .collect();
        let report = run_logged(&tasks);
        let segs = gantt(&report.event_log);
        let gantt_busy: f64 = segs.iter().map(GanttSegment::duration).sum();
        assert!(
            (gantt_busy - report.core_busy[0]).abs() < 1e-6,
            "gantt {gantt_busy} vs engine {}",
            report.core_busy[0]
        );
    }

    #[test]
    fn queue_depth_tracks_backlog() {
        // Two tasks arrive together; one runs, one waits, then drains.
        let tasks = vec![
            Task::batch(1, 1_600_000_000).unwrap(),
            Task::batch(2, 1_600_000_000).unwrap(),
        ];
        let report = run_logged(&tasks);
        let series = queue_depth_series(&report.event_log);
        let max_depth = series.iter().map(|&(_, d)| d).max().unwrap();
        assert_eq!(max_depth, 1, "one task waits while the first runs");
        assert_eq!(series.last().unwrap().1, 0, "backlog drains");
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let tasks = vec![Task::batch(1, 100_000).unwrap()];
        let report = run_logged(&tasks);
        let segs = gantt(&report.event_log);
        let mut buf = Vec::new();
        write_gantt_csv(&mut buf, &segs).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("core,task,start,end,rate"));
        assert_eq!(lines.count(), segs.len());
    }

    #[test]
    fn empty_log_yields_empty_outputs() {
        let log = EventLog::default();
        assert!(gantt(&log).is_empty());
        assert!(queue_depth_series(&log).is_empty());
    }
}
