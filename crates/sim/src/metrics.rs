//! Per-task and platform-level measurement collected by the simulator.

use dvfs_model::{CostBreakdown, CostParams, TaskClass, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

// The per-task lifecycle record moved to `dvfs_model::record` so every
// executor (this simulator, the wall-clock service) shares one type;
// re-exported here for compatibility.
pub use dvfs_model::TaskRecord;

/// The full outcome of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the policy that produced this run.
    pub policy: String,
    /// Per-task records keyed by task id (ordered, so every aggregate
    /// below sums in deterministic order).
    pub tasks: BTreeMap<TaskId, TaskRecord>,
    /// Total active energy in joules (integral of busy power).
    pub active_energy_joules: f64,
    /// Total idle energy in joules over the simulated span
    /// (idle power × idle time, summed over cores).
    pub idle_energy_joules: f64,
    /// Time the last task completed (makespan measured from t = 0).
    pub makespan: f64,
    /// Platform power timeline: `(time, total active watts)` step
    /// function, one point per change. Feed this to `dvfs-power`'s meter
    /// to "measure" energy the way the paper does.
    pub power_timeline: Vec<(f64, f64)>,
    /// Per-core busy seconds.
    pub core_busy: Vec<f64>,
    /// `rate_residency[j][r]`: seconds core `j` spent *busy* at rate `r`.
    pub rate_residency: Vec<Vec<f64>>,
    /// The decision log (empty unless `SimConfig::with_event_log`).
    pub event_log: crate::EventLog,
}

impl SimReport {
    /// Sum of turnaround times over completed tasks (the paper's temporal
    /// objective in the online mode, and completion-time sum in batch
    /// mode since batch arrivals are 0).
    #[must_use]
    pub fn total_turnaround(&self) -> f64 {
        self.tasks.values().filter_map(TaskRecord::turnaround).sum()
    }

    /// Number of completed tasks.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.tasks
            .values()
            .filter(|t| t.completion.is_some())
            .count()
    }

    /// Monetary cost breakdown with the given parameters, using active
    /// (idle-subtracted) energy like the paper's methodology.
    #[must_use]
    pub fn cost(&self, params: CostParams) -> CostBreakdown {
        CostBreakdown::from_totals(params, self.active_energy_joules, self.total_turnaround())
    }

    /// Mean turnaround of tasks in `class`, or `None` when none finished.
    #[must_use]
    pub fn mean_turnaround(&self, class: TaskClass) -> Option<f64> {
        let (sum, n) = self
            .tasks
            .values()
            .filter(|t| t.class == class)
            .filter_map(TaskRecord::turnaround)
            .fold((0.0, 0usize), |(s, n), t| (s + t, n + 1));
        (n > 0).then(|| sum / n as f64)
    }

    /// Largest observed turnaround of tasks in `class`.
    #[must_use]
    pub fn max_turnaround(&self, class: TaskClass) -> Option<f64> {
        self.tasks
            .values()
            .filter(|t| t.class == class)
            .filter_map(TaskRecord::turnaround)
            .max_by(|a, b| a.partial_cmp(b).expect("turnarounds are finite"))
    }

    /// Number of tasks that finished after their deadline (or never
    /// finished while having one). `deadlines` maps task id → absolute
    /// deadline; tasks without deadlines never count as missed.
    #[must_use]
    pub fn deadline_misses<'a>(
        &self,
        deadlines: impl IntoIterator<Item = (&'a TaskId, &'a f64)>,
    ) -> usize {
        deadlines
            .into_iter()
            .filter(|(id, &d)| match self.tasks.get(id) {
                Some(rec) => rec.completion.is_none_or(|c| c > d),
                None => false,
            })
            .count()
    }

    /// Fraction of busy time core `j` spent at each rate, or `None` for
    /// an always-idle core.
    #[must_use]
    pub fn residency_fractions(&self, j: usize) -> Option<Vec<f64>> {
        let total: f64 = self.rate_residency[j].iter().sum();
        (total > 0.0).then(|| self.rate_residency[j].iter().map(|&t| t / total).collect())
    }

    /// Turnaround percentile (0–100, nearest-rank) of completed tasks in
    /// `class`, or `None` when none finished.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 100]`.
    #[must_use]
    pub fn turnaround_percentile(&self, class: TaskClass, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        let mut ts: Vec<f64> = self
            .tasks
            .values()
            .filter(|t| t.class == class)
            .filter_map(TaskRecord::turnaround)
            .collect();
        if ts.is_empty() {
            return None;
        }
        ts.sort_by(|a, b| a.partial_cmp(b).expect("finite turnarounds"));
        let rank = ((p / 100.0) * ts.len() as f64).ceil() as usize;
        Some(ts[rank.clamp(1, ts.len()) - 1])
    }

    /// Total platform energy including idle draw: the raw quantity a
    /// wall power meter reports before the paper's idle subtraction.
    #[must_use]
    pub fn wall_energy_joules(&self) -> f64 {
        self.active_energy_joules + self.idle_energy_joules
    }

    /// Cost breakdown charging the *wall* energy (idle included) instead
    /// of the paper's idle-subtracted active energy — the "does WBG
    /// still win when stretching the makespan burns idle power?"
    /// accounting.
    #[must_use]
    pub fn wall_cost(&self, params: CostParams) -> CostBreakdown {
        CostBreakdown::from_totals(params, self.wall_energy_joules(), self.total_turnaround())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, class: TaskClass, arrival: f64, completion: Option<f64>) -> TaskRecord {
        TaskRecord {
            id: TaskId(id),
            class,
            cycles: 100,
            arrival,
            first_start: Some(arrival),
            completion,
            energy_joules: 1.0,
            preemptions: 0,
        }
    }

    fn report(records: Vec<TaskRecord>) -> SimReport {
        SimReport {
            policy: "test".into(),
            tasks: records.into_iter().map(|r| (r.id, r)).collect(),
            active_energy_joules: 10.0,
            idle_energy_joules: 2.0,
            makespan: 5.0,
            power_timeline: vec![],
            core_busy: vec![5.0],
            rate_residency: vec![vec![2.0, 3.0]],
            event_log: crate::EventLog::default(),
        }
    }

    #[test]
    fn turnaround_and_totals() {
        let r = report(vec![
            record(1, TaskClass::Interactive, 1.0, Some(2.0)),
            record(2, TaskClass::NonInteractive, 0.0, Some(4.0)),
            record(3, TaskClass::NonInteractive, 2.0, None),
        ]);
        assert_eq!(r.completed(), 2);
        assert!((r.total_turnaround() - 5.0).abs() < 1e-12);
        assert_eq!(
            r.mean_turnaround(TaskClass::Interactive),
            Some(1.0),
            "only completed tasks count"
        );
        assert_eq!(r.mean_turnaround(TaskClass::NonInteractive), Some(4.0));
        assert_eq!(r.mean_turnaround(TaskClass::Batch), None);
        assert_eq!(r.max_turnaround(TaskClass::NonInteractive), Some(4.0));
    }

    #[test]
    fn cost_uses_active_energy_and_turnaround() {
        let r = report(vec![record(1, TaskClass::Batch, 0.0, Some(3.0))]);
        let c = r.cost(CostParams::new(2.0, 10.0).unwrap());
        assert!((c.energy_cost - 20.0).abs() < 1e-12);
        assert!((c.time_cost - 30.0).abs() < 1e-12);
        assert!((c.total() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn deadline_misses_counts_late_and_unfinished() {
        let r = report(vec![
            record(1, TaskClass::Interactive, 0.0, Some(2.0)), // meets 3.0
            record(2, TaskClass::Interactive, 0.0, Some(5.0)), // misses 4.0
            record(3, TaskClass::Interactive, 0.0, None),      // unfinished, misses
        ]);
        let deadlines: std::collections::BTreeMap<TaskId, f64> = [
            (TaskId(1), 3.0),
            (TaskId(2), 4.0),
            (TaskId(3), 10.0),
            (TaskId(99), 1.0), // unknown task: ignored
        ]
        .into_iter()
        .collect();
        assert_eq!(r.deadline_misses(&deadlines), 2);
        let empty: std::collections::BTreeMap<TaskId, f64> = Default::default();
        assert_eq!(r.deadline_misses(&empty), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let r = report(
            (1..=10)
                .map(|i| record(i, TaskClass::Interactive, 0.0, Some(i as f64)))
                .collect(),
        );
        let p = |x| r.turnaround_percentile(TaskClass::Interactive, x).unwrap();
        assert_eq!(p(100.0), 10.0);
        assert_eq!(p(50.0), 5.0);
        assert_eq!(p(95.0), 10.0);
        assert_eq!(p(10.0), 1.0);
        assert_eq!(p(0.0), 1.0);
        assert_eq!(r.turnaround_percentile(TaskClass::Batch, 50.0), None);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_out_of_range_panics() {
        let r = report(vec![record(1, TaskClass::Batch, 0.0, Some(1.0))]);
        let _ = r.turnaround_percentile(TaskClass::Batch, 101.0);
    }

    #[test]
    fn wall_cost_includes_idle_energy() {
        let r = report(vec![record(1, TaskClass::Batch, 0.0, Some(3.0))]);
        assert!((r.wall_energy_joules() - 12.0).abs() < 1e-12);
        let params = CostParams::new(1.0, 1.0).unwrap();
        assert!((r.wall_cost(params).energy_cost - 12.0).abs() < 1e-12);
        assert!((r.cost(params).energy_cost - 10.0).abs() < 1e-12);
    }

    #[test]
    fn residency_fractions_normalize() {
        let r = report(vec![record(1, TaskClass::Batch, 0.0, Some(1.0))]);
        let f = r.residency_fractions(0).unwrap();
        assert!((f[0] - 0.4).abs() < 1e-12);
        assert!((f[1] - 0.6).abs() < 1e-12);
        let mut idle = r.clone();
        idle.rate_residency = vec![vec![0.0, 0.0]];
        assert_eq!(idle.residency_fractions(0), None);
    }
}
