//! Simulation events and the time-ordered event queue.

use dvfs_model::{CoreId, TaskId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happened at an event timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The task running on `core` finished, provided the core's epoch
    /// still equals `epoch` when the event is popped.
    Completion {
        /// Core the completion belongs to.
        core: CoreId,
        /// Epoch stamp used to invalidate stale completions.
        epoch: u64,
    },
    /// Periodic governor evaluation for `core`.
    GovernorTick {
        /// Core whose governor fires.
        core: CoreId,
    },
    /// A task arrives in the system.
    Arrival {
        /// The arriving task.
        task: TaskId,
    },
}

impl EventKind {
    /// Priority among events at the same timestamp: completions free
    /// cores before governors re-evaluate load, and both precede new
    /// arrivals.
    fn class_order(&self) -> u8 {
        match self {
            EventKind::Completion { .. } => 0,
            EventKind::GovernorTick { .. } => 1,
            EventKind::Arrival { .. } => 2,
        }
    }
}

/// A timestamped event. Ordered by time, then kind class, then FIFO
/// sequence, so simulation replay is fully deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time in seconds.
    pub time: f64,
    /// Tie-break sequence number (insertion order).
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first. Times are finite by construction.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must be finite")
            .then_with(|| other.kind.class_order().cmp(&self.kind.class_order()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic min-queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute `time`.
    ///
    /// # Panics
    /// Panics when `time` is not finite.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite(), "cannot schedule an event at t={time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The earliest pending event, without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, EventKind::Arrival { task: TaskId(3) });
        q.push(1.0, EventKind::Arrival { task: TaskId(1) });
        q.push(2.0, EventKind::Arrival { task: TaskId(2) });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn same_time_completion_before_tick_before_arrival() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Arrival { task: TaskId(9) });
        q.push(1.0, EventKind::GovernorTick { core: 0 });
        q.push(1.0, EventKind::Completion { core: 0, epoch: 0 });
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Completion { .. }
        ));
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::GovernorTick { .. }
        ));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Arrival { .. }));
    }

    #[test]
    fn same_time_same_kind_is_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Arrival { task: TaskId(1) });
        q.push(1.0, EventKind::Arrival { task: TaskId(2) });
        q.push(1.0, EventKind::Arrival { task: TaskId(3) });
        let ids: Vec<TaskId> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival { task } => task,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![TaskId(1), TaskId(2), TaskId(3)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn rejects_nonfinite_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, EventKind::GovernorTick { core: 0 });
    }
}
