//! Frequency governors.
//!
//! The paper's baselines rely on Linux's frequency governors: `ondemand`
//! (Section V: "If a core's loading is higher than 85%, the frequency
//! governor increases the core's frequency to the largest available
//! selection. On the other hand, if the loading is lower than the
//! threshold, the frequency governor reduces the processing frequency by
//! one level. The loading of a core is measured every second."), and the
//! Power Saving mode which is `ondemand` restricted to the lower half of
//! the frequency range. `userspace` leaves the frequency entirely to the
//! scheduling policy, as the paper does for WBG/LMC.

use dvfs_model::RateIdx;
use serde::{Deserialize, Serialize};

/// Which entity owns a core's frequency and how it evolves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GovernorKind {
    /// The scheduling policy sets frequencies explicitly
    /// (`scaling_governor = userspace` in the paper's setup).
    Userspace,
    /// Always run at the highest allowed rate.
    Performance,
    /// Linux `ondemand` emulation: evaluated every `period_s`; load above
    /// `up_threshold` jumps to the highest allowed rate, otherwise the
    /// rate steps down one level.
    OnDemand {
        /// Load threshold in `[0, 1]` above which the governor jumps to
        /// the maximum rate (the paper uses 0.85).
        up_threshold: f64,
        /// Evaluation period in seconds (the paper uses 1 s).
        period_s: f64,
    },
    /// Linux `conservative` emulation: like `ondemand` but frequency
    /// moves one step at a time in both directions — up when load
    /// exceeds `up_threshold`, down when it falls below
    /// `down_threshold`, otherwise unchanged.
    Conservative {
        /// Load above this steps the rate up one level.
        up_threshold: f64,
        /// Load below this steps the rate down one level.
        down_threshold: f64,
        /// Evaluation period in seconds.
        period_s: f64,
    },
}

impl GovernorKind {
    /// The paper's on-demand configuration: 85% threshold, 1 s period.
    #[must_use]
    pub fn ondemand_paper() -> Self {
        GovernorKind::OnDemand {
            up_threshold: 0.85,
            period_s: 1.0,
        }
    }

    /// Linux defaults for the `conservative` governor: 80% up, 20% down,
    /// 1 s period.
    #[must_use]
    pub fn conservative_default() -> Self {
        GovernorKind::Conservative {
            up_threshold: 0.8,
            down_threshold: 0.2,
            period_s: 1.0,
        }
    }

    /// Whether this governor needs periodic tick events.
    #[must_use]
    pub fn needs_ticks(&self) -> bool {
        matches!(
            self,
            GovernorKind::OnDemand { .. } | GovernorKind::Conservative { .. }
        )
    }

    /// Evaluation period for tick-driven governors.
    #[must_use]
    pub fn period(&self) -> Option<f64> {
        match self {
            GovernorKind::OnDemand { period_s, .. }
            | GovernorKind::Conservative { period_s, .. } => Some(*period_s),
            _ => None,
        }
    }

    /// Next rate decision given the measured `load` over the last period,
    /// the current rate, and the highest allowed rate index.
    ///
    /// Only meaningful for [`GovernorKind::OnDemand`]; other kinds return
    /// the current rate (`Userspace`) or the cap (`Performance`).
    #[must_use]
    pub fn next_rate(&self, load: f64, current: RateIdx, max_allowed: RateIdx) -> RateIdx {
        match self {
            GovernorKind::Userspace => current.min(max_allowed),
            GovernorKind::Performance => max_allowed,
            GovernorKind::OnDemand { up_threshold, .. } => {
                if load > *up_threshold {
                    max_allowed
                } else {
                    current.min(max_allowed).saturating_sub(1)
                }
            }
            GovernorKind::Conservative {
                up_threshold,
                down_threshold,
                ..
            } => {
                let cur = current.min(max_allowed);
                if load > *up_threshold {
                    (cur + 1).min(max_allowed)
                } else if load < *down_threshold {
                    cur.saturating_sub(1)
                } else {
                    cur
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ondemand_jumps_to_max_on_high_load() {
        let g = GovernorKind::ondemand_paper();
        assert_eq!(g.next_rate(0.9, 1, 4), 4);
        assert_eq!(g.next_rate(1.0, 0, 4), 4);
    }

    #[test]
    fn ondemand_steps_down_on_low_load() {
        let g = GovernorKind::ondemand_paper();
        assert_eq!(g.next_rate(0.5, 3, 4), 2);
        assert_eq!(g.next_rate(0.0, 0, 4), 0, "cannot go below the floor");
        // Exactly at threshold is "not higher than", so step down.
        assert_eq!(g.next_rate(0.85, 2, 4), 1);
    }

    #[test]
    fn ondemand_respects_allowed_cap() {
        // Power Saving: ondemand capped at index 2 (2.4 GHz in Table II).
        let g = GovernorKind::ondemand_paper();
        assert_eq!(g.next_rate(0.95, 0, 2), 2);
        assert_eq!(g.next_rate(0.1, 4, 2), 1, "current above cap is clamped");
    }

    #[test]
    fn conservative_moves_one_step_at_a_time() {
        let g = GovernorKind::conservative_default();
        assert_eq!(g.next_rate(0.95, 1, 4), 2, "one step up, not a jump");
        assert_eq!(g.next_rate(0.95, 4, 4), 4, "capped at the top");
        assert_eq!(g.next_rate(0.1, 3, 4), 2, "one step down");
        assert_eq!(g.next_rate(0.1, 0, 4), 0, "floored at the bottom");
        assert_eq!(g.next_rate(0.5, 2, 4), 2, "dead band holds steady");
        assert_eq!(g.next_rate(0.95, 4, 2), 2, "cap clamps before stepping");
        assert!(g.needs_ticks());
        assert_eq!(g.period(), Some(1.0));
    }

    #[test]
    fn performance_pins_to_cap_and_userspace_keeps_current() {
        assert_eq!(GovernorKind::Performance.next_rate(0.0, 1, 4), 4);
        assert_eq!(GovernorKind::Userspace.next_rate(1.0, 1, 4), 1);
        assert!(!GovernorKind::Userspace.needs_ticks());
        assert!(GovernorKind::ondemand_paper().needs_ticks());
        assert_eq!(GovernorKind::ondemand_paper().period(), Some(1.0));
        assert_eq!(GovernorKind::Performance.period(), None);
    }
}
