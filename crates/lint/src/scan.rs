//! Source cleaning and waiver extraction.
//!
//! The rules in [`crate::rules`] are substring/token matchers, so before
//! they run the source is *cleaned*: comment bodies and string/char
//! literal contents are blanked to spaces (newlines preserved, so byte
//! offsets still map to the original line numbers), and test-only items
//! (`#[cfg(test)]` / `#[test]`) are masked out entirely. Waiver
//! directives (`// dvfs-lint: allow(rule-id) reason`) are collected
//! while stripping comments.

/// A parsed `// dvfs-lint: allow(rule-id) reason` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the directive sits on. A waiver covers violations
    /// on its own line and on the line directly below it.
    pub line: usize,
    /// Rule id being waived (e.g. `panic`).
    pub rule: String,
    /// Free-text justification. Required; an empty reason is itself a
    /// violation of the `waiver` rule.
    pub reason: String,
}

/// Output of [`clean`]: blanked source plus the waivers found in it.
#[derive(Debug)]
pub struct Cleaned {
    /// Source text with comments and literal contents replaced by
    /// spaces. Same length in lines as the input.
    pub text: String,
    /// Well-formed waivers (reason present).
    pub waivers: Vec<Waiver>,
    /// `(line, rule)` for `allow(...)` directives missing a reason.
    pub missing_reason: Vec<(usize, String)>,
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Number of `#` marks opening a raw string starting at `i` (the `r` of
/// `r"…"`/`r#"…"#`, or the `b` of `br"…"`), else `None`.
fn raw_string_hashes(bytes: &[u8], i: usize) -> Option<usize> {
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return None; // tail of a longer identifier like `var`
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1; // raw byte string `br"…"`; plain `b"…"` fails the `r` check
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

fn parse_waiver_comment(
    comment: &str,
    line: usize,
    waivers: &mut Vec<Waiver>,
    missing_reason: &mut Vec<(usize, String)>,
) {
    let Some(tag) = comment.find("dvfs-lint:") else {
        return;
    };
    let rest = &comment[tag + "dvfs-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return;
    };
    let after_open = &rest[open + "allow(".len()..];
    let Some(close) = after_open.find(')') else {
        missing_reason.push((line, String::new()));
        return;
    };
    let rule = after_open[..close].trim().to_string();
    let reason = after_open[close + 1..].trim().to_string();
    if rule.is_empty() || reason.is_empty() {
        missing_reason.push((line, rule));
    } else {
        waivers.push(Waiver { line, rule, reason });
    }
}

/// Blank comments and literal contents, preserving line structure, and
/// collect waiver directives from the stripped comments.
pub fn clean(src: &str) -> Cleaned {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut waivers = Vec::new();
    let mut missing_reason = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Push `n` spaces, or a newline for each newline byte in the range
    // we are skipping — keeps offsets-to-lines stable.
    let blank_through =
        |out: &mut Vec<u8>, bytes: &[u8], from: usize, to: usize, line: &mut usize| {
            for &b in &bytes[from..to] {
                if b == b'\n' {
                    out.push(b'\n');
                    *line += 1;
                } else {
                    out.push(b' ');
                }
            }
        };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                out.push(b'\n');
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                parse_waiver_comment(&src[start..i], line, &mut waivers, &mut missing_reason);
                blank_through(&mut out, bytes, start, i, &mut line);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank_through(&mut out, bytes, start, i, &mut line);
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out.push(b' ');
                            if bytes.get(i + 1) == Some(&b'\n') {
                                out.push(b'\n');
                                line += 1;
                            } else if i + 1 < bytes.len() {
                                out.push(b' ');
                            }
                            i += 2;
                        }
                        b'"' => {
                            out.push(b'"');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            line += 1;
                            i += 1;
                        }
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
            }
            b'r' | b'b' => {
                if let Some(hashes) = raw_string_hashes(bytes, i) {
                    // Find the closing `"` followed by `hashes` hashes.
                    let start = i;
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat_n(b'#', hashes))
                        .collect();
                    let body_at = src[i..].find('"').map_or(bytes.len(), |p| i + p + 1);
                    let end = src[body_at..]
                        .find(std::str::from_utf8(&closer).unwrap_or("\""))
                        .map_or(bytes.len(), |p| body_at + p + closer.len());
                    blank_through(&mut out, bytes, start, end, &mut line);
                    i = end;
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            b'\'' => {
                let next = bytes.get(i + 1).copied();
                if next == Some(b'\\') {
                    // Escaped char literal: blank to the closing quote.
                    let start = i;
                    let mut j = i + 3; // past `'\x`
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    let end = (j + 1).min(bytes.len());
                    blank_through(&mut out, bytes, start, end, &mut line);
                    i = end;
                } else if next.is_some_and(is_ident_byte) && bytes.get(i + 2) == Some(&b'\'') {
                    // Simple one-byte char literal `'x'`.
                    out.extend_from_slice(b"' '");
                    i += 3;
                } else {
                    // Lifetime, loop label, or multi-byte char literal;
                    // copy the quote and move on.
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }

    let text = String::from_utf8(out).unwrap_or_default();
    Cleaned {
        text,
        waivers,
        missing_reason,
    }
}

/// End offset (exclusive) of the item following an attribute that ends
/// at `from`: skips whitespace and further attributes, then consumes up
/// to the matching `}` of the item's body, or a `;`/`,` at zero depth
/// (unit items, struct fields, enum variants).
fn item_end(s: &str, from: usize) -> usize {
    let b = s.as_bytes();
    let mut i = from;
    loop {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < b.len() && b[i] == b'#' {
            while i < b.len() && b[i] != b'[' {
                i += 1;
            }
            let mut depth = 0i32;
            while i < b.len() {
                match b[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            break;
        }
    }
    let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
    while i < b.len() {
        match b[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'{' => brace += 1,
            b'}' => {
                brace -= 1;
                if brace == 0 && paren == 0 && bracket == 0 {
                    return i + 1;
                }
            }
            b';' | b',' if paren == 0 && bracket == 0 && brace == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Blank every `#[cfg(test)]` / `#[test]` item (mod, fn, field, …) in
/// already-cleaned text so the rules only see production code.
pub fn mask_tests(cleaned: &str) -> String {
    let mut v = cleaned.as_bytes().to_vec();
    while let Ok(text) = std::str::from_utf8(&v) {
        let cfg = text.find("#[cfg(test)]");
        let tst = text.find("#[test]");
        let (start, len) = match (cfg, tst) {
            (Some(a), Some(b)) if a <= b => (a, "#[cfg(test)]".len()),
            (Some(a), None) => (a, "#[cfg(test)]".len()),
            (_, Some(b)) => (b, "#[test]".len()),
            (None, None) => break,
        };
        let end = item_end(text, start + len);
        for byte in &mut v[start..end] {
            if *byte != b'\n' {
                *byte = b' ';
            }
        }
    }
    String::from_utf8(v).unwrap_or_default()
}

/// 1-based line number of byte `offset` in `text`.
pub fn line_of(text: &str, offset: usize) -> usize {
    1 + text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings_preserving_lines() {
        let src = "let a = \"HashMap\"; // HashMap here\nlet b = 1;\n";
        let c = clean(src);
        assert!(!c.text.contains("HashMap"));
        assert_eq!(c.text.lines().count(), src.lines().count());
        assert!(c.text.contains("let b = 1;"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let src = "let s = r#\"Instant::now()\"#;\nlet c = 'x';\nlet l: &'static str = \"\";\n";
        let c = clean(src);
        assert!(!c.text.contains("Instant"));
        assert!(!c.text.contains('x'));
        assert!(c.text.contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        let c = clean(src);
        assert!(!c.text.contains("outer"));
        assert!(c.text.contains("let x = 1;"));
    }

    #[test]
    fn waiver_with_reason_parses() {
        let src = "// dvfs-lint: allow(panic) statically unreachable arm\nfoo();\n";
        let c = clean(src);
        assert_eq!(c.waivers.len(), 1);
        assert_eq!(c.waivers[0].rule, "panic");
        assert_eq!(c.waivers[0].line, 1);
        assert_eq!(c.waivers[0].reason, "statically unreachable arm");
        assert!(c.missing_reason.is_empty());
    }

    #[test]
    fn waiver_without_reason_is_flagged() {
        let src = "fn f() {}\n// dvfs-lint: allow(determinism)\n";
        let c = clean(src);
        assert!(c.waivers.is_empty());
        assert_eq!(c.missing_reason, vec![(2, "determinism".to_string())]);
    }

    #[test]
    fn masks_cfg_test_mod_and_test_fn() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { y.unwrap(); }\n}\n#[test]\nfn t() { z.unwrap(); }\nfn prod2() {}\n";
        let masked = mask_tests(&clean(src).text);
        assert!(masked.contains("prod()"));
        assert!(masked.contains("prod2()"));
        assert!(!masked.contains("helper"));
        assert!(!masked.contains("fn t()"));
        assert_eq!(masked.matches("unwrap").count(), 1);
    }

    #[test]
    fn masks_cfg_test_struct_field() {
        let src =
            "struct S {\n    a: u32,\n    #[cfg(test)]\n    hook: Option<u32>,\n    b: u32,\n}\n";
        let masked = mask_tests(&clean(src).text);
        assert!(!masked.contains("hook"));
        assert!(masked.contains("a: u32"));
        assert!(masked.contains("b: u32"));
    }
}
