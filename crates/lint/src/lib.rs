//! `dvfs-lint`: the workspace invariant checker.
//!
//! The compiler cannot see the contracts this reproduction rests on:
//! replay must be bit-identical across executors and shard counts,
//! policies must stay engine-agnostic, engines must be owned outright
//! by their shard worker threads (no shared engine locks), and the
//! wire path must not panic on hostile input. With the threaded
//! architecture the contracts grew cross-file: whether a relaxed
//! atomic or a dropped reply sender is sound depends on code in
//! *other* modules, so the lint runs in two passes — pass 1 builds a
//! workspace symbol table (atomic fields and accesses, channel
//! endpoints, `unsafe` blocks, `Command` reply variants and their
//! match arms) from the cleaned, test-masked text of every file, and
//! pass 2 applies the rule families, the per-file ones directly and
//! the concurrency ones over the table. Everything stays a hand-rolled
//! token scanner (no external deps, in the spirit of the `shims/`
//! approach):
//!
//! | rule id            | contract                                              |
//! |--------------------|-------------------------------------------------------|
//! | `determinism`      | no `HashMap`/`HashSet`, `Instant::now`,               |
//! |                    | `SystemTime::now`, or `thread_rng` in replay-critical |
//! |                    | code; wall time only via the serve clock seam; no     |
//! |                    | clock reads or string allocation/formatting in the    |
//! |                    | `dvfs-trace` record path (rendering is drain-time)    |
//! | `engine-ownership` | no `Mutex<…Engine…>` and no retired engine-lock       |
//! |                    | helpers outside `serve/src/worker.rs`; engines talk   |
//! |                    | only over the worker command channel                  |
//! | `layering`         | forbidden crate edges over *normal* deps, parsed      |
//! |                    | natively from `Cargo.toml` (no `cargo tree`)          |
//! | `migration-protocol` | the engine migration primitives (`steal_longest`,   |
//! |                    | `remove_ready`, `push_migrated`) appear only in the   |
//! |                    | worker/executor modules; everything else migrates     |
//! |                    | via `Command::Steal`/`Command::Inject`                |
//! | `panic`            | no `unwrap`/`expect`/panicking macro/slice-index in   |
//! |                    | `serve/src/{protocol,server,admission}.rs` or         |
//! |                    | anywhere in `net/src` (the reactor is wire path)      |
//! | `atomics-discipline` | `Ordering::Relaxed` only on sites blessed as        |
//! |                    | advisory (worker load gauges, metrics counters, the   |
//! |                    | router cursor); atomics touched from more than one    |
//! |                    | module are handshakes and need Acquire/Release or     |
//! |                    | SeqCst                                                |
//! | `channel-protocol` | every `Command` variant carrying a one-shot `reply`   |
//! |                    | sender sends on every match arm of its worker loop;   |
//! |                    | unbounded `channel()` construction only inside        |
//! |                    | blessed helpers (`reply_channel`)                     |
//! | `reactor-nonblocking` | no `.recv()`/`.lock()`/`.join()`/sleeps inside the |
//! |                    | epoll event-loop module (`net/src/reactor.rs`)        |
//! | `unsafe-audit`     | `unsafe` confined to the syscall allowlist            |
//! |                    | (`net/src/{sys,lib}.rs`), every block carrying a      |
//! |                    | `// SAFETY:` comment                                  |
//!
//! A violation can be waived in place with
//! `// dvfs-lint: allow(rule-id) reason` on the offending line or the
//! line above; the reason is mandatory (a bare `allow` trips the
//! `waiver` rule). Test code (`#[cfg(test)]` items and `#[test]` fns)
//! is masked out before the rules run.

pub mod concurrency;
pub mod layering;
pub mod rules;
pub mod scan;

use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id: `determinism`, `engine-ownership`, `layering`,
    /// `migration-protocol`, `panic`, `atomics-discipline`,
    /// `channel-protocol`, `reactor-nonblocking`, `unsafe-audit`, or
    /// `waiver`.
    pub rule: String,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// A waiver that matched (and suppressed) at least one violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedWaiver {
    /// Path relative to the workspace root.
    pub file: String,
    /// Line the directive sits on.
    pub line: usize,
    /// Rule id it waives.
    pub rule: String,
    /// The justification the author supplied.
    pub reason: String,
}

/// Full lint result for one workspace tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving (un-waived) violations, sorted by file/line/rule.
    pub violations: Vec<Violation>,
    /// Waivers that suppressed something.
    pub waivers: Vec<AppliedWaiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Where each source rule applies, as workspace-relative path prefixes
/// (dirs) and exact files. Everything is non-test code only.
mod scope {
    /// Rule D (collections/RNG): replay-critical state that is iterated
    /// into reports, plans, or actuation decisions.
    pub const DET_COLLECTIONS_DIRS: &[&str] = &["crates/core/src", "crates/model/src"];
    /// Exact files for rule D (collections/RNG) outside those dirs: the
    /// sim engine and the serve report-merge/metrics/snapshot paths.
    pub const DET_COLLECTIONS_FILES: &[&str] = &[
        "crates/sim/src/engine.rs",
        "crates/serve/src/executor.rs",
        "crates/serve/src/metrics.rs",
        "crates/serve/src/snapshot.rs",
    ];
    /// Rule D (clocks): all of core/model/serve — wall time enters the
    /// service only through the clock seam.
    pub const DET_CLOCK_DIRS: &[&str] =
        &["crates/core/src", "crates/model/src", "crates/serve/src"];
    /// Exact extra files for rule D (clocks).
    pub const DET_CLOCK_FILES: &[&str] = &["crates/sim/src/engine.rs"];
    /// The one blessed wall-clock read.
    pub const DET_CLOCK_EXEMPT: &[&str] = &["crates/serve/src/clock.rs"];
    /// Rule D (trace record path): the event-bus hot path must be
    /// clock-free and allocation-free; exporters (`export.rs`,
    /// `prom.rs`) render at drain time and are deliberately excluded.
    pub const TRACE_RECORD_FILES: &[&str] =
        &["crates/trace/src/lib.rs", "crates/trace/src/ring.rs"];
    /// Rule E: the sharded service — only the worker module owns
    /// engines, so nothing else in the crate may mutex one.
    pub const ENGINE_OWNERSHIP_DIRS: &[&str] = &["crates/serve/src"];
    /// The one module allowed to name the engine in ownership terms
    /// (it holds engines *without* locks; the exemption keeps the rule
    /// honest if a lock ever sneaks back in here it must be waived
    /// explicitly in review).
    pub const ENGINE_OWNERSHIP_EXEMPT: &[&str] = &["crates/serve/src/worker.rs"];
    /// Rule M: cross-shard migration goes through the worker command
    /// protocol; nothing else in the serve crate may call the engine
    /// migration primitives directly.
    pub const MIGRATION_DIRS: &[&str] = &["crates/serve/src"];
    /// The worker owns engines (the only sound caller) and the
    /// executor defines the primitives.
    pub const MIGRATION_EXEMPT: &[&str] =
        &["crates/serve/src/worker.rs", "crates/serve/src/executor.rs"];
    /// Rule P: the wire path.
    pub const PANIC_FILES: &[&str] = &[
        "crates/serve/src/protocol.rs",
        "crates/serve/src/server.rs",
        "crates/serve/src/admission.rs",
    ];
    /// Rule P (dirs): the epoll reactor handles hostile bytes on every
    /// line, so the whole crate is wire path.
    pub const PANIC_DIRS: &[&str] = &["crates/net/src"];
    /// Rule C-A: files whose atomics are advisory wholesale — the
    /// metrics registry's counters and gauges feed dashboards, never
    /// the replayed schedule.
    pub const ATOMIC_ADVISORY_FILES: &[&str] = &["crates/serve/src/metrics.rs"];
    /// Rule C-A: individual `(file, field)` atomic sites blessed as
    /// advisory: the worker load gauges the router and rebalancer read
    /// (stale values only skew placement, never correctness), the
    /// round-robin router cursor (any interleaving of increments is a
    /// valid rotation), and the worker heartbeat slots — telemetry the
    /// supervisor and `health` snapshot read lock-free. `Relaxed` is
    /// allowed on advisory slots only: a torn or stale heartbeat can
    /// at worst misreport liveness for one poll interval, and nothing
    /// scheduled ever reads these fields.
    pub const ATOMIC_ADVISORY_FIELDS: &[(&str, &str)] = &[
        ("crates/serve/src/worker.rs", "backlog"),
        ("crates/serve/src/worker.rs", "queued_cost_bits"),
        ("crates/serve/src/service.rs", "router_cursor"),
        ("crates/serve/src/worker.rs", "last_progress_micros"),
        ("crates/serve/src/worker.rs", "cmd_sent"),
        ("crates/serve/src/worker.rs", "cmd_dequeued"),
        ("crates/serve/src/worker.rs", "dequeue_age_micros"),
        ("crates/serve/src/worker.rs", "tick_micros"),
        ("crates/serve/src/worker.rs", "drain_micros"),
        ("crates/serve/src/worker.rs", "steal_micros"),
        ("crates/serve/src/worker.rs", "inject_micros"),
    ];
    /// Rule C-C: functions blessed to construct unbounded channels —
    /// the one-shot reply channel, bounded by the command/reply
    /// protocol itself (at most one message ever crosses it).
    pub const CHANNEL_BLESSED_FNS: &[&str] = &["reply_channel"];
    /// Rule C-R: the event-loop modules where blocking calls are
    /// forbidden.
    pub const REACTOR_FILES: &[&str] = &["crates/net/src/reactor.rs"];
    /// Rule C-U: the audited syscall boundary — the only modules
    /// allowed to contain `unsafe` (each block `// SAFETY:`-commented).
    pub const UNSAFE_ALLOWED_FILES: &[&str] = &["crates/net/src/sys.rs", "crates/net/src/lib.rs"];
}

fn in_scope(rel: &str, dirs: &[&str], files: &[&str], exempt: &[&str]) -> bool {
    if exempt.contains(&rel) {
        return false;
    }
    files.contains(&rel) || dirs.iter().any(|d| rel.starts_with(&format!("{d}/")))
}

/// Collect `.rs` files under `root/crates/*/src`, skipping tests,
/// benches, examples, fixtures, and build output.
fn source_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !matches!(
                    name.as_ref(),
                    "target" | ".git" | "tests" | "benches" | "examples" | "fixtures"
                ) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    let rel = rel.to_string_lossy().replace('\\', "/");
                    if rel.contains("/src/") {
                        out.push(rel);
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// Run every rule over the workspace at `root` and fold in waivers.
pub fn run(root: &Path) -> Report {
    let mut raw: Vec<Violation> = Vec::new();
    let mut all_waivers: Vec<(String, scan::Waiver)> = Vec::new();
    let files = source_files(root);
    let files_scanned = files.len();

    // Pass 1: read, clean, and test-mask every file once, collecting
    // waivers along the way, then fold the whole workspace into the
    // concurrency symbol table.
    let mut scans: Vec<concurrency::FileScan> = Vec::new();
    for rel in &files {
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        let cleaned = scan::clean(&src);
        for (line, rule) in &cleaned.missing_reason {
            raw.push(Violation {
                rule: "waiver".to_string(),
                file: rel.clone(),
                line: *line,
                message: format!(
                    "waiver `allow({rule})` is missing a reason; write `// dvfs-lint: allow({rule}) <why this is safe>`"
                ),
            });
        }
        for w in &cleaned.waivers {
            all_waivers.push((rel.clone(), w.clone()));
        }
        scans.push(concurrency::FileScan {
            rel: rel.clone(),
            text: scan::mask_tests(&cleaned.text),
            source: src,
        });
    }
    let table = concurrency::SymbolTable::build(&scans);

    // Pass 2: the per-file rule families over each file's masked text…
    for fs in &scans {
        let (rel, text) = (&fs.rel, &fs.text);
        if in_scope(
            rel,
            scope::DET_COLLECTIONS_DIRS,
            scope::DET_COLLECTIONS_FILES,
            &[],
        ) {
            raw.extend(rules::determinism_collections(text, rel));
        }
        if in_scope(
            rel,
            scope::DET_CLOCK_DIRS,
            scope::DET_CLOCK_FILES,
            scope::DET_CLOCK_EXEMPT,
        ) {
            raw.extend(rules::determinism_clock(text, rel));
        }
        if in_scope(rel, &[], scope::TRACE_RECORD_FILES, &[]) {
            raw.extend(rules::determinism_clock(text, rel));
            raw.extend(rules::determinism_allocation(text, rel));
        }
        if in_scope(
            rel,
            scope::ENGINE_OWNERSHIP_DIRS,
            &[],
            scope::ENGINE_OWNERSHIP_EXEMPT,
        ) {
            raw.extend(rules::engine_ownership(text, rel));
        }
        if in_scope(rel, scope::MIGRATION_DIRS, &[], scope::MIGRATION_EXEMPT) {
            raw.extend(rules::migration_protocol(text, rel));
        }
        if in_scope(rel, scope::PANIC_DIRS, scope::PANIC_FILES, &[]) {
            raw.extend(rules::panic_freedom(text, rel));
        }
    }

    raw.extend(layering::check(&layering::discover(root)));

    // …and the workspace-wide concurrency rules over the symbol table.
    raw.extend(concurrency::atomics_discipline(&table));
    raw.extend(concurrency::channel_protocol(&table));
    raw.extend(concurrency::reactor_nonblocking(&table));
    raw.extend(concurrency::unsafe_audit(&table));

    // Apply waivers: a waiver covers same-rule violations on its own
    // line and the line directly below. The `waiver` rule itself (a
    // malformed waiver) cannot be waived.
    let mut violations = Vec::new();
    let mut used: Vec<AppliedWaiver> = Vec::new();
    for v in raw {
        let hit = (v.rule != "waiver")
            .then(|| {
                all_waivers.iter().find(|(file, w)| {
                    *file == v.file
                        && w.rule == v.rule
                        && (w.line == v.line || w.line + 1 == v.line)
                })
            })
            .flatten();
        if let Some((file, w)) = hit {
            let applied = AppliedWaiver {
                file: file.clone(),
                line: w.line,
                rule: w.rule.clone(),
                reason: w.reason.clone(),
            };
            if !used.contains(&applied) {
                used.push(applied);
            }
        } else {
            violations.push(v);
        }
    }
    violations.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    used.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    Report {
        violations,
        waivers: used,
        files_scanned,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// True when nothing survived waiver application.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Machine-readable report (hand-rolled JSON, single line).
    #[must_use]
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                    json_escape(&v.rule),
                    json_escape(&v.file),
                    v.line,
                    json_escape(&v.message)
                )
            })
            .collect();
        let waivers: Vec<String> = self
            .waivers
            .iter()
            .map(|w| {
                format!(
                    "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"reason\":\"{}\"}}",
                    json_escape(&w.rule),
                    json_escape(&w.file),
                    w.line,
                    json_escape(&w.reason)
                )
            })
            .collect();
        format!(
            "{{\"violations\":[{}],\"waivers\":[{}],\"summary\":{{\"violations\":{},\"waivers\":{},\"files_scanned\":{}}}}}",
            violations.join(","),
            waivers.join(","),
            self.violations.len(),
            self.waivers.len(),
            self.files_scanned
        )
    }

    /// Human-readable report.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.file, v.line, v.rule, v.message
            ));
        }
        for w in &self.waivers {
            out.push_str(&format!(
                "{}:{}: waived [{}] — {}\n",
                w.file, w.line, w.rule, w.reason
            ));
        }
        out.push_str(&format!(
            "dvfs-lint: {} violation(s), {} waiver(s) applied, {} file(s) scanned\n",
            self.violations.len(),
            self.waivers.len(),
            self.files_scanned
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching() {
        assert!(in_scope(
            "crates/core/src/lmc.rs",
            scope::DET_COLLECTIONS_DIRS,
            scope::DET_COLLECTIONS_FILES,
            &[]
        ));
        assert!(in_scope(
            "crates/serve/src/executor.rs",
            scope::DET_COLLECTIONS_DIRS,
            scope::DET_COLLECTIONS_FILES,
            &[]
        ));
        assert!(!in_scope(
            "crates/serve/src/service.rs",
            scope::DET_COLLECTIONS_DIRS,
            scope::DET_COLLECTIONS_FILES,
            &[]
        ));
        assert!(!in_scope(
            "crates/serve/src/clock.rs",
            scope::DET_CLOCK_DIRS,
            scope::DET_CLOCK_FILES,
            scope::DET_CLOCK_EXEMPT
        ));
        assert!(in_scope(
            "crates/net/src/reactor.rs",
            scope::PANIC_DIRS,
            scope::PANIC_FILES,
            &[]
        ));
        assert!(in_scope(
            "crates/serve/src/service.rs",
            scope::ENGINE_OWNERSHIP_DIRS,
            &[],
            scope::ENGINE_OWNERSHIP_EXEMPT
        ));
        assert!(!in_scope(
            "crates/serve/src/worker.rs",
            scope::ENGINE_OWNERSHIP_DIRS,
            &[],
            scope::ENGINE_OWNERSHIP_EXEMPT
        ));
        assert!(!in_scope(
            "crates/serve/src/service.rs",
            scope::PANIC_DIRS,
            scope::PANIC_FILES,
            &[]
        ));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
