//! Rule A: crate layering, enforced by parsing `Cargo.toml` manifests
//! natively (no `cargo tree` subprocess). Only *normal* dependency
//! edges count — `[dev-dependencies]` cycles (policies tested on the
//! virtual-time executor) are deliberate and allowed.

use crate::Violation;
use std::path::Path;

/// `(from, to)` pairs that must not be reachable over normal deps.
/// Policies stay engine-agnostic (core/model never see an executor),
/// the service links the real-time executor only, and the trace event
/// bus sits below everything: `dvfs-core -> dvfs-trace` is the only
/// allowed edge into it, and it depends on nothing in the workspace.
/// The reactor (`dvfs-net`) is pure transport: it knows nothing about
/// scheduling (no edge out of it into the workspace), and only the
/// service layer may link it (nothing below `dvfs-serve` sees it).
pub const FORBIDDEN: &[(&str, &str)] = &[
    ("dvfs-core", "dvfs-sim"),
    ("dvfs-core", "dvfs-serve"),
    ("dvfs-serve", "dvfs-sim"),
    ("dvfs-model", "dvfs-core"),
    ("dvfs-model", "dvfs-sim"),
    ("dvfs-trace", "dvfs-core"),
    ("dvfs-trace", "dvfs-model"),
    ("dvfs-trace", "dvfs-sim"),
    ("dvfs-trace", "dvfs-serve"),
    ("dvfs-model", "dvfs-trace"),
    ("dvfs-net", "dvfs-core"),
    ("dvfs-net", "dvfs-model"),
    ("dvfs-net", "dvfs-sim"),
    ("dvfs-net", "dvfs-serve"),
    ("dvfs-net", "dvfs-trace"),
    ("dvfs-core", "dvfs-net"),
    ("dvfs-model", "dvfs-net"),
    ("dvfs-trace", "dvfs-net"),
];

/// One parsed manifest: package name plus its normal dependency names
/// with the 1-based manifest line each entry sits on.
#[derive(Debug)]
pub struct Manifest {
    /// `package.name`.
    pub name: String,
    /// Manifest path relative to the workspace root.
    pub rel_path: String,
    /// Normal deps (from `[dependencies]` and `[target.*.dependencies]`).
    pub deps: Vec<(String, usize)>,
}

#[derive(PartialEq)]
enum Section {
    Package,
    NormalDeps,
    Other,
}

/// Parse the subset of TOML that Cargo manifests in this workspace use:
/// `[section]` headers, `key = value` lines, quoted keys, and
/// `name = { … }` inline tables.
pub fn parse_manifest(text: &str, rel_path: &str) -> Option<Manifest> {
    let mut name = None;
    let mut deps = Vec::new();
    let mut section = Section::Other;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_end_matches(']').trim();
            section = match header {
                "package" => Section::Package,
                "dependencies" => Section::NormalDeps,
                h if h.starts_with("target.") && h.ends_with(".dependencies") => {
                    Section::NormalDeps
                }
                _ => Section::Other, // dev-/build-deps, workspace.*, profiles…
            };
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim().trim_matches('"');
        match section {
            Section::Package if key == "name" => {
                name = Some(line[eq + 1..].trim().trim_matches('"').to_string());
            }
            Section::NormalDeps => {
                // `foo = {…}`, `foo = "1"`, or `foo.workspace = true`.
                let dep = key.split('.').next().unwrap_or(key).trim().to_string();
                if !dep.is_empty() {
                    deps.push((dep, idx + 1));
                }
            }
            _ => {}
        }
    }
    Some(Manifest {
        name: name?,
        rel_path: rel_path.to_string(),
        deps,
    })
}

fn manifest_at(root: &Path, rel: &str) -> Option<Manifest> {
    let text = std::fs::read_to_string(root.join(rel)).ok()?;
    parse_manifest(&text, rel)
}

/// Discover workspace manifests: the root package (if any) plus
/// `crates/*/Cargo.toml` and `shims/*/Cargo.toml`, depth 1 only — so
/// lint test fixtures under `crates/lint/tests/` are never picked up.
pub fn discover(root: &Path) -> Vec<Manifest> {
    let mut out = Vec::new();
    if let Some(m) = manifest_at(root, "Cargo.toml") {
        out.push(m);
    }
    for dir in ["crates", "shims"] {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        let mut subdirs: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        subdirs.sort();
        for sub in subdirs {
            let rel = format!("{dir}/{sub}/Cargo.toml");
            if let Some(m) = manifest_at(root, &rel) {
                out.push(m);
            }
        }
    }
    out
}

/// Check every [`FORBIDDEN`] pair over the transitive normal-dep
/// closure; a hit is reported at the first edge out of the source crate
/// that reaches the forbidden target.
pub fn check(manifests: &[Manifest]) -> Vec<Violation> {
    let mut out = Vec::new();
    for &(from, to) in FORBIDDEN {
        let Some(src) = manifests.iter().find(|m| m.name == from) else {
            continue;
        };
        for (dep, line) in &src.deps {
            if let Some(chain) = reach(manifests, dep, to, &mut vec![from.to_string()]) {
                out.push(Violation {
                    rule: "layering".to_string(),
                    file: src.rel_path.clone(),
                    line: *line,
                    message: format!(
                        "`{from}` must not depend on `{to}` (normal deps): {}",
                        chain.join(" -> ")
                    ),
                });
                break; // one report per forbidden pair is enough
            }
        }
    }
    out
}

/// Depth-first search for `target` starting at crate `at`, returning
/// the full path (including the originating crate) on success.
fn reach(
    manifests: &[Manifest],
    at: &str,
    target: &str,
    path: &mut Vec<String>,
) -> Option<Vec<String>> {
    if path.iter().any(|p| p == at) {
        return None; // dep cycle guard (dev-dep cycles never get here, but be safe)
    }
    path.push(at.to_string());
    if at == target {
        return Some(path.clone());
    }
    if let Some(m) = manifests.iter().find(|m| m.name == at) {
        for (dep, _) in &m.deps {
            if let Some(found) = reach(manifests, dep, target, path) {
                return Some(found);
            }
        }
    }
    path.pop();
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_and_inline_dep_forms() {
        let toml = "[package]\nname = \"dvfs-serve\"\n\n[dependencies]\ndvfs-core.workspace = true\nserde = { path = \"../shims/serde\" }\n\n[dev-dependencies]\ndvfs-sim.workspace = true\n";
        let m = parse_manifest(toml, "crates/serve/Cargo.toml").unwrap();
        assert_eq!(m.name, "dvfs-serve");
        let names: Vec<&str> = m.deps.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(names, vec!["dvfs-core", "serde"]);
    }

    #[test]
    fn workspace_dependencies_section_is_not_normal_deps() {
        let toml = "[package]\nname = \"root\"\n[workspace.dependencies]\ndvfs-sim = { path = \"crates/sim\" }\n";
        let m = parse_manifest(toml, "Cargo.toml").unwrap();
        assert!(m.deps.is_empty());
    }

    #[test]
    fn transitive_forbidden_edge_is_found() {
        let mk = |name: &str, deps: &[&str]| Manifest {
            name: name.to_string(),
            rel_path: format!("crates/{name}/Cargo.toml"),
            deps: deps.iter().map(|d| (d.to_string(), 1)).collect(),
        };
        let ms = vec![
            mk("dvfs-serve", &["dvfs-middle"]),
            mk("dvfs-middle", &["dvfs-sim"]),
            mk("dvfs-sim", &[]),
        ];
        let v = check(&ms);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "layering");
        assert!(v[0]
            .message
            .contains("dvfs-serve -> dvfs-middle -> dvfs-sim"));
    }

    #[test]
    fn dev_dep_cycle_is_allowed() {
        let toml =
            "[package]\nname = \"dvfs-core\"\n[dev-dependencies]\ndvfs-sim.workspace = true\n";
        let m = parse_manifest(toml, "crates/core/Cargo.toml").unwrap();
        assert!(check(&[m]).is_empty());
    }
}
