//! The source-level rule families: determinism (D), engine ownership
//! (E), and panic-freedom (P). Each rule takes cleaned, test-masked text
//! (see [`crate::scan`]) and returns raw violations; waiver handling
//! happens in [`crate::run`].

use crate::scan::line_of;
use crate::Violation;

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Byte offsets of `ident` as a standalone identifier token.
pub(crate) fn ident_occurrences(text: &str, ident: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = text[from..].find(ident) {
        let at = from + p;
        let end = at + ident.len();
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + ident.len();
    }
    out
}

pub(crate) fn next_non_ws(bytes: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some((i, bytes[i]));
        }
        i += 1;
    }
    None
}

pub(crate) fn prev_non_ws(bytes: &[u8], i: usize) -> Option<(usize, u8)> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !bytes[j].is_ascii_whitespace() {
            return Some((j, bytes[j]));
        }
    }
    None
}

/// Byte offsets of the path expression `first::second` (whitespace
/// around `::` tolerated), e.g. `Instant::now`.
pub(crate) fn path_occurrences(text: &str, first: &str, second: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for at in ident_occurrences(text, first) {
        let Some((c1, b1)) = next_non_ws(bytes, at + first.len()) else {
            continue;
        };
        if b1 != b':' || bytes.get(c1 + 1) != Some(&b':') {
            continue;
        }
        let Some((c2, _)) = next_non_ws(bytes, c1 + 2) else {
            continue;
        };
        if text[c2..].starts_with(second)
            && bytes
                .get(c2 + second.len())
                .is_none_or(|&b| !is_ident_byte(b))
        {
            out.push(at);
        }
    }
    out
}

/// Byte offsets of `.name(` method calls (receiver required).
pub(crate) fn method_call_occurrences(text: &str, name: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    ident_occurrences(text, name)
        .into_iter()
        .filter(|&at| {
            prev_non_ws(bytes, at).is_some_and(|(_, b)| b == b'.')
                && next_non_ws(bytes, at + name.len()).is_some_and(|(_, b)| b == b'(')
        })
        .collect()
}

/// Byte offsets of `name!(`-style macro invocations.
fn macro_occurrences(text: &str, name: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    ident_occurrences(text, name)
        .into_iter()
        .filter(|&at| bytes.get(at + name.len()) == Some(&b'!'))
        .collect()
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`&mut [u8]`, `dyn [T]`, `return [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "dyn", "in", "as", "return", "else", "match", "if", "while", "for", "move",
    "box", "where", "let", "const", "static", "break", "continue", "impl", "fn", "unsafe", "loop",
    "yield", "await",
];

/// Byte offsets of `[` tokens that open an index expression: preceded
/// (ignoring whitespace) by an identifier that is not a keyword, or by
/// a closing `)`/`]`.
fn index_occurrences(text: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for (at, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let Some((p, pb)) = prev_non_ws(bytes, at) else {
            continue;
        };
        if pb == b')' || pb == b']' {
            out.push(at);
        } else if is_ident_byte(pb) {
            let mut s = p;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            let token = &text[s..=p];
            if !NON_INDEX_KEYWORDS.contains(&token) {
                out.push(at);
            }
        }
    }
    out
}

fn violation(text: &str, file: &str, at: usize, rule: &str, message: String) -> Violation {
    Violation {
        rule: rule.to_string(),
        file: file.to_string(),
        line: line_of(text, at),
        message,
    }
}

/// Rule D over collections/RNG: no order-nondeterministic containers or
/// ambient randomness in replay-critical code.
pub fn determinism_collections(text: &str, file: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for at in ident_occurrences(text, ty) {
            out.push(violation(
                text,
                file,
                at,
                "determinism",
                format!("`{ty}` has nondeterministic iteration order; use `BTreeMap`/`BTreeSet` (or waive with a reason if iteration order provably never escapes)"),
            ));
        }
    }
    for at in ident_occurrences(text, "thread_rng") {
        out.push(violation(
            text,
            file,
            at,
            "determinism",
            "`thread_rng` is unseeded; replay-critical code must draw randomness from a seeded generator".to_string(),
        ));
    }
    out
}

/// Rule D over clocks: wall time may only enter through the blessed
/// clock seam; everything else works in engine seconds.
pub fn determinism_clock(text: &str, file: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for (first, second) in [("Instant", "now"), ("SystemTime", "now")] {
        for at in path_occurrences(text, first, second) {
            out.push(violation(
                text,
                file,
                at,
                "determinism",
                format!("`{first}::{second}()` outside the clock seam; route wall-time reads through `clock::wall_now()` so the nondeterministic surface stays auditable"),
            ));
        }
    }
    out
}

/// Rule D over trace record paths: the ring-buffer hot path must not
/// allocate strings or format; rendering belongs in the exporters,
/// which run off the record path.
pub fn determinism_allocation(text: &str, file: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for mac in ["format", "write", "writeln"] {
        for at in macro_occurrences(text, mac) {
            out.push(violation(
                text,
                file,
                at,
                "determinism",
                format!("`{mac}!` allocates/formats on the trace record path; defer rendering to the exporters (`export::jsonl_line` runs at drain time)"),
            ));
        }
    }
    for at in method_call_occurrences(text, "to_string") {
        out.push(violation(
            text,
            file,
            at,
            "determinism",
            "`.to_string()` allocates on the trace record path; record raw numeric/enum payloads and render at drain time".to_string(),
        ));
    }
    for at in path_occurrences(text, "String", "from") {
        out.push(violation(
            text,
            file,
            at,
            "determinism",
            "`String::from` allocates on the trace record path; record raw numeric/enum payloads and render at drain time".to_string(),
        ));
    }
    out
}

/// Byte offsets of `Mutex< … Engine … >` type mentions: a `Mutex`
/// identifier whose generic argument list names `Engine` at any depth
/// (so `Mutex<Vec<Engine>>` counts too; `Mutex<IdLedger>` does not).
fn mutexed_engine_occurrences(text: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for at in ident_occurrences(text, "Mutex") {
        let Some((open, b)) = next_non_ws(bytes, at + "Mutex".len()) else {
            continue;
        };
        if b != b'<' {
            continue;
        }
        // Walk to the matching `>` (depth-counted; `>>` closes two).
        let mut depth = 1usize;
        let mut end = open + 1;
        while end < bytes.len() && depth > 0 {
            match bytes[end] {
                b'<' => depth += 1,
                b'>' => depth -= 1,
                _ => {}
            }
            end += 1;
        }
        if !ident_occurrences(&text[open..end], "Engine").is_empty() {
            out.push(at);
        }
    }
    out
}

/// Rule E: engines are owned outright by their shard worker threads —
/// nothing outside the worker module may wrap an `Engine` in a `Mutex`
/// or resurrect the retired engine-lock helpers. The old `lock-order`
/// rule policed how many engine locks a function took at once; with
/// message-passing ownership the correct count everywhere else is
/// zero.
pub fn engine_ownership(text: &str, file: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for at in mutexed_engine_occurrences(text) {
        out.push(violation(
            text,
            file,
            at,
            "engine-ownership",
            "`Mutex<…Engine…>` outside the worker module; engines are owned by their shard worker thread — talk to it over the command channel instead of sharing the engine behind a lock".to_string(),
        ));
    }
    for helper in ["lock_engine", "lock_engines_ascending"] {
        for at in ident_occurrences(text, helper) {
            out.push(violation(
                text,
                file,
                at,
                "engine-ownership",
                format!("`{helper}` is retired; engines moved behind the per-shard worker boundary — send the worker a command instead of locking its engine"),
            ));
        }
    }
    out
}

/// Rule M: the migration primitives mutate engine internals (ledger
/// deletes, arrival-path inserts, rate re-derivation) and are only
/// sound on the thread that owns the engine — the shard worker.
/// Everywhere else in the serve crate, cross-shard migration must go
/// through the worker command protocol (`Command::Steal` /
/// `Command::Inject`), which keeps every engine touch on its owning
/// thread and the replies deterministic.
pub fn migration_protocol(text: &str, file: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for helper in ["steal_longest", "remove_ready", "push_migrated"] {
        for at in ident_occurrences(text, helper) {
            out.push(violation(
                text,
                file,
                at,
                "migration-protocol",
                format!("`{helper}` mutates engine state and is only sound on the owning shard worker thread; route cross-shard migration through `Command::Steal`/`Command::Inject` instead"),
            ));
        }
    }
    out
}

/// Rule P: no panicking constructs on the wire path.
pub fn panic_freedom(text: &str, file: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for name in ["unwrap", "expect"] {
        for at in method_call_occurrences(text, name) {
            out.push(violation(
                text,
                file,
                at,
                "panic",
                format!("`.{name}(…)` can panic; the wire path must degrade gracefully (return an error response or fall back)"),
            ));
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for at in macro_occurrences(text, mac) {
            out.push(violation(
                text,
                file,
                at,
                "panic",
                format!("`{mac}!` can panic; the wire path must degrade gracefully (return an error response or fall back)"),
            ));
        }
    }
    for at in index_occurrences(text) {
        out.push(violation(
            text,
            file,
            at,
            "panic",
            "slice/array index can panic out of bounds; use `.get(…)` on the wire path".to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_occurrences_respects_boundaries() {
        let t = "HashMap HashMapX XHashMap x.HashMap::new()";
        assert_eq!(ident_occurrences(t, "HashMap").len(), 2);
    }

    #[test]
    fn path_occurrences_tolerates_whitespace() {
        let t = "let a = Instant::now(); let b = Instant ::\n now();";
        assert_eq!(path_occurrences(t, "Instant", "now").len(), 2);
        assert_eq!(path_occurrences(t, "Instant", "elapsed").len(), 0);
    }

    #[test]
    fn method_calls_require_receiver_and_args() {
        let t = "x.unwrap(); unwrap(); fn unwrap() {} y.unwrap_or(0); z.expect(\"m\");";
        assert_eq!(method_call_occurrences(t, "unwrap").len(), 1);
        assert_eq!(method_call_occurrences(t, "expect").len(), 1);
    }

    #[test]
    fn index_detection_skips_types_attrs_and_macros() {
        let flagged = "buf[0]; calls()[1]; grid[i][j];";
        assert_eq!(index_occurrences(flagged).len(), 4);
        let clean = "fn f(b: &mut [u8]) -> Vec<[u8; 4]> { vec![1] }\n#[derive(Debug)]\nstruct S;";
        assert_eq!(index_occurrences(clean).len(), 0);
    }

    #[test]
    fn allocation_rule_catches_formatting_and_string_building() {
        let src = "fn rec(&mut self) { let s = format!(\"{}\", 1); let t = 2.to_string(); let u = String::from(\"x\"); }";
        let v = determinism_allocation(src, "f.rs");
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == "determinism"));
        let clean = "fn rec(&mut self) { self.buf.push_back(ev); self.next_seq += 1; }";
        assert!(determinism_allocation(clean, "f.rs").is_empty());
    }

    #[test]
    fn engine_ownership_flags_mutexed_engines_and_retired_helpers() {
        let src = "struct Shard { engine: Mutex<Engine> }\nstruct Nested { engines: Mutex<Vec<Engine>> }\nfn bad(&self) { let g = self.shard.lock_engine(); }\nfn also_bad(&self) { let gs = self.lock_engines_ascending(); }\n";
        let v = engine_ownership(src, "f.rs");
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "engine-ownership"));
        assert!(v[0].message.contains("Mutex<…Engine…>"));
        assert!(v[2].message.contains("`lock_engine` is retired"));
    }

    #[test]
    fn engine_ownership_ignores_unrelated_mutexes() {
        let src = "struct S { ids: Mutex<IdLedger>, anchor: Mutex<Option<Instant>>, round_mx: Mutex<()> }\nfn ok(&self) { let g = self.ids.lock(); }\n";
        assert!(engine_ownership(src, "f.rs").is_empty());
        // `Engine` outside a Mutex generic list is fine — workers own
        // engines directly.
        let owned = "struct Worker { engine: Engine }\nfn tick(e: &mut Engine) {}\n";
        assert!(engine_ownership(owned, "f.rs").is_empty());
    }

    #[test]
    fn migration_protocol_flags_direct_primitive_calls() {
        let src = "fn bad(&self) { let ids = self.policy.steal_longest(exec, 4); let t = exec.remove_ready(tid); exec.push_migrated(&t); }";
        let v = migration_protocol(src, "f.rs");
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "migration-protocol"));
        assert!(v[0].message.contains("`steal_longest`"));
        // Sending the commands is the sanctioned path — no idents match.
        let clean = "fn ok(&self) { w.send(Command::Steal { max, reply }); w.send(Command::Inject { tasks, reply }); }";
        assert!(migration_protocol(clean, "f.rs").is_empty());
    }

    #[test]
    fn panic_rule_catches_macros_and_indexing() {
        let src = "fn f(b: &[u8]) { let x = b[0]; m.get(k).unwrap(); unreachable!(\"no\"); }";
        let v = panic_freedom(src, "f.rs");
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == "panic"));
    }
}
