//! `dvfs-lint` CLI.
//!
//! ```text
//! dvfs-lint [--json] [--deny all] [--root PATH]
//! ```
//!
//! Advisory by default (exit 0 even with findings, so it can run in
//! exploratory checkouts); `--deny all` makes any surviving violation
//! fail the process, which is how `scripts/ci.sh` runs it. `--root`
//! overrides workspace discovery (walking up from the current directory
//! to the first `Cargo.toml` containing `[workspace]`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: dvfs-lint [--json] [--deny all] [--root PATH]";

fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

fn main() -> ExitCode {
    let mut json = false;
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => match args.next().as_deref() {
                Some("all") => deny = true,
                other => {
                    eprintln!(
                        "dvfs-lint: `--deny` takes `all` (got {})\n{USAGE}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("dvfs-lint: `--root` needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dvfs-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d)));
    let Some(root) = root else {
        eprintln!("dvfs-lint: no workspace root found (no `Cargo.toml` with `[workspace]` upward of the current directory); pass --root");
        return ExitCode::from(2);
    };

    let report = dvfs_lint::run(&root);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
