//! Pass-2 concurrency rules over a workspace-wide symbol table.
//!
//! The per-file rules in [`crate::rules`] are local by construction: a
//! forbidden token either appears in a file or it does not. The
//! concurrency contracts the threaded service rests on are not local —
//! whether an `Ordering::Relaxed` access is sound depends on where the
//! field's other readers and writers live, and whether a `Command`
//! reply sender can hang a caller depends on every arm of the worker
//! loop. So the lint runs in two passes: pass 1 ([`SymbolTable::build`])
//! walks every cleaned, test-masked file once (see [`FileScan`]) and
//! records atomic field declarations and accesses, unbounded-channel
//! construction sites, `unsafe` blocks, reply-bearing `Command`
//! variants with their match arms, and blocking calls inside the
//! reactor event-loop scope; pass 2 (the rule functions below) judges
//! the table against the blessed-site lists in the crate's scope
//! tables.
//!
//! | rule id              | contract                                   |
//! |----------------------|--------------------------------------------|
//! | `atomics-discipline` | `Ordering::Relaxed` only on blessed        |
//! |                      | advisory sites (load gauges, metrics,      |
//! |                      | router cursor); cross-module handshakes    |
//! |                      | need Acquire/Release or SeqCst             |
//! | `channel-protocol`   | every reply-bearing `Command` variant      |
//! |                      | sends on every match arm; unbounded        |
//! |                      | `channel()` only in blessed constructors   |
//! | `reactor-nonblocking`| no `.recv()`/`.lock()`/`.join()`/sleeps in |
//! |                      | the reactor event-loop module              |
//! | `unsafe-audit`       | `unsafe` confined to the syscall           |
//! |                      | allowlist, each block `// SAFETY:`-ed      |

use crate::rules::{
    ident_occurrences, is_ident_byte, method_call_occurrences, next_non_ws, path_occurrences,
    prev_non_ws,
};
use crate::scan::line_of;
use crate::{scope, Violation};
use std::collections::BTreeSet;

/// One scanned file, the unit of pass 1.
pub struct FileScan {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The original source, comments intact. Only the `// SAFETY:`
    /// audit reads it — every other matcher runs over `text`, where
    /// comments are blanked.
    pub source: String,
    /// Cleaned, test-masked text (see [`crate::scan`]).
    pub text: String,
}

/// An atomic field or static declaration (`name: AtomicUsize`).
pub struct AtomicField {
    pub file: String,
    pub line: usize,
    pub name: String,
}

/// One atomic access: a `.load(…)`/`.store(…)`/RMW call whose argument
/// list names a memory ordering.
pub struct AtomicAccess {
    pub file: String,
    pub line: usize,
    /// The receiver's trailing identifier (`self.shared.backlog.load`
    /// → `backlog`), or `?` when the receiver is not a simple path.
    pub field: String,
    pub method: String,
    /// True when any ordering argument is `Ordering::Relaxed`.
    pub relaxed: bool,
}

/// An unbounded `channel()` construction outside a blessed function.
pub struct ChannelSite {
    pub file: String,
    pub line: usize,
}

/// One `unsafe` token in production code.
pub struct UnsafeSite {
    pub file: String,
    pub line: usize,
    /// True when a `// SAFETY:` comment sits on the same line or
    /// within the three lines above it (checked against the original,
    /// uncleaned source).
    pub has_safety: bool,
}

/// A `Command` enum variant carrying a one-shot `reply` sender, plus
/// every worker-loop match arm that destructures it.
pub struct ReplyVariant {
    pub file: String,
    /// Line of the variant declaration.
    pub line: usize,
    pub name: String,
    /// `(line, sends_reply)` per match arm found in the declaring
    /// module.
    pub arms: Vec<(usize, bool)>,
}

/// A blocking call inside the reactor event-loop scope.
pub struct BlockingSite {
    pub file: String,
    pub line: usize,
    pub what: String,
}

/// Everything pass 1 extracts from the workspace.
#[derive(Default)]
pub struct SymbolTable {
    pub fields: Vec<AtomicField>,
    pub accesses: Vec<AtomicAccess>,
    pub channels: Vec<ChannelSite>,
    pub unsafes: Vec<UnsafeSite>,
    pub commands: Vec<ReplyVariant>,
    pub blocking: Vec<BlockingSite>,
}

impl SymbolTable {
    /// Pass 1: fold every file's declarations and access sites into one
    /// workspace table.
    #[must_use]
    pub fn build(scans: &[FileScan]) -> SymbolTable {
        let mut t = SymbolTable::default();
        for f in scans {
            collect_atomics(f, &mut t);
            collect_channels(f, &mut t);
            collect_unsafes(f, &mut t);
            collect_commands(f, &mut t);
            collect_blocking(f, &mut t);
        }
        t
    }
}

/// Index of the `close` byte matching the `open` byte at `open`
/// (depth-counted), or `bytes.len()` when unbalanced.
fn matching(bytes: &[u8], open: usize, ob: u8, cb: u8) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        if bytes[i] == ob {
            depth += 1;
        } else if bytes[i] == cb {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// The identifier ending at the last non-whitespace byte before `at`,
/// if that byte is an identifier byte.
fn ident_ending_before(text: &str, at: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let (q, qb) = prev_non_ws(bytes, at)?;
    if !is_ident_byte(qb) {
        return None;
    }
    let mut s = q;
    while s > 0 && is_ident_byte(bytes[s - 1]) {
        s -= 1;
    }
    Some(text[s..=q].to_string())
}

/// The receiver's trailing identifier for a method call at `method_at`
/// (`self.shared.backlog.load` → `backlog`).
fn receiver_ident(text: &str, method_at: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let (dot, db) = prev_non_ws(bytes, method_at)?;
    if db != b'.' {
        return None;
    }
    ident_ending_before(text, dot)
}

const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn collect_atomics(f: &FileScan, t: &mut SymbolTable) {
    let text = &f.text;
    let bytes = text.as_bytes();
    for ty in ATOMIC_TYPES {
        for at in ident_occurrences(text, ty) {
            // A declaration site is `name: AtomicFoo` (struct field or
            // static). `::` paths (imports) and generic positions like
            // `Arc<AtomicFoo>` are not declarations of a named field.
            let Some((c, b)) = prev_non_ws(bytes, at) else {
                continue;
            };
            if b != b':' || (c > 0 && bytes[c - 1] == b':') {
                continue;
            }
            let Some(name) = ident_ending_before(text, c) else {
                continue;
            };
            t.fields.push(AtomicField {
                file: f.rel.clone(),
                line: line_of(text, at),
                name,
            });
        }
    }
    for m in ATOMIC_METHODS {
        for at in method_call_occurrences(text, m) {
            let Some((open, _)) = next_non_ws(bytes, at + m.len()) else {
                continue;
            };
            let close = matching(bytes, open, b'(', b')');
            let args = &text[open + 1..close.min(text.len())];
            // Only calls that name a memory ordering are atomic ops —
            // this is what keeps `Vec::swap`-style homonyms out.
            let named: Vec<&str> = ORDERINGS
                .iter()
                .copied()
                .filter(|o| !path_occurrences(args, "Ordering", o).is_empty())
                .collect();
            if named.is_empty() {
                continue;
            }
            t.accesses.push(AtomicAccess {
                file: f.rel.clone(),
                line: line_of(text, at),
                field: receiver_ident(text, at).unwrap_or_else(|| "?".to_string()),
                method: (*m).to_string(),
                relaxed: named.contains(&"Relaxed"),
            });
        }
    }
}

/// Byte spans of the bodies of functions whose names appear on the
/// blessed-constructor list (`fn reply_channel … { … }`).
fn blessed_fn_spans(text: &str) -> Vec<(usize, usize)> {
    let bytes = text.as_bytes();
    let mut spans = Vec::new();
    for name in scope::CHANNEL_BLESSED_FNS {
        for at in ident_occurrences(text, name) {
            if ident_ending_before(text, at).as_deref() != Some("fn") {
                continue;
            }
            let Some(rel_open) = text[at..].find('{') else {
                continue;
            };
            let open = at + rel_open;
            spans.push((open, matching(bytes, open, b'{', b'}')));
        }
    }
    spans
}

fn collect_channels(f: &FileScan, t: &mut SymbolTable) {
    let text = &f.text;
    let bytes = text.as_bytes();
    let blessed = blessed_fn_spans(text);
    for at in ident_occurrences(text, "channel") {
        // Construction only: `channel()` / `mpsc::channel()`. The
        // ident-boundary check already excludes `sync_channel`.
        if next_non_ws(bytes, at + "channel".len()).map(|(_, b)| b) != Some(b'(') {
            continue;
        }
        if blessed.iter().any(|&(o, c)| at > o && at < c) {
            continue;
        }
        t.channels.push(ChannelSite {
            file: f.rel.clone(),
            line: line_of(text, at),
        });
    }
}

fn collect_unsafes(f: &FileScan, t: &mut SymbolTable) {
    let occ = ident_occurrences(&f.text, "unsafe");
    if occ.is_empty() {
        return;
    }
    let src_lines: Vec<&str> = f.source.lines().collect();
    for at in occ {
        let line = line_of(&f.text, at);
        // Window: the `unsafe` line itself and up to three lines above
        // (1-based line L → 0-based indices [L-4, L-1]).
        let end = line.min(src_lines.len());
        let start = line.saturating_sub(4);
        let has_safety = src_lines
            .get(start..end)
            .is_some_and(|w| w.iter().any(|l| l.contains("SAFETY:")));
        t.unsafes.push(UnsafeSite {
            file: f.rel.clone(),
            line,
            has_safety,
        });
    }
}

/// Collect the reply-bearing variants of a `Command` enum body
/// (`open..close` brace span): any variant with a `reply:` field.
fn parse_variants(
    f: &FileScan,
    text: &str,
    open: usize,
    close: usize,
    out: &mut Vec<ReplyVariant>,
) {
    let bytes = text.as_bytes();
    let mut i = open + 1;
    while i < close {
        let b = bytes[i];
        if b.is_ascii_whitespace() || b == b',' {
            i += 1;
            continue;
        }
        if b == b'#' {
            // Attribute: skip its bracketed group.
            if let Some((bo, bb)) = next_non_ws(bytes, i + 1) {
                if bb == b'[' {
                    i = matching(bytes, bo, b'[', b']') + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if !is_ident_byte(b) {
            i += 1;
            continue;
        }
        let start = i;
        while i < close && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let name = &text[start..i];
        let Some((p, pb)) = next_non_ws(bytes, i) else {
            break;
        };
        match pb {
            b'{' => {
                let fclose = matching(bytes, p, b'{', b'}');
                let fields = &text[p + 1..fclose.min(close)];
                let fb = fields.as_bytes();
                let has_reply = ident_occurrences(fields, "reply")
                    .into_iter()
                    .any(|ra| next_non_ws(fb, ra + "reply".len()).is_some_and(|(_, b)| b == b':'));
                if has_reply {
                    out.push(ReplyVariant {
                        file: f.rel.clone(),
                        line: line_of(text, start),
                        name: name.to_string(),
                        arms: Vec::new(),
                    });
                }
                i = fclose + 1;
            }
            b'(' => i = matching(bytes, p, b'(', b')') + 1,
            _ => i = p + 1,
        }
    }
}

/// If the `Command::Variant` path at `at` is a match-arm pattern,
/// return `(line, arm_body_sends_a_reply)`. Construction sites (no
/// trailing `=>`) return `None`.
fn arm_at(text: &str, at: usize, variant: &str) -> Option<(usize, bool)> {
    let bytes = text.as_bytes();
    let (c1, _) = next_non_ws(bytes, at + "Command".len())?;
    let (vstart, _) = next_non_ws(bytes, c1 + 2)?;
    let (p, pb) = next_non_ws(bytes, vstart + variant.len())?;
    if pb != b'{' {
        return None;
    }
    let mut i = matching(bytes, p, b'{', b'}') + 1;
    // Unwrap enclosing pattern wrappers like `Ok( … )`.
    while let Some((q, b')')) = next_non_ws(bytes, i) {
        i = q + 1;
    }
    let (a, ab) = next_non_ws(bytes, i)?;
    if ab != b'=' || bytes.get(a + 1) != Some(&b'>') {
        return None;
    }
    let (bstart, bb) = next_non_ws(bytes, a + 2)?;
    let bend = if bb == b'{' {
        matching(bytes, bstart, b'{', b'}')
    } else {
        // Expression arm: runs to the first top-level `,` or the `}`
        // closing the match.
        let mut depth = 0i32;
        let mut j = bstart;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' => depth -= 1,
                b'}' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                b',' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        j
    };
    let body = &text[bstart..bend.min(text.len())];
    let sends = !method_call_occurrences(body, "send").is_empty();
    Some((line_of(text, at), sends))
}

fn collect_commands(f: &FileScan, t: &mut SymbolTable) {
    let text = &f.text;
    let bytes = text.as_bytes();
    let mut enum_spans: Vec<(usize, usize)> = Vec::new();
    let mut variants: Vec<ReplyVariant> = Vec::new();
    for at in ident_occurrences(text, "Command") {
        if ident_ending_before(text, at).as_deref() != Some("enum") {
            continue;
        }
        let Some((open, ob)) = next_non_ws(bytes, at + "Command".len()) else {
            continue;
        };
        if ob != b'{' {
            continue;
        }
        let close = matching(bytes, open, b'{', b'}');
        enum_spans.push((open, close));
        parse_variants(f, text, open, close, &mut variants);
    }
    if variants.is_empty() {
        return;
    }
    // Reply-completeness is checked where the protocol lives: match
    // arms in the module declaring the enum. Construction sites in
    // other modules never destructure, so they are naturally excluded.
    for v in &mut variants {
        for at in path_occurrences(text, "Command", &v.name) {
            if enum_spans.iter().any(|&(o, c)| at > o && at < c) {
                continue;
            }
            if let Some(arm) = arm_at(text, at, &v.name) {
                v.arms.push(arm);
            }
        }
    }
    t.commands.append(&mut variants);
}

const BLOCKING_METHODS: &[&str] = &["recv", "recv_timeout", "join", "lock"];

fn collect_blocking(f: &FileScan, t: &mut SymbolTable) {
    if !scope::REACTOR_FILES.contains(&f.rel.as_str()) {
        return;
    }
    let text = &f.text;
    let bytes = text.as_bytes();
    for m in BLOCKING_METHODS {
        for at in method_call_occurrences(text, m) {
            t.blocking.push(BlockingSite {
                file: f.rel.clone(),
                line: line_of(text, at),
                what: format!(".{m}()"),
            });
        }
    }
    for at in ident_occurrences(text, "sleep") {
        if next_non_ws(bytes, at + "sleep".len()).is_some_and(|(_, b)| b == b'(') {
            t.blocking.push(BlockingSite {
                file: f.rel.clone(),
                line: line_of(text, at),
                what: "sleep".to_string(),
            });
        }
    }
}

fn make(rule: &str, file: &str, line: usize, message: String) -> Violation {
    Violation {
        rule: rule.to_string(),
        file: file.to_string(),
        line,
        message,
    }
}

fn blessed_atomic(file: &str, field: &str) -> bool {
    scope::ATOMIC_ADVISORY_FILES.contains(&file)
        || scope::ATOMIC_ADVISORY_FIELDS
            .iter()
            .any(|&(f, n)| f == file && n == field)
}

/// Rule C-A: `Ordering::Relaxed` is legal only on sites blessed as
/// advisory — values that steer placement or feed dashboards but never
/// the replayed schedule. Everything else, and especially any atomic a
/// second module touches, is a cross-thread handshake and must use
/// Acquire/Release (or SeqCst).
#[must_use]
pub fn atomics_discipline(t: &SymbolTable) -> Vec<Violation> {
    let mut out = Vec::new();
    for a in &t.accesses {
        if !a.relaxed || blessed_atomic(&a.file, &a.field) {
            continue;
        }
        let mut files: BTreeSet<&str> = BTreeSet::new();
        for d in t.fields.iter().filter(|d| d.name == a.field) {
            files.insert(d.file.as_str());
        }
        for x in t.accesses.iter().filter(|x| x.field == a.field) {
            files.insert(x.file.as_str());
        }
        let what = match a.method.as_str() {
            "load" => "load",
            "store" => "store",
            _ => "read-modify-write",
        };
        let message = if files.len() > 1 {
            format!(
                "`Ordering::Relaxed` {what} on atomic `{}`, which is touched from more than one module; a cross-module handshake must use Acquire/Release (or SeqCst) so the flag cannot be reordered past the state it guards",
                a.field
            )
        } else {
            format!(
                "`Ordering::Relaxed` {what} on atomic `{}` is not on the blessed advisory list (worker load gauges, metrics counters, router cursor); use Acquire/Release (or SeqCst), bless the site in the lint's scope table, or waive with a reason",
                a.field
            )
        };
        out.push(make("atomics-discipline", &a.file, a.line, message));
    }
    out
}

/// Rule C-C: reply-completeness on the worker command protocol, plus a
/// ban on unbounded channel construction outside blessed sites.
#[must_use]
pub fn channel_protocol(t: &SymbolTable) -> Vec<Violation> {
    let mut out = Vec::new();
    for c in &t.channels {
        out.push(make(
            "channel-protocol",
            &c.file,
            c.line,
            "unbounded `channel()` constructed outside a blessed site; use a bounded `sync_channel` so a wedged consumer exerts backpressure, or the one-shot `reply_channel()` helper whose protocol bounds it to a single message".to_string(),
        ));
    }
    for v in &t.commands {
        if v.arms.is_empty() {
            out.push(make(
                "channel-protocol",
                &v.file,
                v.line,
                format!(
                    "`Command::{}` carries a one-shot `reply` sender but no match arm in its module ever sends a reply; a dropped reply sender leaves the caller blocked on `recv()` forever",
                    v.name
                ),
            ));
            continue;
        }
        for &(line, sends) in &v.arms {
            if !sends {
                out.push(make(
                    "channel-protocol",
                    &v.file,
                    line,
                    format!(
                        "match arm for `Command::{}` drops its `reply` sender without sending; every arm of a reply-bearing command must reply, or the caller's drain barrier hangs",
                        v.name
                    ),
                ));
            }
        }
    }
    out
}

/// Rule C-R: the epoll event loop must never block — slow work routes
/// through the slow-path thread and replies come back via the
/// `ReplyInjector` mailbox.
#[must_use]
pub fn reactor_nonblocking(t: &SymbolTable) -> Vec<Violation> {
    t.blocking
        .iter()
        .map(|b| {
            make(
                "reactor-nonblocking",
                &b.file,
                b.line,
                format!(
                    "blocking `{}` inside the reactor event-loop module; the loop must stay nonblocking — defer slow work to the slow-path thread and inject replies through `ReplyInjector`",
                    b.what
                ),
            )
        })
        .collect()
}

/// Rule C-U: `unsafe` stays confined to the audited syscall boundary,
/// and every block documents the invariant that makes it sound.
#[must_use]
pub fn unsafe_audit(t: &SymbolTable) -> Vec<Violation> {
    let mut out = Vec::new();
    for u in &t.unsafes {
        if !scope::UNSAFE_ALLOWED_FILES.contains(&u.file.as_str()) {
            out.push(make(
                "unsafe-audit",
                &u.file,
                u.line,
                format!(
                    "`unsafe` outside the audited syscall boundary ({}); move raw operations behind the safe wrappers there",
                    scope::UNSAFE_ALLOWED_FILES.join(", ")
                ),
            ));
        } else if !u.has_safety {
            out.push(make(
                "unsafe-audit",
                &u.file,
                u.line,
                "`unsafe` without a `// SAFETY:` comment on the same line or the three lines above; document the invariant that makes the block sound".to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, src: &str) -> FileScan {
        let cleaned = crate::scan::clean(src);
        FileScan {
            rel: rel.to_string(),
            source: src.to_string(),
            text: crate::scan::mask_tests(&cleaned.text),
        }
    }

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        let scans: Vec<FileScan> = files.iter().map(|(rel, src)| scan(rel, src)).collect();
        SymbolTable::build(&scans)
    }

    #[test]
    fn atomic_decls_and_accesses_are_extracted() {
        let t = table(&[(
            "crates/x/src/a.rs",
            "struct S { flag: AtomicBool }\nstatic SEQ: AtomicU64 = AtomicU64::new(0);\nuse std::sync::atomic::AtomicUsize;\nfn f(s: &S) { s.flag.store(true, Ordering::Release); let v = SEQ.fetch_add(1, Ordering::Relaxed); }\n",
        )]);
        let names: Vec<&str> = t.fields.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["flag", "SEQ"], "imports are not declarations");
        assert_eq!(t.accesses.len(), 2);
        assert_eq!(t.accesses[0].field, "flag");
        assert!(!t.accesses[0].relaxed);
        assert_eq!(t.accesses[1].field, "SEQ");
        assert!(t.accesses[1].relaxed);
    }

    #[test]
    fn non_atomic_homonyms_are_ignored() {
        let t = table(&[(
            "crates/x/src/a.rs",
            "fn f(v: &mut Vec<u32>) { v.swap(0, 1); let s = BTreeMap::new(); s.load(path); }\n",
        )]);
        assert!(t.accesses.is_empty(), "no Ordering argument, no access");
    }

    #[test]
    fn relaxed_on_unblessed_site_is_flagged_and_seqcst_is_not() {
        let t = table(&[(
            "crates/x/src/a.rs",
            "struct S { stop: AtomicBool }\nfn f(s: &S) { s.stop.store(true, Ordering::Relaxed); s.stop.load(Ordering::SeqCst); }\n",
        )]);
        let v = atomics_discipline(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "atomics-discipline");
        assert!(v[0].message.contains("store"));
        assert!(v[0].message.contains("advisory"));
    }

    #[test]
    fn cross_module_relaxed_gets_the_handshake_message() {
        let t = table(&[
            (
                "crates/x/src/a.rs",
                "pub struct S { pub stop: AtomicBool }\nfn halt(s: &S) { s.stop.store(true, Ordering::Relaxed); }\n",
            ),
            (
                "crates/x/src/b.rs",
                "fn poll(s: &S) -> bool { s.stop.load(Ordering::Relaxed) }\n",
            ),
        ]);
        let v = atomics_discipline(&t);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.message.contains("more than one module")));
    }

    #[test]
    fn blessed_files_and_fields_stay_silent() {
        let t = table(&[
            (
                "crates/serve/src/metrics.rs",
                "pub struct Counter(AtomicU64);\nimpl Counter { pub fn add(&self, n: u64) { self.0.fetch_add(n, Ordering::Relaxed); } }\n",
            ),
            (
                "crates/serve/src/worker.rs",
                "struct Shared { backlog: AtomicUsize }\nfn publish(s: &Shared) { s.backlog.store(3, Ordering::Relaxed); }\n",
            ),
        ]);
        assert!(atomics_discipline(&t).is_empty());
    }

    #[test]
    fn unbounded_channel_is_flagged_outside_blessed_fns() {
        let t = table(&[(
            "crates/x/src/a.rs",
            "pub fn reply_channel<T>() -> (Sender<T>, Receiver<T>) {\n    std::sync::mpsc::channel()\n}\nfn firehose() { let (tx, rx) = channel(); let (a, b) = std::sync::mpsc::sync_channel(8); }\n",
        )]);
        let v = channel_protocol(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("unbounded"));
    }

    const WORKER_LOOP: &str = "pub enum Command {\n    Tick { reply: Sender<u64> },\n    Drain { reply: Sender<u64> },\n    Shutdown,\n}\nfn run(rx: &Receiver<Command>) {\n    loop {\n        match rx.recv() {\n            Ok(Command::Tick { reply }) => {\n                let _ = reply.send(1);\n            }\n            Ok(Command::Drain { .. }) => {}\n            Ok(Command::Shutdown) | Err(_) => break,\n        }\n    }\n}\n";

    #[test]
    fn dropped_reply_sender_in_an_arm_is_flagged() {
        let t = table(&[("crates/x/src/w.rs", WORKER_LOOP)]);
        let v = channel_protocol(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`Command::Drain`"));
        assert!(v[0].message.contains("drops its `reply` sender"));
        assert_eq!(v[0].line, 12);
    }

    #[test]
    fn reply_variant_with_no_arm_at_all_is_flagged_at_its_declaration() {
        let src = "pub enum Command {\n    Stats { reply: Sender<u64> },\n    Shutdown,\n}\nfn run(rx: &Receiver<Command>) {\n    loop {\n        match rx.recv() {\n            Ok(Command::Shutdown) | Err(_) => break,\n            _ => {}\n        }\n    }\n}\n";
        let t = table(&[("crates/x/src/w.rs", src)]);
        let v = channel_protocol(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no match arm"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn complete_reply_protocol_is_clean() {
        let src = WORKER_LOOP.replace(
            "Ok(Command::Drain { .. }) => {}",
            "Ok(Command::Drain { reply }) => {\n                let _ = reply.send(0);\n            }",
        );
        let t = table(&[("crates/x/src/w.rs", &src)]);
        assert!(channel_protocol(&t).is_empty());
    }

    #[test]
    fn construction_sites_are_not_mistaken_for_arms() {
        let src = "pub enum Command {\n    Tick { reply: Sender<u64> },\n}\nfn call(w: &SyncSender<Command>, tx: Sender<u64>) {\n    let _ = w.send(Command::Tick { reply: tx });\n}\nfn run(rx: &Receiver<Command>) {\n    match rx.recv() {\n        Ok(Command::Tick { reply }) => drop(reply.send(9)),\n        Err(_) => {}\n    }\n}\n";
        let t = table(&[("crates/x/src/w.rs", src)]);
        assert_eq!(t.commands.len(), 1);
        assert_eq!(t.commands[0].arms.len(), 1, "the construction is skipped");
        assert!(channel_protocol(&t).is_empty());
    }

    #[test]
    fn reactor_blocking_calls_are_flagged_only_in_reactor_scope() {
        let body = "fn event_loop(rx: &Receiver<u64>, m: &Mutex<u32>) {\n    let _ = rx.recv();\n    let _ = m.lock();\n    std::thread::sleep(d);\n    h.join();\n}\n";
        let t = table(&[
            ("crates/net/src/reactor.rs", body),
            ("crates/serve/src/service.rs", body),
        ]);
        let v = reactor_nonblocking(&t);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|v| v.file == "crates/net/src/reactor.rs"));
    }

    #[test]
    fn poller_wait_is_not_a_blocking_violation() {
        let t = table(&[(
            "crates/net/src/reactor.rs",
            "fn turn(p: &Poller) { let n = p.wait(&mut buf, timeout); }\n",
        )]);
        assert!(reactor_nonblocking(&t).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_and_without_safety_comment() {
        let t = table(&[
            (
                "crates/serve/src/service.rs",
                "fn f(xs: &[u8]) -> u8 { unsafe { *xs.get_unchecked(0) } }\n",
            ),
            (
                "crates/net/src/sys.rs",
                "pub fn close_fd(fd: i32) {\n    let _ = unsafe { close(fd) };\n}\n// SAFETY: read takes any pointer/length pair; ours is a valid slice.\npub fn read_fd(fd: i32) {\n    let _ = unsafe { read(fd) };\n}\n",
            ),
        ]);
        let v = unsafe_audit(&t);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(
            v[0].file == "crates/serve/src/service.rs"
                || v[1].file == "crates/serve/src/service.rs"
        );
        assert!(v
            .iter()
            .any(|v| v.message.contains("outside the audited syscall boundary")));
        assert!(v
            .iter()
            .any(|v| v.file == "crates/net/src/sys.rs" && v.message.contains("SAFETY")));
    }

    #[test]
    fn safety_comments_in_doc_text_do_not_mask_real_code() {
        // The cleaner blanks comments, so `unsafe` in a doc comment is
        // never a site; and the SAFETY window reads the raw source.
        let t = table(&[(
            "crates/net/src/sys.rs",
            "/// Calling `unsafe` code here would be bad.\npub fn ok() {}\n",
        )]);
        assert!(t.unsafes.is_empty());
    }
}
