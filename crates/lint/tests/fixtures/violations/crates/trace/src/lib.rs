//! Determinism violations in the trace record path: a wall-clock read
//! (timestamps must come from the caller's engine clock) and a
//! `format!` allocation (rendering belongs in the drain-time exporter).
pub struct Event {
    pub time: f64,
    pub label: String,
}

pub fn record(buf: &mut Vec<Event>, task: u64) {
    let time = std::time::Instant::now().elapsed().as_secs_f64();
    buf.push(Event {
        time,
        label: format!("task-{task}"),
    });
}
