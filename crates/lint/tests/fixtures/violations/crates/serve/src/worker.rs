//! Concurrency violations in the worker module: a reply-bearing
//! command protocol with a dropped reply sender (the mutation the
//! `channel-protocol` rule must catch), a variant nobody ever answers,
//! an unbounded channel built outside any blessed constructor, and a
//! `Relaxed` read of the cross-module shutdown flag.
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};

pub static SHUTTING_DOWN: AtomicBool = AtomicBool::new(false);

pub enum Command {
    Tick { reply: Sender<u64> },
    Drain { reply: Sender<u64> },
    Stats { reply: Sender<u64> },
}

pub struct Worker {
    steps: u64,
}

impl Worker {
    /// `Tick` replies; `Drain` destructures its reply sender and then
    /// drops it on the floor — the caller's drain barrier hangs.
    /// `Stats` has no arm anywhere in this module.
    pub fn run(&mut self, rx: &Receiver<Command>) {
        // A worker that polls the shutdown flag with `Relaxed` can run
        // one stale round after the service raised it.
        while !SHUTTING_DOWN.load(Ordering::Relaxed) {
            let Ok(cmd) = rx.recv() else { return };
            match cmd {
                Command::Tick { reply } => {
                    self.steps += 1;
                    let _ = reply.send(self.steps);
                }
                Command::Drain { reply } => {
                    let _ = reply;
                    self.steps = 0;
                }
                _ => {}
            }
        }
    }
}

/// Unbounded channel construction outside any blessed site: a wedged
/// consumer lets this queue grow without backpressure.
pub fn open_firehose() -> (Sender<u64>, Receiver<u64>) {
    channel()
}
