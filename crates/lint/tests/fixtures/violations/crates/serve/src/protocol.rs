//! Panic-freedom violations plus one malformed and one valid waiver.
pub fn decode(line: &str) -> u8 {
    let bytes = line.as_bytes();
    // Slice index and unwrap: two `panic` findings.
    let first = bytes[0];
    let parsed: u8 = line.parse().unwrap();
    first + parsed
}

// dvfs-lint: allow(panic)
pub fn shouting(line: &str) -> u8 {
    line.parse().expect("caller validated")
}

pub fn waived(line: &str) -> u8 {
    // dvfs-lint: allow(panic) fixture: demonstrates a correctly waived expect
    line.parse().expect("caller validated")
}
