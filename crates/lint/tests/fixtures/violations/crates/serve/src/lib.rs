//! Serve fixture with lock-order, panic, and waiver violations.
pub mod protocol;
pub mod service;
