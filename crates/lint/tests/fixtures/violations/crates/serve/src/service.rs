//! Engine-ownership violation: an engine shared behind a mutex plus a
//! call to a retired engine-lock helper.
use std::sync::{Mutex, MutexGuard};

pub struct Engine {
    pub steps: u64,
}

pub struct Shard {
    engine: Mutex<Engine>,
}

impl Shard {
    fn grab(&self) -> MutexGuard<'_, Engine> {
        self.engine.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

pub fn transfer(a: &Shard, b: &Shard) -> u64 {
    let ga = a.grab();
    let gb = b.lock_engine();
    ga.steps + gb.steps
}
