//! Engine-ownership violation: an engine shared behind a mutex plus a
//! call to a retired engine-lock helper.
use std::sync::{Mutex, MutexGuard};

pub struct Engine {
    pub steps: u64,
}

pub struct Shard {
    engine: Mutex<Engine>,
}

impl Shard {
    fn grab(&self) -> MutexGuard<'_, Engine> {
        self.engine.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

pub fn transfer(a: &Shard, b: &Shard) -> u64 {
    let ga = a.grab();
    let gb = b.lock_engine();
    ga.steps + gb.steps
}

/// Migration-protocol violation: calling the engine migration
/// primitives from outside the worker module instead of sending
/// `Command::Steal`/`Command::Inject`.
pub fn rebalance(hot: &Shard, cold: &Shard) {
    let stolen = hot.grab().steal_longest(4);
    for task in stolen {
        cold.grab().push_migrated(task);
    }
}

/// Atomics-discipline violation: the shutdown flag lives in the worker
/// module and is read there too, yet this store is `Relaxed` — the
/// cross-module handshake can be reordered past the state it guards.
pub fn begin_shutdown() {
    crate::worker::SHUTTING_DOWN.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Unsafe-audit violation: a raw-pointer read outside the audited
/// syscall boundary.
pub fn first_unchecked(v: &[u64]) -> u64 {
    unsafe { *v.as_ptr() }
}
