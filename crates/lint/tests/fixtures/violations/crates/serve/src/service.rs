//! Lock-order violation: two engine-lock sites in one function.
use std::sync::{Mutex, MutexGuard};

pub struct Shard {
    engine: Mutex<u64>,
}

impl Shard {
    fn lock_engine(&self) -> MutexGuard<'_, u64> {
        self.engine.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

pub fn transfer(a: &Shard, b: &Shard) -> u64 {
    let ga = a.lock_engine();
    let gb = b.lock_engine();
    *ga + *gb
}
