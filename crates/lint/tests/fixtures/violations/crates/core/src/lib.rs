//! Determinism violations: hash container + ambient RNG.
use std::collections::HashMap;

pub fn order_sensitive() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn roll() -> u64 {
    let _rng = thread_rng();
    4
}

fn thread_rng() -> u64 {
    0
}
