//! Sim fixture with a wall-clock leak in the engine.
pub mod engine;
