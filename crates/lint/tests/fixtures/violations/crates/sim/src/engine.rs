//! Determinism violation: wall clock inside the virtual-time engine.
pub fn now_s() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
