//! Reactor event loop that blocks: a channel `recv`, a mutex `lock`,
//! and a sleep right in the dispatch path — each one stalls every
//! connection the loop owns.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::time::Duration;

pub struct Reactor {
    commands: Receiver<u64>,
    shared: Mutex<Vec<u64>>,
}

impl Reactor {
    pub fn event_loop(&self) {
        loop {
            let Ok(cmd) = self.commands.recv() else {
                return;
            };
            if let Ok(mut shared) = self.shared.lock() {
                shared.push(cmd);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
