//! The syscall boundary — `unsafe` is allowed here, but this block
//! ships without the `// SAFETY:` comment documenting its invariant.

extern "C" {
    fn raw_close(fd: i32) -> i32;
}

pub fn close(fd: i32) -> i32 {
    unsafe { raw_close(fd) }
}
