//! Panic-freedom violation in the reactor: the whole crate is wire
//! path, so an unwrap on peer-controlled bytes is a `panic` finding.
pub fn first_line(buf: &[u8]) -> &[u8] {
    let pos = buf.iter().position(|&b| b == b'\n').unwrap();
    let (line, _) = buf.split_at(pos);
    line
}
