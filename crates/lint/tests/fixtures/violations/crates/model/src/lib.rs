//! Clean model so the layering chain is the only model finding.
pub fn nothing() {}
