//! Clean serve fixture.
pub mod clock;
pub mod protocol;
pub mod service;
