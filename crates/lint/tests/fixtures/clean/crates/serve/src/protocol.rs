//! Clean wire path: no panicking constructs, fallbacks everywhere.
pub fn encode(v: Option<&str>) -> String {
    v.map(str::to_string)
        .unwrap_or_else(|| "{\"ok\":false}".to_string())
}

pub fn first(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_and_index() {
        let v = vec![1u8];
        assert_eq!(v[0], super::first(&v).unwrap());
    }
}
