//! The blessed clock seam: the one raw wall-clock read.
use std::time::Instant;

pub fn wall_now() -> Instant {
    Instant::now()
}
