//! Clean lock discipline: one lock at a time, or the blessed helper.
use std::sync::{Mutex, MutexGuard};

pub struct Shard {
    engine: Mutex<u64>,
}

impl Shard {
    fn lock_engine(&self) -> MutexGuard<'_, u64> {
        self.engine.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

pub struct Scheduler {
    shards: Vec<Shard>,
}

impl Scheduler {
    fn lock_engines_ascending(&self) -> Vec<MutexGuard<'_, u64>> {
        self.shards.iter().map(Shard::lock_engine).collect()
    }

    pub fn tick(&self) {
        for sh in &self.shards {
            let mut g = sh.lock_engine();
            *g += 1;
        }
    }

    pub fn drain(&self) -> u64 {
        self.lock_engines_ascending().iter().map(|g| **g).sum()
    }
}
