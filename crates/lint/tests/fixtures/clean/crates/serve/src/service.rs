//! Clean engine ownership: the service holds no engine — it routes
//! commands to worker-owned shards over channels; its own mutexes
//! guard non-engine bookkeeping only.
use std::sync::mpsc::SyncSender;
use std::sync::Mutex;

pub enum Command {
    Tick,
    Drain,
}

pub struct Scheduler {
    workers: Vec<SyncSender<Command>>,
    ids: Mutex<Vec<u64>>,
}

impl Scheduler {
    pub fn tick(&self) {
        for tx in &self.workers {
            if tx.send(Command::Tick).is_err() {
                return;
            }
        }
    }

    pub fn drain(&self) {
        for tx in &self.workers {
            if tx.send(Command::Drain).is_err() {
                return;
            }
        }
        if let Ok(mut ids) = self.ids.lock() {
            ids.clear();
        }
    }
}
