//! Clean engine ownership: the service holds no engine — it routes
//! commands to worker-owned shards over channels; its own mutexes
//! guard non-engine bookkeeping only.
//!
//! Concurrency-clean shapes on top: the blessed advisory
//! `router_cursor` (`Relaxed` is legal there) and a SeqCst stop
//! handshake on the same `stop` flag the worker module reads.
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Mutex;

pub enum Command {
    Tick,
    Drain,
}

pub struct Scheduler {
    workers: Vec<SyncSender<Command>>,
    ids: Mutex<Vec<u64>>,
    /// Blessed advisory counter: spreads untargeted submissions
    /// round-robin; a stale read only skews placement, never replay.
    router_cursor: AtomicUsize,
    /// Cross-module shutdown handshake — the worker module reads this,
    /// so it must be SeqCst (or Acquire/Release), never `Relaxed`.
    stop: AtomicBool,
}

impl Scheduler {
    pub fn route(&self) -> usize {
        self.router_cursor.fetch_add(1, Ordering::Relaxed) % self.workers.len().max(1)
    }

    pub fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    pub fn tick(&self) {
        for tx in &self.workers {
            if tx.send(Command::Tick).is_err() {
                return;
            }
        }
    }

    pub fn drain(&self) {
        for tx in &self.workers {
            if tx.send(Command::Drain).is_err() {
                return;
            }
        }
        if let Ok(mut ids) = self.ids.lock() {
            ids.clear();
        }
    }
}
