//! The one module allowed to own engines — and, per the scope
//! exemption, the one place a `Mutex<Engine>` would not be flagged
//! (this file deliberately carries one so the fixture pins the
//! exemption, not just the absence of findings).
use std::sync::Mutex;

pub struct Engine {
    pub steps: u64,
}

pub struct Worker {
    engine: Engine,
    parked: Mutex<Engine>,
}

impl Worker {
    pub fn tick(&mut self) {
        self.engine.steps += 1;
    }

    pub fn swap_in_parked(&mut self) {
        if let Ok(mut parked) = self.parked.lock() {
            std::mem::swap(&mut self.engine, &mut parked);
        }
    }
}
