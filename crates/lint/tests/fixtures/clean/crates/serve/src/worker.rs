//! The one module allowed to own engines — and, per the scope
//! exemption, the one place a `Mutex<Engine>` would not be flagged
//! (this file deliberately carries one so the fixture pins the
//! exemption, not just the absence of findings).
//!
//! It also carries the clean shapes for the concurrency rules: a
//! reply-bearing `Command` protocol whose every arm sends, the blessed
//! `reply_channel` constructor, and a blessed advisory `Relaxed` load
//! gauge (`backlog`).
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

pub struct Engine {
    pub steps: u64,
}

/// The worker command protocol: both variants carry a one-shot reply
/// sender, and the match loop below answers every arm.
pub enum Command {
    Stats { reply: Sender<u64> },
    Drain { reply: Sender<u64> },
}

/// The one blessed construction site for an unbounded channel: the
/// reply protocol guarantees at most one message ever crosses it.
pub fn reply_channel() -> (Sender<u64>, Receiver<u64>) {
    channel()
}

pub struct Worker {
    engine: Engine,
    parked: Mutex<Engine>,
    /// Advisory load gauge: placement hints only, never the replayed
    /// schedule — the blessed site for `Ordering::Relaxed`.
    backlog: AtomicUsize,
}

impl Worker {
    pub fn tick(&mut self) {
        self.engine.steps += 1;
        self.backlog.store(self.engine.steps as usize, Ordering::Relaxed);
    }

    pub fn backlog_hint(&self) -> usize {
        self.backlog.load(Ordering::Relaxed)
    }

    /// The stop flag is a cross-module handshake (the service raises
    /// it), so it must be read with SeqCst — the clean counterpart of
    /// the `atomics-discipline` violation fixture.
    pub fn should_stop(stop: &AtomicBool) -> bool {
        stop.load(Ordering::SeqCst)
    }

    /// The command loop: every reply-bearing arm sends.
    pub fn run(&mut self, rx: &Receiver<Command>) {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                Command::Stats { reply } => {
                    let _ = reply.send(self.engine.steps);
                }
                Command::Drain { reply } => {
                    let drained = self.engine.steps;
                    self.engine.steps = 0;
                    let _ = reply.send(drained);
                }
            }
        }
    }

    /// The migration primitives are sound here — this thread owns the
    /// engine — so the `migration-protocol` scope exemption must keep
    /// these idents finding-free.
    pub fn steal(&mut self, max: u64) -> u64 {
        let stolen = self.steal_longest(max);
        self.push_migrated(stolen);
        stolen
    }

    fn steal_longest(&mut self, max: u64) -> u64 {
        let stolen = self.engine.steps.min(max);
        self.engine.steps -= stolen;
        stolen
    }

    fn push_migrated(&mut self, steps: u64) {
        self.engine.steps += steps;
    }

    pub fn swap_in_parked(&mut self) {
        if let Ok(mut parked) = self.parked.lock() {
            std::mem::swap(&mut self.engine, &mut parked);
        }
    }
}
