//! The one module allowed to own engines — and, per the scope
//! exemption, the one place a `Mutex<Engine>` would not be flagged
//! (this file deliberately carries one so the fixture pins the
//! exemption, not just the absence of findings).
use std::sync::Mutex;

pub struct Engine {
    pub steps: u64,
}

pub struct Worker {
    engine: Engine,
    parked: Mutex<Engine>,
}

impl Worker {
    pub fn tick(&mut self) {
        self.engine.steps += 1;
    }

    /// The migration primitives are sound here — this thread owns the
    /// engine — so the `migration-protocol` scope exemption must keep
    /// these idents finding-free.
    pub fn steal(&mut self, max: u64) -> u64 {
        let stolen = self.steal_longest(max);
        self.push_migrated(stolen);
        stolen
    }

    fn steal_longest(&mut self, max: u64) -> u64 {
        let stolen = self.engine.steps.min(max);
        self.engine.steps -= stolen;
        stolen
    }

    fn push_migrated(&mut self, steps: u64) {
        self.engine.steps += steps;
    }

    pub fn swap_in_parked(&mut self) {
        if let Ok(mut parked) = self.parked.lock() {
            std::mem::swap(&mut self.engine, &mut parked);
        }
    }
}
