//! Clean: deterministic containers only.
use std::collections::BTreeMap;

pub fn lookup() -> BTreeMap<u64, u64> {
    BTreeMap::new()
}
