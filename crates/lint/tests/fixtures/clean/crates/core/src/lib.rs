//! Clean core fixture: BTreeMap in production code, a reasoned waiver,
//! and hash containers confined to test code.
use std::collections::BTreeMap;

pub struct Policy {
    by_id: BTreeMap<u64, u64>,
    // dvfs-lint: allow(determinism) membership-only set, never iterated
    scratch: std::collections::HashSet<u64>,
}

pub fn fresh() -> Policy {
    Policy {
        by_id: BTreeMap::new(),
        scratch: Default::default(),
    }
}

pub fn touch(p: &mut Policy) {
    p.by_id.insert(1, 2);
    p.scratch.insert(3);
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash_and_clock() {
        let mut m = HashMap::new();
        m.insert(1u64, std::time::Instant::now());
        assert_eq!(m.len(), 1);
    }
}
