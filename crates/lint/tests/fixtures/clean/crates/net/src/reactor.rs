//! The reactor event loop stays nonblocking: slow work is deferred and
//! replies come back through a mailbox. The one mutex here is a leaf
//! swap, carried under a reasoned waiver so the fixture pins the
//! waiver path of `reactor-nonblocking`, not just silence.
use std::sync::{Mutex, PoisonError};

pub struct Mailbox {
    queue: Mutex<Vec<u64>>,
}

impl Mailbox {
    pub fn take(&self) -> Vec<u64> {
        let mut queue = self
            .queue
            // dvfs-lint: allow(reactor-nonblocking) leaf mailbox mutex held only to swap the Vec out
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *queue)
    }
}
