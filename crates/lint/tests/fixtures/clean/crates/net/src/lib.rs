//! Clean reactor fixture: the whole crate is wire path, so every
//! fallible step is handled without `unwrap`/`expect`/indexing.
pub fn split_line(buf: &[u8]) -> Option<(&[u8], &[u8])> {
    let pos = buf.iter().position(|&b| b == b'\n')?;
    let (line, rest) = buf.split_at(pos);
    Some((line, rest.get(1..).unwrap_or(&[])))
}

pub fn first_byte(buf: &[u8]) -> u8 {
    buf.first().copied().unwrap_or(0)
}
