//! The audited syscall boundary: the one module (with `lib.rs`) where
//! `unsafe` is allowed — and every block carries the `// SAFETY:`
//! comment the `unsafe-audit` rule demands.

extern "C" {
    fn raw_close(fd: i32) -> i32;
}

pub fn close(fd: i32) -> i32 {
    // SAFETY: the syscall takes no pointers; a stale fd is answered
    // with -1/EBADF rather than touching memory.
    unsafe { raw_close(fd) }
}
