//! Clean sim fixture.
pub mod engine;
