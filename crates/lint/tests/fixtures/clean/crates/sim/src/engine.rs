//! Clean engine: virtual time only, deterministic containers.
use std::collections::BTreeMap;

pub struct Engine {
    pub now: f64,
    pub jobs: BTreeMap<u64, u64>,
}

pub fn advance(e: &mut Engine, dt: f64) {
    e.now += dt;
}
