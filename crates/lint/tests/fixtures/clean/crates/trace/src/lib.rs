//! Clean trace fixture: the record path stores raw payloads and never
//! formats or reads a clock; rendering happens in `export.rs`, which is
//! outside the record-path scope.
pub mod export;
pub mod ring;

pub struct Event {
    pub time: f64,
    pub task: u64,
}

pub fn record(ring: &mut ring::Ring, time: f64, task: u64) {
    ring.push(Event { time, task });
}
