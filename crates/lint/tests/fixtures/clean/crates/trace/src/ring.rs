//! Overwrite-oldest ring: push is allocation-free after warm-up.
use crate::Event;

pub struct Ring {
    buf: std::collections::VecDeque<Event>,
    capacity: usize,
    pub dropped: u64,
}

impl Ring {
    pub fn new(capacity: usize) -> Self {
        Ring {
            buf: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    pub fn push(&mut self, ev: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}
