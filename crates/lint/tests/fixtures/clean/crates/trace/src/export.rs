//! Drain-time rendering may format freely: this file is deliberately
//! outside the record-path scope.
use crate::Event;

pub fn jsonl_line(ev: &Event) -> String {
    format!("{{\"t\":{},\"task\":{}}}", ev.time, ev.task)
}
