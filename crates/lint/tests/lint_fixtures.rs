//! Fixture-based end-to-end tests: a passing mini-workspace and a
//! deliberately broken one (one violation per rule family), exercising
//! waiver parsing, missing-reason rejection, test-code masking, and the
//! `--json` report shape.

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn clean_fixture_is_clean() {
    let report = dvfs_lint::run(&fixture("clean"));
    assert!(
        report.is_clean(),
        "expected no violations, got:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned >= 8, "walked {}", report.files_scanned);
    // The reasoned waivers were applied, not ignored: the HashSet in
    // core and the leaf mailbox mutex in the reactor.
    assert_eq!(report.waivers.len(), 2);
    assert!(report.waivers.iter().any(|w| w.rule == "determinism"
        && w.file == "crates/core/src/lib.rs"
        && w.reason == "membership-only set, never iterated"));
    assert!(report
        .waivers
        .iter()
        .any(|w| w.rule == "reactor-nonblocking"
            && w.file == "crates/net/src/reactor.rs"
            && w.reason.contains("leaf mailbox mutex")));
}

#[test]
fn violating_fixture_trips_every_rule_family() {
    let report = dvfs_lint::run(&fixture("violations"));
    let rules: std::collections::BTreeSet<&str> =
        report.violations.iter().map(|v| v.rule.as_str()).collect();
    assert_eq!(
        rules.into_iter().collect::<Vec<_>>(),
        vec![
            "atomics-discipline",
            "channel-protocol",
            "determinism",
            "engine-ownership",
            "layering",
            "migration-protocol",
            "panic",
            "reactor-nonblocking",
            "unsafe-audit",
            "waiver"
        ],
        "full report:\n{}",
        report.render_text()
    );
}

#[test]
fn violating_fixture_pins_findings_to_files() {
    let report = dvfs_lint::run(&fixture("violations"));
    let has = |rule: &str, file: &str, needle: &str| {
        report
            .violations
            .iter()
            .any(|v| v.rule == rule && v.file == file && v.message.contains(needle))
    };
    // D: hash container + ambient RNG in core, wall clock in the engine.
    assert!(has("determinism", "crates/core/src/lib.rs", "`HashMap`"));
    assert!(has("determinism", "crates/core/src/lib.rs", "`thread_rng`"));
    assert!(has(
        "determinism",
        "crates/sim/src/engine.rs",
        "`Instant::now()`"
    ));
    // D: wall clock and string formatting in the trace record path.
    assert!(has(
        "determinism",
        "crates/trace/src/lib.rs",
        "`Instant::now()`"
    ));
    assert!(has("determinism", "crates/trace/src/lib.rs", "`format!`"));
    // E: a mutexed engine and a retired engine-lock helper.
    assert!(has(
        "engine-ownership",
        "crates/serve/src/service.rs",
        "`Mutex<\u{2026}Engine\u{2026}>`"
    ));
    assert!(has(
        "engine-ownership",
        "crates/serve/src/service.rs",
        "`lock_engine` is retired"
    ));
    // M: migration primitives called outside the worker module.
    assert!(has(
        "migration-protocol",
        "crates/serve/src/service.rs",
        "`steal_longest`"
    ));
    assert!(has(
        "migration-protocol",
        "crates/serve/src/service.rs",
        "`push_migrated`"
    ));
    // A: dvfs-core -> dvfs-sim over a normal dep edge.
    assert!(has(
        "layering",
        "crates/core/Cargo.toml",
        "dvfs-core -> dvfs-sim"
    ));
    // A: the trace bus must not depend on anything in the workspace.
    assert!(has(
        "layering",
        "crates/trace/Cargo.toml",
        "dvfs-trace -> dvfs-core"
    ));
    // A: the reactor must not reach back into the service.
    assert!(has(
        "layering",
        "crates/net/Cargo.toml",
        "dvfs-net -> dvfs-serve"
    ));
    // P: slice index, unwrap, and the expect the malformed waiver fails
    // to cover.
    assert!(has("panic", "crates/serve/src/protocol.rs", "index"));
    assert!(has("panic", "crates/serve/src/protocol.rs", "`.unwrap(…)`"));
    assert!(has("panic", "crates/serve/src/protocol.rs", "`.expect(…)`"));
    // P: the panic rule covers the whole reactor crate by directory.
    assert!(has("panic", "crates/net/src/lib.rs", "`.unwrap(…)`"));
    // Waiver rule: `allow(panic)` with no reason.
    assert!(has(
        "waiver",
        "crates/serve/src/protocol.rs",
        "missing a reason"
    ));
    // C-A: the Relaxed read of the cross-module shutdown flag, plus its
    // store on the service side (see the mutation-check test below).
    assert!(has(
        "atomics-discipline",
        "crates/serve/src/worker.rs",
        "touched from more than one module"
    ));
    // C-C: a reply variant no arm ever answers, and the raw unbounded
    // channel outside any blessed constructor.
    assert!(has(
        "channel-protocol",
        "crates/serve/src/worker.rs",
        "no match arm in its module ever sends a reply"
    ));
    assert!(has(
        "channel-protocol",
        "crates/serve/src/worker.rs",
        "unbounded `channel()`"
    ));
    // C-R: all three blocking shapes inside the event loop.
    assert!(has(
        "reactor-nonblocking",
        "crates/net/src/reactor.rs",
        "`.recv()`"
    ));
    assert!(has(
        "reactor-nonblocking",
        "crates/net/src/reactor.rs",
        "`.lock()`"
    ));
    assert!(has(
        "reactor-nonblocking",
        "crates/net/src/reactor.rs",
        "`sleep`"
    ));
    // C-U: unsafe off the allowlist, and on-allowlist but undocumented.
    assert!(has(
        "unsafe-audit",
        "crates/serve/src/service.rs",
        "outside the audited syscall boundary"
    ));
    assert!(has(
        "unsafe-audit",
        "crates/net/src/sys.rs",
        "without a `// SAFETY:` comment"
    ));
}

/// The acceptance-criteria mutation checks: a deliberately dropped
/// reply sender must be a `channel-protocol` finding, and a `Relaxed`
/// store on a cross-module shutdown flag must be an
/// `atomics-discipline` finding — both pinned to their exact lines so
/// a rule that silently stops matching fails loudly here.
#[test]
fn mutation_checks_dropped_reply_and_relaxed_shutdown_store() {
    let report = dvfs_lint::run(&fixture("violations"));
    // worker.rs:35 — `Command::Drain { reply }` destructured, never sent.
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "channel-protocol"
                && v.file == "crates/serve/src/worker.rs"
                && v.line == 35
                && v.message
                    .contains("drops its `reply` sender without sending")),
        "dropped reply sender not caught:\n{}",
        report.render_text()
    );
    // service.rs:39 — `SHUTTING_DOWN.store(true, Ordering::Relaxed)`.
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "atomics-discipline"
                && v.file == "crates/serve/src/service.rs"
                && v.line == 39
                && v.message.contains("store")
                && v.message.contains("SHUTTING_DOWN")),
        "Relaxed shutdown store not caught:\n{}",
        report.render_text()
    );
}

#[test]
fn reasoned_waiver_suppresses_and_is_reported() {
    let report = dvfs_lint::run(&fixture("violations"));
    // The correctly waived expect in `waived()` must not be a violation…
    let waived_line = 17;
    assert!(
        !report
            .violations
            .iter()
            .any(|v| v.rule == "panic" && v.line == waived_line),
        "waived expect leaked:\n{}",
        report.render_text()
    );
    // …and the waiver shows up in the report with its reason.
    assert!(report.waivers.iter().any(|w| w.rule == "panic"
        && w.file == "crates/serve/src/protocol.rs"
        && w.reason.contains("correctly waived")));
}

#[test]
fn json_report_carries_rule_ids_and_summary() {
    let report = dvfs_lint::run(&fixture("violations"));
    let json = report.to_json();
    for rule in [
        "determinism",
        "engine-ownership",
        "layering",
        "panic",
        "waiver",
        "atomics-discipline",
        "channel-protocol",
        "reactor-nonblocking",
        "unsafe-audit",
    ] {
        assert!(
            json.contains(&format!("\"rule\":\"{rule}\"")),
            "missing {rule} in {json}"
        );
    }
    assert!(json.contains("\"summary\":{\"violations\":"));
    assert!(json.contains("\"waivers\":"));
    assert!(json.contains("\"files_scanned\":"));
    // Message text is JSON-escaped (backticks fine, quotes escaped).
    assert!(!json.contains('\n'));

    let clean = dvfs_lint::run(&fixture("clean")).to_json();
    assert!(clean.starts_with("{\"violations\":[]"));
}
