//! Prometheus text exposition (format version 0.0.4).
//!
//! A tiny, dependency-free data model plus a renderer. The serve
//! crate's metrics `Registry` adapts itself into [`PromFamily`] values
//! and renders through [`render`]; nothing here knows about the
//! registry, so the exporter is reusable for trace-derived metrics or
//! ad-hoc tooling.
//!
//! The format is the classic one scraped at `/metrics`:
//!
//! ```text
//! # HELP dvfs_completed Tasks completed.
//! # TYPE dvfs_completed counter
//! dvfs_completed{shard="0"} 42
//! ```

/// The HTTP `Content-Type` Prometheus expects for this exposition
/// format.
pub const TEXT_FORMAT: &str = "text/plain; version=0.0.4";

/// One labelled sample of a counter or gauge family.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Label pairs, rendered in the given order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// One labelled histogram series: cumulative `le` buckets plus the
/// conventional `_sum` / `_count` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PromHistogram {
    /// Label pairs shared by every sample of the series (the `le`
    /// label is appended per bucket).
    pub labels: Vec<(String, String)>,
    /// `(upper_bound, cumulative_count)` pairs in ascending bound
    /// order. A final `+Inf` bucket is added by the renderer.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of observed values.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

/// The value side of a metric family.
#[derive(Debug, Clone, PartialEq)]
pub enum PromValue {
    /// Monotonic counter samples.
    Counter(Vec<PromSample>),
    /// Point-in-time gauge samples.
    Gauge(Vec<PromSample>),
    /// Histogram series.
    Histogram(Vec<PromHistogram>),
}

/// A named metric family with its help text.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    /// Metric name; sanitize with [`sanitize_name`] first if it may
    /// contain dots or dashes.
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// The samples.
    pub value: PromValue,
}

/// Map an internal metric name onto the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: dots and dashes become underscores, a
/// leading digit gets a `_` prefix.
#[must_use]
pub fn sanitize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 1);
    for (i, c) in raw.chars().enumerate() {
        let ok = c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn labels_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", label_value(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn labels_with_le(labels: &[(String, String)], le: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push(("le".to_string(), le.to_string()));
    labels_block(&all)
}

/// Render families as one exposition document (trailing newline).
#[must_use]
pub fn render(families: &[PromFamily]) -> String {
    let mut out = String::new();
    for fam in families {
        let name = &fam.name;
        let kind = match fam.value {
            PromValue::Counter(_) => "counter",
            PromValue::Gauge(_) => "gauge",
            PromValue::Histogram(_) => "histogram",
        };
        out.push_str(&format!("# HELP {name} {}\n", fam.help.replace('\n', " ")));
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        match &fam.value {
            PromValue::Counter(samples) | PromValue::Gauge(samples) => {
                for s in samples {
                    out.push_str(&format!("{name}{} {}\n", labels_block(&s.labels), s.value));
                }
            }
            PromValue::Histogram(series) => {
                for h in series {
                    for (bound, cum) in &h.buckets {
                        out.push_str(&format!(
                            "{name}_bucket{} {cum}\n",
                            labels_with_le(&h.labels, &format!("{bound}"))
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{} {}\n",
                        labels_with_le(&h.labels, "+Inf"),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        labels_block(&h.labels),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        labels_block(&h.labels),
                        h.count
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("queue_depth.shard0"), "queue_depth_shard0");
        assert_eq!(sanitize_name("rtt-ack_us"), "rtt_ack_us");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn renders_counters_and_gauges() {
        let fams = vec![
            PromFamily {
                name: "dvfs_completed".to_string(),
                help: "Tasks completed.".to_string(),
                value: PromValue::Counter(vec![PromSample {
                    labels: vec![("shard".to_string(), "0".to_string())],
                    value: 42.0,
                }]),
            },
            PromFamily {
                name: "dvfs_queue_depth".to_string(),
                help: "Queue depth.".to_string(),
                value: PromValue::Gauge(vec![PromSample {
                    labels: vec![],
                    value: -3.0,
                }]),
            },
        ];
        let text = render(&fams);
        assert!(text.contains("# TYPE dvfs_completed counter\n"));
        assert!(text.contains("dvfs_completed{shard=\"0\"} 42\n"));
        assert!(text.contains("# TYPE dvfs_queue_depth gauge\n"));
        assert!(text.contains("dvfs_queue_depth -3\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn renders_histogram_with_inf_bucket_sum_and_count() {
        let fams = vec![PromFamily {
            name: "dvfs_rtt_us".to_string(),
            help: "Ack RTT.".to_string(),
            value: PromValue::Histogram(vec![PromHistogram {
                labels: vec![("shard".to_string(), "1".to_string())],
                buckets: vec![(0.001, 2), (0.01, 5)],
                sum: 0.025,
                count: 6,
            }]),
        }];
        let text = render(&fams);
        assert!(text.contains("# TYPE dvfs_rtt_us histogram\n"));
        assert!(text.contains("dvfs_rtt_us_bucket{shard=\"1\",le=\"0.001\"} 2\n"));
        assert!(text.contains("dvfs_rtt_us_bucket{shard=\"1\",le=\"0.01\"} 5\n"));
        assert!(text.contains("dvfs_rtt_us_bucket{shard=\"1\",le=\"+Inf\"} 6\n"));
        assert!(text.contains("dvfs_rtt_us_sum{shard=\"1\"} 0.025\n"));
        assert!(text.contains("dvfs_rtt_us_count{shard=\"1\"} 6\n"));
    }

    #[test]
    fn escapes_label_values() {
        let fams = vec![PromFamily {
            name: "x".to_string(),
            help: "h".to_string(),
            value: PromValue::Counter(vec![PromSample {
                labels: vec![("mode".to_string(), "a\"b\\c".to_string())],
                value: 1.0,
            }]),
        }];
        assert!(render(&fams).contains("x{mode=\"a\\\"b\\\\c\"} 1\n"));
    }
}
