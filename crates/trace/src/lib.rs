//! `dvfs-trace`: per-task lifecycle tracing with decision provenance.
//!
//! The paper's contribution is a *decision procedure* — LMC picks the
//! core with least marginal cost (Eq. 27) and inserts at the Theorem-3
//! position — so the observability question is never "how busy was the
//! system" but "why did task 4711 land on core 2 at rate p3, and what
//! did that decision cost?". This crate records the full lifecycle
//!
//! ```text
//! submit → admit/shed → enqueue(core, position k) → dispatch(rate p)
//!        → preempt → rate_change → complete
//! ```
//!
//! where the `enqueue` event carries the provenance of the placement
//! decision (the per-core marginal costs that were compared, the chosen
//! core, the insertion position, and the predicted energy / waiting
//! cost deltas) and the `dispatch` event carries the executor's own
//! predicted energy and time for the remaining work — computed with the
//! *same floating-point expressions* the integrator will use, so in
//! drain mode the prediction can be diffed bit-exactly against the
//! measured round report.
//!
//! Like `dvfs-lint`, this crate has **zero dependencies** and sits at
//! the bottom of the workspace layering: `dvfs-core → dvfs-trace` is
//! the only edge policies need, and `dvfs-trace` itself depends on
//! nothing (enforced by the lint's layering rule).
//!
//! Determinism contract: events are timestamped with *engine seconds*
//! (sim time), never wall clock, and the record paths in this file and
//! [`ring`] must not read `Instant::now` or allocate through formatting
//! (`format!`/`.to_string()`) — `dvfs-lint`'s `determinism` rule scans
//! them. Rendering lives in [`export`] and [`prom`], off the record
//! path.

pub mod export;
pub mod prom;
pub mod ring;

pub use ring::{Ring, SharedRing};

/// Task class tag. A mirror of the model crate's `TaskClass`,
/// re-declared here so the trace crate stays dependency-free; callers
/// convert at the recording site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassTag {
    /// Latency-critical work (the paper's interactive class).
    Interactive,
    /// Throughput work scheduled by marginal cost.
    NonInteractive,
    /// Background batch work.
    Batch,
}

impl ClassTag {
    /// Stable wire name (`"interactive"`, `"non_interactive"`,
    /// `"batch"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ClassTag::Interactive => "interactive",
            ClassTag::NonInteractive => "non_interactive",
            ClassTag::Batch => "batch",
        }
    }

    /// Inverse of [`ClassTag::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<ClassTag> {
        match s {
            "interactive" => Some(ClassTag::Interactive),
            "non_interactive" => Some(ClassTag::NonInteractive),
            "batch" => Some(ClassTag::Batch),
            _ => None,
        }
    }
}

/// One lifecycle event. Variants that represent a *decision* carry its
/// provenance; variants that represent *measurement* carry the
/// integrator's own numbers so predictions can be diffed against them.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A task entered the service's submission path.
    Submit {
        /// Task id.
        task: u64,
        /// Task class at submission.
        class: ClassTag,
        /// Requested work in cycles.
        cycles: u64,
    },
    /// Admission control accepted the task.
    Admit {
        /// Task id.
        task: u64,
        /// Queue depth including this task.
        depth: u64,
    },
    /// Admission control refused the task (backpressure).
    Shed {
        /// Task id.
        task: u64,
        /// Class of the refused task (sheds are class-aware).
        class: ClassTag,
    },
    /// The placement decision: LMC compared per-core marginal costs
    /// (Eq. 27) and inserted the task into the chosen core's queue at
    /// the Theorem-3 backward position.
    Enqueue {
        /// Task id.
        task: u64,
        /// Chosen core.
        core: u32,
        /// Theorem-3 backward position `k` in the chosen core's queue
        /// (0 for interactive FIFO placement).
        position: u64,
        /// The per-core marginal costs that were compared, in core
        /// order; `costs[core]` is the winning (minimal) cost. Empty
        /// when the placement rule did not compare costs (e.g.
        /// round-robin interactive placement).
        costs: Vec<f64>,
        /// Predicted energy-cost delta `Re · L_k · E(p_k)` of this
        /// insertion at the position's rate.
        energy_delta: f64,
        /// Predicted waiting-cost delta (the `Rt`-weighted remainder of
        /// the marginal cost after the energy term).
        wait_delta: f64,
    },
    /// A task started (or resumed) running on a core.
    Dispatch {
        /// Task id.
        task: u64,
        /// Core it runs on.
        core: u32,
        /// Rate index it runs at.
        rate: u32,
        /// Energy the executor predicts the remaining work will draw if
        /// it runs to completion undisturbed — computed with the same
        /// expressions the integrator uses, so drain-mode replay can
        /// check it bit-exactly.
        predicted_energy_j: f64,
        /// Predicted remaining run time at this rate, in seconds.
        predicted_time_s: f64,
    },
    /// A running task was preempted off its core.
    Preempt {
        /// Task id.
        task: u64,
        /// Core it was removed from.
        core: u32,
    },
    /// A core's DVFS rate changed.
    RateChange {
        /// Core whose rate changed.
        core: u32,
        /// Previous rate index.
        from: u32,
        /// New rate index.
        to: u32,
    },
    /// The rebalancer moved a queued (not-yet-dispatched) task between
    /// shards; recorded by the *receiving* shard's ring at its engine
    /// time, with the marginal-cost gap that justified the move.
    Migrate {
        /// Task id.
        task: u64,
        /// Shard the task was stolen from (the hot shard).
        from_shard: u32,
        /// Shard the task was re-enqueued on (this ring's shard).
        to_shard: u32,
        /// Hot shard's Eq. 32 queued-cost total when the rebalancer
        /// decided to move work.
        from_cost: f64,
        /// Cold shard's queued-cost total at the same decision point.
        to_cost: f64,
    },
    /// A task finished; carries the integrator's measured totals.
    Complete {
        /// Task id.
        task: u64,
        /// Core it completed on.
        core: u32,
        /// Measured active energy the task drew, in joules.
        energy_j: f64,
        /// Measured turnaround (completion − arrival), in seconds.
        turnaround_s: f64,
    },
}

impl EventKind {
    /// Stable wire name of the event (`"submit"`, `"dispatch"`, …).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Submit { .. } => "submit",
            EventKind::Admit { .. } => "admit",
            EventKind::Shed { .. } => "shed",
            EventKind::Enqueue { .. } => "enqueue",
            EventKind::Dispatch { .. } => "dispatch",
            EventKind::Preempt { .. } => "preempt",
            EventKind::RateChange { .. } => "rate_change",
            EventKind::Migrate { .. } => "migrate",
            EventKind::Complete { .. } => "complete",
        }
    }
}

/// A recorded event: engine-seconds timestamp, the shard whose ring
/// captured it, a per-ring monotonic sequence number, and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Engine time in seconds (sim time — never wall clock).
    pub time: f64,
    /// Shard whose ring recorded the event.
    pub shard: u32,
    /// Per-ring monotonic sequence number (never reset, counts
    /// overwritten events too).
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

/// Where executors and policies send lifecycle events.
///
/// `dvfs_core::sched::ExecutorView` exposes an optional sink with a
/// no-op default, so tracing disabled costs one virtual call returning
/// `None` and policies need no feature flags. Implementations must be
/// lock-cheap: [`Ring`] records under no lock at all, [`SharedRing`]
/// under one leaf mutex.
pub trait TraceSink: std::fmt::Debug {
    /// Record one event at engine time `time` (seconds).
    fn record(&mut self, time: f64, kind: EventKind);
}

/// The disabled sink: drops everything. Useful as an explicit "tracing
/// off" value where a `TraceSink` is required.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _time: f64, _kind: EventKind) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_tag_names_round_trip() {
        for tag in [
            ClassTag::Interactive,
            ClassTag::NonInteractive,
            ClassTag::Batch,
        ] {
            assert_eq!(ClassTag::parse(tag.name()), Some(tag));
        }
        assert_eq!(ClassTag::parse("nope"), None);
    }

    #[test]
    fn event_names_are_stable() {
        let ev = EventKind::RateChange {
            core: 0,
            from: 1,
            to: 2,
        };
        assert_eq!(ev.name(), "rate_change");
        assert_eq!(
            EventKind::Submit {
                task: 1,
                class: ClassTag::Batch,
                cycles: 10,
            }
            .name(),
            "submit"
        );
        assert_eq!(
            EventKind::Migrate {
                task: 7,
                from_shard: 2,
                to_shard: 0,
                from_cost: 1.5,
                to_cost: 0.25,
            }
            .name(),
            "migrate"
        );
    }

    #[test]
    fn null_sink_accepts_and_drops() {
        let mut sink = NullSink;
        sink.record(1.0, EventKind::Preempt { task: 1, core: 0 });
    }
}
