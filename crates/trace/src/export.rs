//! Trace rendering: JSONL lines (the wire/snapshot format, with an
//! exact inverse parser) and Chrome `trace_event` JSON for
//! `chrome://tracing` / Perfetto.
//!
//! The JSONL encoding is the determinism oracle: floats are rendered
//! with Rust's shortest-round-trip `Display`, field order is fixed, and
//! nothing here reads a clock — so a drained replay produces a
//! byte-identical trace across runs and shard counts. [`parse_jsonl`]
//! is the exact inverse of [`jsonl_line`] (`f64` round-trips bit-for-
//! bit), which is what lets downstream tools diff predicted against
//! measured cost per task.

use crate::{ClassTag, EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render one event as a single JSONL line (no trailing newline).
/// Field order is fixed: `t`, `shard`, `seq`, `ev`, then the payload
/// fields in declaration order.
#[must_use]
pub fn jsonl_line(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"t\":{},\"shard\":{},\"seq\":{},\"ev\":\"{}\"",
        ev.time,
        ev.shard,
        ev.seq,
        ev.kind.name()
    );
    match &ev.kind {
        EventKind::Submit {
            task,
            class,
            cycles,
        } => {
            let _ = write!(
                s,
                ",\"task\":{task},\"class\":\"{}\",\"cycles\":{cycles}",
                class.name()
            );
        }
        EventKind::Admit { task, depth } => {
            let _ = write!(s, ",\"task\":{task},\"depth\":{depth}");
        }
        EventKind::Shed { task, class } => {
            let _ = write!(s, ",\"task\":{task},\"class\":\"{}\"", class.name());
        }
        EventKind::Enqueue {
            task,
            core,
            position,
            costs,
            energy_delta,
            wait_delta,
        } => {
            let _ = write!(
                s,
                ",\"task\":{task},\"core\":{core},\"position\":{position}"
            );
            s.push_str(",\"costs\":[");
            for (i, c) in costs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            s.push(']');
            let _ = write!(
                s,
                ",\"energy_delta\":{energy_delta},\"wait_delta\":{wait_delta}"
            );
        }
        EventKind::Dispatch {
            task,
            core,
            rate,
            predicted_energy_j,
            predicted_time_s,
        } => {
            let _ = write!(
                s,
                ",\"task\":{task},\"core\":{core},\"rate\":{rate},\"predicted_energy_j\":{predicted_energy_j},\"predicted_time_s\":{predicted_time_s}"
            );
        }
        EventKind::Preempt { task, core } => {
            let _ = write!(s, ",\"task\":{task},\"core\":{core}");
        }
        EventKind::RateChange { core, from, to } => {
            let _ = write!(s, ",\"core\":{core},\"from\":{from},\"to\":{to}");
        }
        EventKind::Migrate {
            task,
            from_shard,
            to_shard,
            from_cost,
            to_cost,
        } => {
            let _ = write!(
                s,
                ",\"task\":{task},\"from_shard\":{from_shard},\"to_shard\":{to_shard},\"from_cost\":{from_cost},\"to_cost\":{to_cost}"
            );
        }
        EventKind::Complete {
            task,
            core,
            energy_j,
            turnaround_s,
        } => {
            let _ = write!(
                s,
                ",\"task\":{task},\"core\":{core},\"energy_j\":{energy_j},\"turnaround_s\":{turnaround_s}"
            );
        }
    }
    s.push('}');
    s
}

/// Render a whole trace as JSONL (one line per event, trailing
/// newline).
#[must_use]
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&jsonl_line(ev));
        out.push('\n');
    }
    out
}

/// One parsed scalar or array field of a trace line.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    Num(f64),
    Str(String),
    Arr(Vec<f64>),
}

/// Split the body of a flat JSON object on top-level commas (commas
/// inside `[...]` belong to an array value).
fn split_top(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_str = false;
    for (i, b) in body.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth = depth.saturating_sub(1),
            b',' if !in_str && depth == 0 => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < body.len() {
        out.push(&body[start..]);
    }
    out
}

fn parse_fields(line: &str) -> Result<Vec<(String, Field)>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("trace line is not a JSON object: {line}"))?;
    let mut out = Vec::new();
    for part in split_top(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let colon = part
            .find(':')
            .ok_or_else(|| format!("missing `:` in `{part}`"))?;
        let key = part[..colon].trim().trim_matches('"').to_string();
        let val = part[colon + 1..].trim();
        let field = if let Some(stripped) = val.strip_prefix('"') {
            Field::Str(stripped.trim_end_matches('"').to_string())
        } else if let Some(inner) = val.strip_prefix('[') {
            let inner = inner.trim_end_matches(']').trim();
            let mut arr = Vec::new();
            if !inner.is_empty() {
                for item in inner.split(',') {
                    arr.push(
                        item.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad array element `{item}` in `{part}`"))?,
                    );
                }
            }
            Field::Arr(arr)
        } else {
            Field::Num(
                val.parse::<f64>()
                    .map_err(|_| format!("bad number `{val}` in `{part}`"))?,
            )
        };
        out.push((key, field));
    }
    Ok(out)
}

struct Fields(Vec<(String, Field)>);

impl Fields {
    fn num(&self, key: &str) -> Result<f64, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Field::Num(n))) => Ok(*n),
            _ => Err(format!("missing numeric field `{key}`")),
        }
    }
    fn u64(&self, key: &str) -> Result<u64, String> {
        let n = self.num(key)?;
        if n >= 0.0 && n.fract() == 0.0 {
            Ok(n as u64)
        } else {
            Err(format!("field `{key}` is not a non-negative integer"))
        }
    }
    fn u32(&self, key: &str) -> Result<u32, String> {
        u32::try_from(self.u64(key)?).map_err(|_| format!("field `{key}` overflows u32"))
    }
    fn str(&self, key: &str) -> Result<&str, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Field::Str(s))) => Ok(s),
            _ => Err(format!("missing string field `{key}`")),
        }
    }
    fn arr(&self, key: &str) -> Result<&[f64], String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Field::Arr(a))) => Ok(a),
            _ => Err(format!("missing array field `{key}`")),
        }
    }
    fn class(&self, key: &str) -> Result<ClassTag, String> {
        let s = self.str(key)?;
        ClassTag::parse(s).ok_or_else(|| format!("unknown class `{s}`"))
    }
}

/// Parse one line produced by [`jsonl_line`] back into a
/// [`TraceEvent`]. `f64` fields round-trip bit-for-bit.
///
/// # Errors
/// Returns a description of the first malformed field.
pub fn parse_jsonl_line(line: &str) -> Result<TraceEvent, String> {
    let f = Fields(parse_fields(line)?);
    let time = f.num("t")?;
    let shard = f.u32("shard")?;
    let seq = f.u64("seq")?;
    let kind = match f.str("ev")? {
        "submit" => EventKind::Submit {
            task: f.u64("task")?,
            class: f.class("class")?,
            cycles: f.u64("cycles")?,
        },
        "admit" => EventKind::Admit {
            task: f.u64("task")?,
            depth: f.u64("depth")?,
        },
        "shed" => EventKind::Shed {
            task: f.u64("task")?,
            class: f.class("class")?,
        },
        "enqueue" => EventKind::Enqueue {
            task: f.u64("task")?,
            core: f.u32("core")?,
            position: f.u64("position")?,
            costs: f.arr("costs")?.to_vec(),
            energy_delta: f.num("energy_delta")?,
            wait_delta: f.num("wait_delta")?,
        },
        "dispatch" => EventKind::Dispatch {
            task: f.u64("task")?,
            core: f.u32("core")?,
            rate: f.u32("rate")?,
            predicted_energy_j: f.num("predicted_energy_j")?,
            predicted_time_s: f.num("predicted_time_s")?,
        },
        "preempt" => EventKind::Preempt {
            task: f.u64("task")?,
            core: f.u32("core")?,
        },
        "rate_change" => EventKind::RateChange {
            core: f.u32("core")?,
            from: f.u32("from")?,
            to: f.u32("to")?,
        },
        "migrate" => EventKind::Migrate {
            task: f.u64("task")?,
            from_shard: f.u32("from_shard")?,
            to_shard: f.u32("to_shard")?,
            from_cost: f.num("from_cost")?,
            to_cost: f.num("to_cost")?,
        },
        "complete" => EventKind::Complete {
            task: f.u64("task")?,
            core: f.u32("core")?,
            energy_j: f.num("energy_j")?,
            turnaround_s: f.num("turnaround_s")?,
        },
        other => return Err(format!("unknown event `{other}`")),
    };
    Ok(TraceEvent {
        time,
        shard,
        seq,
        kind,
    })
}

/// Parse a whole JSONL trace (blank lines skipped).
///
/// # Errors
/// Returns the 1-based line number and cause of the first bad line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a trace as Chrome `trace_event` JSON, loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
/// process per shard, one thread (track) per core, tasks as `"X"`
/// duration events from `dispatch` to the next `preempt`/`complete` on
/// that core, and `rate_change` as `"i"` instant events. Timestamps are
/// engine seconds scaled to microseconds (the format's native unit).
///
/// Three `"C"` counter tracks ride along per shard: `core J rate` (the
/// rate index a core is actuated to, stepped on every `dispatch` and
/// `rate_change`), `queue depth` (admission queue depth sampled at each
/// `admit`), and `energy (J)` (cumulative measured energy, accrued at
/// each `complete`). Perfetto renders these as stacked area charts
/// above the span tracks.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out: Vec<String> = Vec::new();
    // (shard, core) -> (task, start ts µs, rate) for the running span.
    let mut open: BTreeMap<(u32, u32), (u64, f64, u32)> = BTreeMap::new();
    let mut tracks: BTreeMap<(u32, u32), ()> = BTreeMap::new();
    // shard -> cumulative measured energy for the accrual counter.
    let mut energy: BTreeMap<u32, f64> = BTreeMap::new();
    for ev in events {
        let ts = ev.time * 1e6;
        match &ev.kind {
            EventKind::Admit { depth, .. } => {
                out.push(counter(
                    ev.shard,
                    ts,
                    "queue depth",
                    "depth",
                    &depth.to_string(),
                ));
            }
            EventKind::Dispatch {
                task, core, rate, ..
            } => {
                tracks.insert((ev.shard, *core), ());
                open.insert((ev.shard, *core), (*task, ts, *rate));
                out.push(rate_counter(ev.shard, *core, ts, *rate));
            }
            EventKind::Preempt { core, .. } => {
                close_span(&mut out, &mut open, ev.shard, *core, ts, "preempted");
            }
            EventKind::Complete { core, energy_j, .. } => {
                close_span(&mut out, &mut open, ev.shard, *core, ts, "completed");
                let total = energy.entry(ev.shard).or_insert(0.0);
                *total += energy_j;
                out.push(counter(
                    ev.shard,
                    ts,
                    "energy (J)",
                    "joules",
                    &total.to_string(),
                ));
            }
            EventKind::Migrate {
                task,
                from_shard,
                to_shard,
                ..
            } => {
                out.push(format!(
                    "{{\"name\":{},\"ph\":\"i\",\"s\":\"p\",\"pid\":{},\"ts\":{ts},\"args\":{{\"from_shard\":{from_shard},\"to_shard\":{to_shard}}}}}",
                    json_str(&format!("migrate task {task}")),
                    ev.shard
                ));
            }
            EventKind::RateChange { core, from, to } => {
                tracks.insert((ev.shard, *core), ());
                out.push(format!(
                    "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{ts},\"args\":{{\"from\":{from},\"to\":{to}}}}}",
                    json_str(&format!("rate {from}->{to}")),
                    ev.shard,
                    core
                ));
                out.push(rate_counter(ev.shard, *core, ts, *to));
            }
            _ => {}
        }
    }
    // Name the tracks so Perfetto shows "shard N" / "core J" instead of
    // bare pids.
    let shards: BTreeMap<u32, ()> = tracks.keys().map(|&(s, _)| (s, ())).collect();
    for shard in shards.keys() {
        out.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{shard},\"args\":{{\"name\":{}}}}}",
            json_str(&format!("shard {shard}"))
        ));
    }
    for (shard, core) in tracks.keys() {
        out.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{shard},\"tid\":{core},\"args\":{{\"name\":{}}}}}",
            json_str(&format!("core {core}"))
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        out.join(",")
    )
}

/// One `"C"` counter sample on a per-shard track. `value` is passed
/// pre-rendered so integer counters stay integers in the JSON.
fn counter(shard: u32, ts: f64, track: &str, series: &str, value: &str) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"C\",\"pid\":{shard},\"ts\":{ts},\"args\":{{{}:{value}}}}}",
        json_str(track),
        json_str(series)
    )
}

/// Sample the `core J rate` counter track for one shard.
fn rate_counter(shard: u32, core: u32, ts: f64, rate: u32) -> String {
    counter(
        shard,
        ts,
        &format!("core {core} rate"),
        "rate",
        &rate.to_string(),
    )
}

fn close_span(
    out: &mut Vec<String>,
    open: &mut BTreeMap<(u32, u32), (u64, f64, u32)>,
    shard: u32,
    core: u32,
    ts: f64,
    how: &str,
) {
    if let Some((task, start, rate)) = open.remove(&(shard, core)) {
        let dur = (ts - start).max(0.0);
        out.push(format!(
            "{{\"name\":{},\"ph\":\"X\",\"pid\":{shard},\"tid\":{core},\"ts\":{start},\"dur\":{dur},\"args\":{{\"rate\":{rate},\"end\":{}}}}}",
            json_str(&format!("task {task}")),
            json_str(how)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                time: 0.0,
                shard: 0,
                seq: 0,
                kind: EventKind::Submit {
                    task: 4,
                    class: ClassTag::Interactive,
                    cycles: 50_000_000,
                },
            },
            TraceEvent {
                time: 0.0,
                shard: 0,
                seq: 1,
                kind: EventKind::Enqueue {
                    task: 4,
                    core: 1,
                    position: 2,
                    costs: vec![0.125, 0.1, 3.5e-7],
                    energy_delta: 0.0625,
                    wait_delta: 0.0375,
                },
            },
            TraceEvent {
                time: 0.015,
                shard: 0,
                seq: 2,
                kind: EventKind::Dispatch {
                    task: 4,
                    core: 1,
                    rate: 3,
                    predicted_energy_j: 0.1 + 0.2, // deliberately non-representable
                    predicted_time_s: 0.033_333_333_333_333_33,
                },
            },
            TraceEvent {
                time: 0.02,
                shard: 0,
                seq: 3,
                kind: EventKind::RateChange {
                    core: 1,
                    from: 3,
                    to: 2,
                },
            },
            TraceEvent {
                time: 0.03,
                shard: 0,
                seq: 4,
                kind: EventKind::Migrate {
                    task: 6,
                    from_shard: 1,
                    to_shard: 0,
                    from_cost: 0.1 + 0.7, // deliberately non-representable
                    to_cost: 0.012_5,
                },
            },
            TraceEvent {
                time: 0.05,
                shard: 0,
                seq: 5,
                kind: EventKind::Complete {
                    task: 4,
                    core: 1,
                    energy_j: 0.300_000_000_000_000_04,
                    turnaround_s: 0.05,
                },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_bit_for_bit() {
        let events = sample();
        let text = to_jsonl(&events);
        let parsed = parse_jsonl(&text).expect("parses");
        assert_eq!(parsed, events);
        // And re-rendering is byte-identical (Display is shortest
        // round-trip, so this pins determinism of the encoding too).
        assert_eq!(to_jsonl(&parsed), text);
    }

    #[test]
    fn parser_rejects_garbage_with_line_numbers() {
        assert!(parse_jsonl_line("not json").is_err());
        assert!(parse_jsonl_line("{\"t\":0,\"shard\":0,\"seq\":0,\"ev\":\"nope\"}").is_err());
        let err = parse_jsonl("{\"t\":0,\"shard\":0,\"seq\":0,\"ev\":\"admit\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn chrome_trace_has_tracks_spans_and_instants() {
        let json = chrome_trace(&sample());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"ph\":\"X\""), "duration span: {json}");
        assert!(json.contains("\"ph\":\"i\""), "rate instant: {json}");
        assert!(json.contains("\"name\":\"task 4\""));
        assert!(json.contains("\"name\":\"migrate task 6\""), "{json}");
        assert!(json.contains("\"name\":\"shard 0\""));
        assert!(json.contains("\"name\":\"core 1\""));
        // Dispatch at 0.015 s -> 15000 µs; complete at 0.05 s.
        assert!(json.contains("\"ts\":15000"), "{json}");
        assert!(json.contains("\"dur\":35000"), "{json}");
    }

    #[test]
    fn chrome_trace_emits_counter_tracks() {
        let json = chrome_trace(&sample());
        // Dispatch at rate 3, then rate_change to 2: two samples on the
        // same per-core counter track.
        assert!(json.contains("\"name\":\"core 1 rate\""), "{json}");
        assert!(
            json.contains("\"ph\":\"C\",\"pid\":0,\"ts\":15000,\"args\":{\"rate\":3}"),
            "{json}"
        );
        assert!(
            json.contains("\"ph\":\"C\",\"pid\":0,\"ts\":20000,\"args\":{\"rate\":2}"),
            "{json}"
        );
        // Complete accrues measured energy on the shard's energy track.
        assert!(json.contains("\"name\":\"energy (J)\""), "{json}");
        assert!(json.contains("\"joules\":0.30000000000000004"), "{json}");
    }

    #[test]
    fn counters_track_queue_depth_and_cumulative_energy() {
        let complete = |seq: u64, t: f64, task: u64| TraceEvent {
            time: t,
            shard: 2,
            seq,
            kind: EventKind::Complete {
                task,
                core: 0,
                energy_j: 0.25,
                turnaround_s: t,
            },
        };
        let events = vec![
            TraceEvent {
                time: 0.0,
                shard: 2,
                seq: 0,
                kind: EventKind::Admit { task: 1, depth: 7 },
            },
            complete(1, 0.1, 1),
            complete(2, 0.2, 2),
        ];
        let json = chrome_trace(&events);
        assert!(
            json.contains(
                "\"name\":\"queue depth\",\"ph\":\"C\",\"pid\":2,\"ts\":0,\"args\":{\"depth\":7}"
            ),
            "{json}"
        );
        // Energy is cumulative: 0.25 then 0.5.
        assert!(json.contains("\"joules\":0.25"), "{json}");
        assert!(json.contains("\"joules\":0.5"), "{json}");
    }

    #[test]
    fn preempt_closes_the_open_span() {
        let events = vec![
            TraceEvent {
                time: 0.0,
                shard: 1,
                seq: 0,
                kind: EventKind::Dispatch {
                    task: 9,
                    core: 0,
                    rate: 0,
                    predicted_energy_j: 1.0,
                    predicted_time_s: 1.0,
                },
            },
            TraceEvent {
                time: 0.5,
                shard: 1,
                seq: 1,
                kind: EventKind::Preempt { task: 9, core: 0 },
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.contains("\"end\":\"preempted\""), "{json}");
        assert!(json.contains("\"pid\":1"), "{json}");
    }
}
