//! Fixed-capacity event rings: the storage behind the trace bus.
//!
//! One [`Ring`] per engine shard, overwrite-oldest when full. Overwrite
//! (rather than block or grow) keeps the record path O(1) and
//! allocation-free in steady state: a full ring pops the oldest event
//! and counts it in `dropped`, so a drained trace always states how
//! much history it lost. Sequence numbers are per-ring, monotonic, and
//! never reset — a gap between consecutive drained events is exactly
//! the number of overwritten events between them.
//!
//! The record path here is replay-critical: no wall-clock reads and no
//! allocation-heavy formatting (`dvfs-lint`'s `determinism` rule scans
//! this file). Rendering happens in [`crate::export`], off the ring.

use crate::{EventKind, TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A single-owner event ring for one shard.
#[derive(Debug)]
pub struct Ring {
    shard: u32,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

impl Ring {
    /// An empty ring for `shard` holding at most `capacity` events. A
    /// zero-capacity ring records nothing and counts every event as
    /// dropped.
    #[must_use]
    pub fn new(shard: u32, capacity: usize) -> Self {
        Ring {
            shard,
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Record one event at engine time `time`, overwriting the oldest
    /// event if the ring is full.
    pub fn record(&mut self, time: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            time,
            shard: self.shard,
            seq,
            kind,
        });
    }

    /// Take every buffered event, oldest first, leaving the ring empty.
    /// Sequence numbers keep counting across drains.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten (or refused by a zero-capacity ring) so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shard this ring records for.
    #[must_use]
    pub fn shard(&self) -> u32 {
        self.shard
    }
}

impl TraceSink for Ring {
    fn record(&mut self, time: f64, kind: EventKind) {
        Ring::record(self, time, kind);
    }
}

/// A shard ring shared between the service front end (which records
/// `submit`/`admit`/`shed` from connection threads) and that shard's
/// executor (which records the engine events). The mutex is a *leaf*
/// lock: record sites take it for one push and release it — it is never
/// held across an engine lock, so it cannot participate in a lock-order
/// cycle.
#[derive(Debug, Clone)]
pub struct SharedRing {
    inner: Arc<Mutex<Ring>>,
}

impl SharedRing {
    /// A shared empty ring for `shard` with `capacity` slots.
    #[must_use]
    pub fn new(shard: u32, capacity: usize) -> Self {
        SharedRing {
            inner: Arc::new(Mutex::new(Ring::new(shard, capacity))),
        }
    }

    fn ring(&self) -> MutexGuard<'_, Ring> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record one event (one short lock hold).
    pub fn record(&self, time: f64, kind: EventKind) {
        self.ring().record(time, kind);
    }

    /// Take every buffered event, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring().drain()
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring().len()
    }

    /// True when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring().is_empty()
    }

    /// Events overwritten so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring().dropped()
    }
}

impl TraceSink for SharedRing {
    fn record(&mut self, time: f64, kind: EventKind) {
        SharedRing::record(self, time, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: u64) -> EventKind {
        EventKind::Preempt { task, core: 0 }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = Ring::new(3, 2);
        r.record(0.0, ev(1));
        r.record(1.0, ev(2));
        r.record(2.0, ev(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let events = r.drain();
        assert!(r.is_empty());
        assert_eq!(events.len(), 2);
        // Oldest event (seq 0) was overwritten; seq keeps counting.
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
        assert_eq!(events[0].shard, 3);
        assert_eq!(events[1].kind, ev(3));
        // Sequence numbering continues across drains.
        r.record(3.0, ev(4));
        assert_eq!(r.drain()[0].seq, 3);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut r = Ring::new(0, 0);
        r.record(0.0, ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn shared_ring_clones_view_one_buffer() {
        let a = SharedRing::new(0, 8);
        let mut b = a.clone();
        a.record(0.5, ev(7));
        TraceSink::record(&mut b, 1.5, ev(8));
        assert_eq!(a.len(), 2);
        let events = b.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].time, 0.5);
        assert_eq!(events[1].time, 1.5);
        assert!(a.is_empty());
        assert_eq!(a.dropped(), 0);
    }
}
