//! Thin libc FFI: exactly the syscalls the reactor needs, nothing more.
//!
//! The workspace carries no external crates beyond its local shims, so
//! `dvfs-net` declares its own `extern "C"` bindings instead of pulling
//! in `libc`. Every raw call is wrapped in a safe function that maps
//! `-1` + `errno` onto [`std::io::Error`]; no other module in the crate
//! contains `unsafe`.
//!
//! Numeric constants are the Linux kernel ABI values (stable since
//! epoll landed in 2.5.x); `EpollEvent` is `repr(C, packed)` on x86_64
//! to match the kernel's struct layout there.

use std::io;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`) — always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const SOCK_NONBLOCK: i32 = 0o4000;
const SOCK_CLOEXEC: i32 = 0o2000000;

const RLIMIT_NOFILE: i32 = 7;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One readiness record, kernel layout. On x86_64 the kernel packs the
/// struct (4-byte `events` directly followed by the 8-byte `data`
/// union); elsewhere it uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token, returned verbatim with each event.
    pub data: u64,
}

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn accept4(fd: i32, addr: *mut u8, addrlen: *mut u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)`.
///
/// # Errors
/// The raw OS error when the kernel refuses (fd limit, ENOMEM).
pub fn epoll_create() -> io::Result<i32> {
    // SAFETY: `epoll_create1` takes no pointers; any flag value is
    // either honored or rejected with -1/EINVAL, which `cvt` maps.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

fn epoll_op(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `ev` is a live, properly-initialized `EpollEvent` on
    // this stack frame for the duration of the call; the kernel only
    // reads through the pointer. Bad fds come back as -1/EBADF.
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Register `fd` with interest `events`, tagging it with `token`.
///
/// # Errors
/// The raw OS error (e.g. `EEXIST` when already registered).
pub fn epoll_add(epfd: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
    epoll_op(epfd, EPOLL_CTL_ADD, fd, events, token)
}

/// Re-arm `fd` with a new interest set, keeping its `token`.
///
/// # Errors
/// The raw OS error (e.g. `ENOENT` when not registered).
pub fn epoll_mod(epfd: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
    epoll_op(epfd, EPOLL_CTL_MOD, fd, events, token)
}

/// Deregister `fd`. Harmless to skip before `close` — the kernel drops
/// the registration with the last fd reference — but explicit removal
/// keeps the interest list honest while the fd is still open elsewhere.
///
/// # Errors
/// The raw OS error.
pub fn epoll_del(epfd: i32, fd: i32) -> io::Result<()> {
    epoll_op(epfd, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Block up to `timeout_ms` for readiness; fills `buf` from the front
/// and returns the number of records written. `EINTR` is reported as
/// zero events rather than an error.
///
/// # Errors
/// The raw OS error for anything other than `EINTR`.
pub fn wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    let cap = i32::try_from(buf.len()).unwrap_or(i32::MAX);
    // SAFETY: `buf.as_mut_ptr()` points at `buf.len()` writable
    // `EpollEvent` records and `cap` never exceeds that length, so the
    // kernel cannot write past the slice.
    let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), cap, timeout_ms) };
    if n < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(usize::try_from(n).unwrap_or(0))
}

/// `accept4(listen_fd, NULL, NULL, SOCK_NONBLOCK | SOCK_CLOEXEC)`:
/// accept one pending connection, already nonblocking. Returns
/// `WouldBlock` when the backlog is empty.
///
/// # Errors
/// The raw OS error; `WouldBlock` is the normal "drained" signal.
pub fn accept_nonblocking(listen_fd: i32) -> io::Result<i32> {
    // SAFETY: null `addr`/`addrlen` are the documented way to decline
    // the peer address; the kernel writes nothing. An invalid
    // `listen_fd` is -1/EBADF, not UB.
    cvt(unsafe {
        accept4(
            listen_fd,
            std::ptr::null_mut(),
            std::ptr::null_mut(),
            SOCK_NONBLOCK | SOCK_CLOEXEC,
        )
    })
}

/// Nonblocking `read(2)`. `Ok(0)` is end-of-stream.
///
/// # Errors
/// `WouldBlock` when the socket has no data; otherwise the OS error.
pub fn read_fd(fd: i32, buf: &mut [u8]) -> io::Result<usize> {
    // SAFETY: the pointer/length pair comes from a live `&mut [u8]`,
    // so the kernel writes at most `buf.len()` bytes into owned memory.
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(usize::try_from(n).unwrap_or(0))
}

/// Nonblocking `write(2)`.
///
/// # Errors
/// `WouldBlock` when the send buffer is full; otherwise the OS error.
pub fn write_fd(fd: i32, buf: &[u8]) -> io::Result<usize> {
    // SAFETY: the pointer/length pair comes from a live `&[u8]`; the
    // kernel only reads `buf.len()` bytes from it.
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(usize::try_from(n).unwrap_or(0))
}

/// `close(2)`, result ignored — the fd is gone either way.
pub fn close_fd(fd: i32) {
    // SAFETY: `close` takes no pointers; a stale or invalid fd returns
    // -1/EBADF and touches nothing. Callers own `fd` (no double-close
    // of a descriptor another wrapper still uses).
    let _ = unsafe { close(fd) };
}

/// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`: the reactor's cross-thread
/// wakeup primitive. Registered with the epoll instance like any fd;
/// [`eventfd_signal`] from another thread makes it readable.
///
/// # Errors
/// The raw OS error (fd limit, ENOMEM).
pub fn eventfd_nonblocking() -> io::Result<i32> {
    // SAFETY: `eventfd` takes no pointers; unsupported flags fail with
    // -1/EINVAL, which `cvt` maps.
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Signal an eventfd: add 1 to its counter, waking any poller. A full
/// counter (`WouldBlock`) still leaves the fd readable, so the wakeup
/// is delivered either way and the result can be ignored.
pub fn eventfd_signal(fd: i32) {
    let _ = write_fd(fd, &1u64.to_ne_bytes());
}

/// Drain an eventfd's counter back to zero so the next signal edges the
/// fd readable again. `WouldBlock` (already drained) is fine.
pub fn eventfd_drain(fd: i32) {
    let mut buf = [0u8; 8];
    let _ = read_fd(fd, &mut buf);
}

/// Current `RLIMIT_NOFILE` as `(soft, hard)`.
///
/// # Errors
/// The raw OS error.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a live, initialized `Rlimit` on this stack
    // frame matching the kernel's two-u64 layout; the kernel writes
    // only within it.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    Ok((lim.cur, lim.max))
}

/// Raise the soft `RLIMIT_NOFILE` toward `want` (capped at the hard
/// limit) and return the resulting soft limit. Used by the
/// 10k-connection bench smoke, which needs two fds per connection.
///
/// # Errors
/// The raw OS error from `getrlimit`/`setrlimit`.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    let target = want.min(hard);
    if target <= soft {
        return Ok(soft);
    }
    let lim = Rlimit {
        cur: target,
        max: hard,
    };
    // SAFETY: `lim` is a live `Rlimit` the kernel only reads; a
    // target above the hard limit was already clamped, and EPERM maps
    // to an error rather than UB.
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_lifecycle_on_a_pipe_free_fd() {
        let epfd = epoll_create().unwrap();
        assert!(epfd >= 0);
        let mut buf = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing registered: an immediate wait returns zero events.
        assert_eq!(wait(epfd, &mut buf, 0).unwrap(), 0);
        close_fd(epfd);
    }

    #[test]
    fn nofile_limit_is_readable_and_monotone() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        // Raising to the current soft limit is a no-op that succeeds.
        assert_eq!(raise_nofile_limit(soft).unwrap(), soft);
    }
}
