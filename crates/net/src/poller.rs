//! Safe wrapper over the epoll fd: register, re-arm, wait.

use crate::sys;
use std::io;

/// Interest set for one registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable data (or peer close).
    pub readable: bool,
    /// Wake when the send buffer drains.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — armed while a response is part-written.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One delivered readiness event, decoded from the kernel bitmask.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data (or a pending close) is readable.
    pub readable: bool,
    /// The send buffer has room again.
    pub writable: bool,
    /// Error or hangup: drain what is readable, then close.
    pub hangup: bool,
}

/// An epoll instance. Dropping it closes the epoll fd (registered fds
/// are untouched — their owners close them).
#[derive(Debug)]
pub struct Poller {
    epfd: i32,
}

impl Poller {
    /// A fresh epoll instance.
    ///
    /// # Errors
    /// The OS error from `epoll_create1`.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
        })
    }

    /// Register `fd` under `token`.
    ///
    /// # Errors
    /// The OS error from `epoll_ctl`.
    pub fn add(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_add(self.epfd, fd, interest.bits(), token)
    }

    /// Change the interest set of an already-registered `fd`.
    ///
    /// # Errors
    /// The OS error from `epoll_ctl`.
    pub fn modify(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_mod(self.epfd, fd, interest.bits(), token)
    }

    /// Deregister `fd`.
    ///
    /// # Errors
    /// The OS error from `epoll_ctl`.
    pub fn remove(&self, fd: i32) -> io::Result<()> {
        sys::epoll_del(self.epfd, fd)
    }

    /// Wait up to `timeout_ms` and append decoded events to `out`
    /// (cleared first). Returns the number of events.
    ///
    /// # Errors
    /// The OS error from `epoll_wait` (`EINTR` is swallowed as zero).
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const MAX_EVENTS: usize = 256;
        out.clear();
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = sys::wait(self.epfd, &mut raw, timeout_ms)?;
        for ev in raw.iter().take(n) {
            // Copy out of the (possibly packed) struct before use.
            let bits = { ev.events };
            let token = { ev.data };
            out.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poller_reports_readable_after_a_write() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "idle socket");

        a.write_all(b"hello\n").unwrap();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        let ev = events.first().copied().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable && !ev.hangup);

        poller.remove(b.as_raw_fd()).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "deregistered");
    }

    #[test]
    fn poller_reports_writable_when_armed() {
        let (_a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 1, Interest::READ_WRITE).unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        assert!(events.first().is_some_and(|e| e.writable));
    }
}
