//! Per-connection state: a nonblocking fd, the read-side framer, and a
//! buffered write side with explicit backpressure.

use crate::framing::{Frame, LineFramer};
use crate::sys;
use std::io;

/// Reads per readiness wake before yielding back to the poller, so one
/// firehose client cannot starve the rest (level-triggered epoll will
/// re-report the fd on the next wait).
const MAX_READS_PER_WAKE: usize = 16;

/// One accepted connection owned by the reactor. Dropping it closes
/// the fd.
#[derive(Debug)]
pub struct Connection {
    fd: i32,
    framer: LineFramer,
    out: Vec<u8>,
    out_pos: usize,
    /// Close once the write buffer drains (peer sent EOF, or the
    /// server is shutting the connection down after a final response).
    pub closing: bool,
    /// Whether the fd is currently armed for `EPOLLOUT` — tracked so
    /// the reactor only re-arms on transitions.
    pub write_armed: bool,
}

impl Connection {
    /// Wrap an already-nonblocking fd.
    #[must_use]
    pub fn new(fd: i32, max_line: usize) -> Connection {
        Connection {
            fd,
            framer: LineFramer::new(max_line),
            out: Vec::new(),
            out_pos: 0,
            closing: false,
            write_armed: false,
        }
    }

    /// The underlying fd.
    #[must_use]
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Read until the socket would block (bounded by
    /// `MAX_READS_PER_WAKE`), pushing completed frames onto `out`.
    /// Returns `true` when the peer has closed its end.
    ///
    /// # Errors
    /// Hard socket errors (connection reset, etc.); `WouldBlock` is the
    /// normal exit and is not an error.
    pub fn fill(&mut self, out: &mut Vec<Frame>) -> io::Result<bool> {
        let mut scratch = [0u8; 16 * 1024];
        for _ in 0..MAX_READS_PER_WAKE {
            match sys::read_fd(self.fd, &mut scratch) {
                Ok(0) => return Ok(true),
                Ok(n) => self.framer.feed(scratch.get(..n).unwrap_or(&[]), out),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(false)
    }

    /// True when a disconnect now would cut a request line in half.
    #[must_use]
    pub fn mid_line(&self) -> bool {
        self.framer.has_partial()
    }

    /// Queue one response line (newline appended) for writing.
    pub fn queue_line(&mut self, line: &str) {
        self.out.extend_from_slice(line.as_bytes());
        self.out.push(b'\n');
    }

    /// Bytes queued but not yet written.
    #[must_use]
    pub fn pending_out(&self) -> usize {
        self.out.len().saturating_sub(self.out_pos)
    }

    /// Write as much of the queued output as the socket accepts.
    /// Returns `true` when the buffer fully drained, `false` when the
    /// socket pushed back (`EPOLLOUT` should be armed).
    ///
    /// # Errors
    /// Hard socket errors; the connection should be closed.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            let rest = self.out.get(self.out_pos..).unwrap_or(&[]);
            match sys::write_fd(self.fd, rest) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::fd::{AsRawFd, IntoRawFd};
    use std::os::unix::net::UnixStream;

    #[test]
    fn fill_frames_and_flush_round_trip() {
        let (mut peer, local) = UnixStream::pair().unwrap();
        local.set_nonblocking(true).unwrap();
        let mut conn = Connection::new(local.into_raw_fd(), 1024);

        peer.write_all(b"{\"cmd\":\"ping\"}\npartial").unwrap();
        let mut frames = Vec::new();
        let eof = conn.fill(&mut frames).unwrap();
        assert!(!eof);
        assert_eq!(frames, vec![Frame::Line("{\"cmd\":\"ping\"}".to_owned())]);
        assert!(conn.mid_line());

        conn.queue_line("{\"ok\":true}");
        assert!(conn.flush().unwrap());
        assert_eq!(conn.pending_out(), 0);
        let mut buf = [0u8; 64];
        let n = peer.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"{\"ok\":true}\n");
    }

    #[test]
    fn fill_reports_eof() {
        let (peer, local) = UnixStream::pair().unwrap();
        local.set_nonblocking(true).unwrap();
        let mut conn = Connection::new(local.into_raw_fd(), 1024);
        drop(peer);
        let mut frames = Vec::new();
        assert!(conn.fill(&mut frames).unwrap());
    }

    #[test]
    fn flush_backpressure_reports_partial_write() {
        let (peer, local) = UnixStream::pair().unwrap();
        local.set_nonblocking(true).unwrap();
        let fd = local.as_raw_fd();
        let mut conn = Connection::new(local.into_raw_fd(), 1024);
        assert_eq!(conn.fd(), fd);
        // Queue far more than a socketpair buffer holds; with nobody
        // reading, flush must stop at WouldBlock with bytes pending.
        let chunk = "x".repeat(64 * 1024);
        for _ in 0..64 {
            conn.queue_line(&chunk);
        }
        assert!(!conn.flush().unwrap());
        assert!(conn.pending_out() > 0);
        drop(peer);
    }
}
