//! The single-threaded mini-reactor: one epoll instance multiplexing a
//! listening socket, every accepted connection, and an eventfd waker
//! for replies produced off the event loop.
//!
//! Protocol logic stays out of this crate: the embedding server
//! provides a [`Handler`] (turn a batch of request lines into response
//! lines) and an [`Observer`] (metrics taps). The reactor owns
//! readiness, framing, batching, the connection budget, and
//! `EPOLLOUT`-re-armed backpressure.
//!
//! Event-loop shape per wakeup:
//!
//! 1. `epoll_wait` (bounded timeout, so [`Handler::should_stop`] is
//!    polled even when idle),
//! 2. listener readable → accept until `EAGAIN`, shedding with a final
//!    response line once the budget is reached,
//! 3. connection readable → drain reads into the framer, hand every
//!    complete line of the socket to the handler as **one batch**,
//!    queue the responses, flush,
//! 4. waker readable → apply replies other threads injected through
//!    the [`ReplyInjector`] and flush them,
//! 5. flush stopped by `EPOLLOUT`? re-arm write interest and finish the
//!    flush on a later wakeup.
//!
//! ## Deferred batches
//!
//! A handler that would block the event loop (e.g. a scheduler drain
//! that takes a whole round) can instead **defer** a batch: ship the
//! lines to another thread and return the number of deferred batches
//! from [`Handler::on_batch`]. The reactor keeps the connection open
//! (even across peer EOF) until every deferred batch's replies arrive
//! through the [`ReplyInjector`] handed over in [`Handler::on_start`].
//! Tokens are generation-tagged, so a reply that outlives its
//! connection is dropped instead of landing on a reused slot. While a
//! connection has deferred batches outstanding, the handler is told via
//! `on_batch`'s `pending` argument — it must keep deferring (through
//! the same FIFO lane) so responses stay in request order.

use crate::conn::Connection;
use crate::framing::{Frame, DEFAULT_MAX_LINE};
use crate::poller::{Event, Interest, Poller};
use crate::sys;
use std::io;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Reactor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Open-connection budget; accepts beyond it are shed with
    /// [`Handler::shed_line`] and closed immediately.
    pub max_connections: usize,
    /// Per-line byte budget for the framer.
    pub max_line_bytes: usize,
    /// `epoll_wait` timeout — the stop-flag polling cadence.
    pub poll_timeout_ms: i32,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 10_240,
            max_line_bytes: DEFAULT_MAX_LINE,
            poll_timeout_ms: 100,
        }
    }
}

/// The embedding server's protocol logic.
pub trait Handler {
    /// Called once before the event loop starts, handing over the
    /// [`ReplyInjector`] for deferred batches. Handlers that answer
    /// everything inline can ignore it (the default).
    fn on_start(&mut self, injector: ReplyInjector) {
        let _ = injector;
    }

    /// Handle one batch: every complete request line drained from a
    /// single readable socket. Either answer inline — exactly one
    /// response line per request line, in order, via `respond` — and
    /// return 0, or defer the whole batch to another thread (which
    /// must eventually [`ReplyInjector::inject`] the responses under
    /// `token`) and return the number of deferred batches (1, unless
    /// the handler split the batch).
    ///
    /// `pending` is the number of this connection's deferred batches
    /// whose replies have not yet arrived. While it is nonzero the
    /// handler must defer every further batch through the same FIFO
    /// lane, or responses would overtake the outstanding ones.
    fn on_batch(
        &mut self,
        token: u64,
        pending: usize,
        lines: &[String],
        respond: &mut dyn FnMut(&str),
    ) -> usize;

    /// The response line for a request line that blew the byte budget
    /// (`len` bytes seen when it tripped).
    fn oversized_line(&mut self, len: usize) -> String;

    /// The final response line written to a connection shed by the
    /// budget, before it is closed.
    fn shed_line(&mut self) -> String;

    /// Polled once per wakeup; return `true` to stop the reactor
    /// (pending responses — including already-injected deferred
    /// replies — get a best-effort final flush).
    fn should_stop(&mut self) -> bool;
}

/// Metrics taps. Every method has a no-op default so embedders
/// implement only what they export.
pub trait Observer {
    /// A connection was accepted; `open` is the new open count.
    fn on_open(&mut self, open: usize) {
        let _ = open;
    }
    /// A connection closed; `open` is the new open count.
    fn on_close(&mut self, open: usize) {
        let _ = open;
    }
    /// An accept was shed by the connection budget.
    fn on_accept_shed(&mut self) {}
    /// One handler batch of `lines` complete request lines.
    fn on_batch_size(&mut self, lines: usize) {
        let _ = lines;
    }
    /// One `epoll_wait` returned `events` readiness records.
    fn on_wakeup(&mut self, events: usize) {
        let _ = events;
    }
    /// Loop timing for one wakeup: `wait_s` seconds blocked in
    /// `epoll_wait`, `work_s` seconds servicing its events. Together
    /// they partition the event loop's wall time, so their ratio is
    /// the reactor's duty cycle.
    fn on_loop_times(&mut self, wait_s: f64, work_s: f64) {
        let _ = (wait_s, work_s);
    }
    /// A connection left `EPOLLOUT` backpressure (its flush completed,
    /// or it died mid-stall); `stall_s` is how long the write side was
    /// armed waiting for the peer to drain.
    fn on_backpressure_stall(&mut self, stall_s: f64) {
        let _ = stall_s;
    }
    /// A request line exceeded the byte budget.
    fn on_oversized(&mut self) {}
}

/// Ignores everything — for tests and minimal embedders.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
/// Connection tokens start here; the low 32 bits carry `idx + 2`, the
/// high 32 bits the slot generation.
const TOKEN_BASE: u64 = 2;

fn conn_token(generation: u32, idx: usize) -> u64 {
    (u64::from(generation) << 32) | (idx as u64 + TOKEN_BASE)
}

/// Decode a connection token into `(generation, idx)`; `None` for the
/// listener/waker tokens (and anything else below the base).
fn token_parts(token: u64) -> Option<(u32, usize)> {
    let low = token & 0xFFFF_FFFF;
    let idx = low.checked_sub(TOKEN_BASE)?;
    Some(((token >> 32) as u32, idx as usize))
}

struct MailboxInner {
    efd: i32,
    queue: Mutex<Vec<(u64, Vec<String>)>>,
}

impl Drop for MailboxInner {
    fn drop(&mut self) {
        sys::close_fd(self.efd);
    }
}

/// Cloneable, thread-safe handle for delivering deferred-batch replies
/// back into the reactor. Injecting pushes the lines into a mailbox
/// and signals the reactor's eventfd waker; the event loop applies
/// them on its next wakeup. The underlying eventfd stays open until
/// the last clone drops, so a slow worker thread can outlive the
/// reactor without writing to a closed fd.
#[derive(Clone)]
pub struct ReplyInjector {
    inner: Arc<MailboxInner>,
}

impl ReplyInjector {
    /// Deliver the response lines for one deferred batch on the
    /// connection identified by `token` (as passed to
    /// [`Handler::on_batch`]). An empty `lines` still completes the
    /// batch. If the connection is already gone — or its slot was
    /// reused — the reply is dropped; the generation tag in the token
    /// makes that safe.
    pub fn inject(&self, token: u64, lines: Vec<String>) {
        {
            let mut queue = self
                .inner
                .queue
                // dvfs-lint: allow(reactor-nonblocking) inject runs on slow-path threads, never the event loop; the critical section is one push
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            queue.push((token, lines));
        }
        sys::eventfd_signal(self.inner.efd);
    }

    fn take(&self) -> Vec<(u64, Vec<String>)> {
        sys::eventfd_drain(self.inner.efd);
        let mut queue = self
            .inner
            .queue
            // dvfs-lint: allow(reactor-nonblocking) leaf mailbox mutex held only to swap the Vec out; contenders are one-push slow-path writers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *queue)
    }
}

struct Entry {
    conn: Connection,
    generation: u32,
    /// Deferred batches whose replies have not yet been injected. The
    /// connection is not closed — even after peer EOF — while this is
    /// nonzero, so deferred responses can still be flushed.
    pending_deferred: usize,
    /// When this connection's write side armed `EPOLLOUT` (a flush
    /// stopped short on a full socket buffer). `None` while writes
    /// complete eagerly; the stall is reported to the [`Observer`] when
    /// the flush finally drains or the connection dies mid-stall.
    stalled_since: Option<Instant>,
}

struct Slab {
    slots: Vec<Option<Entry>>,
    /// Generation counter per slot, bumped on every reuse so stale
    /// tokens (deferred replies for a closed connection) cannot alias
    /// a new occupant.
    generations: Vec<u32>,
    free: Vec<usize>,
    open: usize,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            open: 0,
        }
    }

    fn insert(&mut self, conn: Connection) -> (usize, u32) {
        self.open += 1;
        if let Some(idx) = self.free.pop() {
            if let (Some(slot), Some(generation)) =
                (self.slots.get_mut(idx), self.generations.get_mut(idx))
            {
                *generation = generation.wrapping_add(1);
                *slot = Some(Entry {
                    conn,
                    generation: *generation,
                    pending_deferred: 0,
                    stalled_since: None,
                });
                return (idx, *generation);
            }
        }
        self.slots.push(Some(Entry {
            conn,
            generation: 0,
            pending_deferred: 0,
            stalled_since: None,
        }));
        self.generations.push(0);
        (self.slots.len() - 1, 0)
    }

    fn get_mut(&mut self, idx: usize) -> Option<&mut Entry> {
        self.slots.get_mut(idx).and_then(Option::as_mut)
    }

    fn remove(&mut self, idx: usize) -> Option<Entry> {
        let entry = self.slots.get_mut(idx).and_then(Option::take);
        if entry.is_some() {
            self.open -= 1;
            self.free.push(idx);
        }
        entry
    }
}

/// Run the reactor over an already-bound, **nonblocking** listening
/// socket until [`Handler::should_stop`] returns `true`. The listener
/// fd is borrowed: registered with the reactor's epoll instance for
/// the duration, never closed.
///
/// # Errors
/// Only on setup or wait failures of the epoll instance itself;
/// per-connection errors close that connection and keep the loop
/// running.
pub fn run(
    listener_fd: i32,
    cfg: &ReactorConfig,
    handler: &mut dyn Handler,
    observer: &mut dyn Observer,
) -> io::Result<()> {
    let poller = Poller::new()?;
    poller.add(listener_fd, LISTENER_TOKEN, Interest::READ)?;
    let mailbox = ReplyInjector {
        inner: Arc::new(MailboxInner {
            efd: sys::eventfd_nonblocking()?,
            queue: Mutex::new(Vec::new()),
        }),
    };
    poller.add(mailbox.inner.efd, WAKER_TOKEN, Interest::READ)?;
    handler.on_start(mailbox.clone());

    let mut slab = Slab::new();
    let mut events: Vec<Event> = Vec::new();
    let mut frames: Vec<Frame> = Vec::new();

    loop {
        let wait_start = Instant::now();
        let n = poller.wait(&mut events, cfg.poll_timeout_ms)?;
        let woke = Instant::now();
        observer.on_wakeup(n);
        if handler.should_stop() {
            break;
        }
        // Tokens are stable across the iteration: epoll coalesces to at
        // most one event per fd per wait, and the generation tag guards
        // against a slot closed and reused within the same batch.
        for i in 0..events.len() {
            let Some(&ev) = events.get(i) else { break };
            if ev.token == LISTENER_TOKEN {
                accept_ready(listener_fd, cfg, &poller, &mut slab, handler, observer);
            } else if ev.token == WAKER_TOKEN {
                apply_injections(&poller, &mut slab, &mailbox, observer);
            } else {
                service_connection(&poller, &mut slab, ev, handler, observer, &mut frames);
            }
        }
        observer.on_loop_times(
            woke.duration_since(wait_start).as_secs_f64(),
            woke.elapsed().as_secs_f64(),
        );
        if handler.should_stop() {
            break;
        }
    }

    // Graceful stop: deferred replies already injected land on their
    // connections first, then one best-effort flush of everything
    // queued, then drop (and thereby close) every connection.
    apply_injections(&poller, &mut slab, &mailbox, observer);
    for slot in &mut slab.slots {
        if let Some(entry) = slot.as_mut() {
            let _ = entry.conn.flush();
        }
        *slot = None;
    }
    let _ = poller.remove(listener_fd);
    Ok(())
}

fn accept_ready(
    listener_fd: i32,
    cfg: &ReactorConfig,
    poller: &Poller,
    slab: &mut Slab,
    handler: &mut dyn Handler,
    observer: &mut dyn Observer,
) {
    loop {
        let fd = match sys::accept_nonblocking(listener_fd) {
            Ok(fd) => fd,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // ECONNABORTED and friends: the would-be peer is gone.
            Err(_) => return,
        };
        if slab.open >= cfg.max_connections {
            // Shed at the door: one explicit wire response, then close.
            // A fresh socket's send buffer is empty, so the single
            // nonblocking write virtually always lands whole.
            let mut line = handler.shed_line().into_bytes();
            line.push(b'\n');
            let _ = sys::write_fd(fd, &line);
            sys::close_fd(fd);
            observer.on_accept_shed();
            continue;
        }
        let conn = Connection::new(fd, cfg.max_line_bytes);
        let (idx, generation) = slab.insert(conn);
        if poller
            .add(fd, conn_token(generation, idx), Interest::READ)
            .is_err()
        {
            let _ = slab.remove(idx);
            observer.on_close(slab.open);
            continue;
        }
        observer.on_open(slab.open);
    }
}

fn service_connection(
    poller: &Poller,
    slab: &mut Slab,
    ev: Event,
    handler: &mut dyn Handler,
    observer: &mut dyn Observer,
    frames: &mut Vec<Frame>,
) {
    let Some((generation, idx)) = token_parts(ev.token) else {
        return;
    };
    {
        let Some(entry) = slab.get_mut(idx) else {
            return; // closed earlier this iteration
        };
        if entry.generation != generation {
            return; // stale event for a reused slot
        }
        if ev.readable || ev.hangup {
            frames.clear();
            let eof = entry.conn.fill(frames).unwrap_or(true);
            dispatch_frames(entry, ev.token, frames, handler, observer);
            if eof || ev.hangup {
                // Drain-then-close: any complete lines above got their
                // responses (deferred ones keep the connection open
                // until they arrive); a mid-line fragment owes none.
                entry.conn.closing = true;
            }
        }
    }
    settle_connection(poller, slab, idx, observer);
}

/// Flush a connection's queued output and reconcile its lifecycle:
/// re-arm or disarm `EPOLLOUT` on transitions, close once it is
/// `closing` with nothing left to write and no deferred batch
/// outstanding, close immediately on hard write errors.
fn settle_connection(poller: &Poller, slab: &mut Slab, idx: usize, observer: &mut dyn Observer) {
    let Some(entry) = slab.get_mut(idx) else {
        return;
    };
    let token = conn_token(entry.generation, idx);
    let mut dead = false;

    match entry.conn.flush() {
        Ok(true) => {
            if let Some(since) = entry.stalled_since.take() {
                observer.on_backpressure_stall(since.elapsed().as_secs_f64());
            }
            if entry.conn.closing && entry.pending_deferred == 0 {
                dead = true;
            } else if entry.conn.write_armed {
                entry.conn.write_armed = false;
                if poller
                    .modify(entry.conn.fd(), token, Interest::READ)
                    .is_err()
                {
                    dead = true;
                }
            }
        }
        Ok(false) => {
            if entry.stalled_since.is_none() {
                entry.stalled_since = Some(Instant::now());
            }
            if !entry.conn.write_armed {
                entry.conn.write_armed = true;
                if poller
                    .modify(entry.conn.fd(), token, Interest::READ_WRITE)
                    .is_err()
                {
                    dead = true;
                }
            }
        }
        Err(_) => dead = true,
    }

    if dead {
        if let Some(entry) = slab.remove(idx) {
            let _ = poller.remove(entry.conn.fd());
            // A connection that dies mid-stall still closes its stall
            // window (the `Ok(true)` arm above already took the stamp
            // when the flush completed before death).
            if let Some(since) = entry.stalled_since {
                observer.on_backpressure_stall(since.elapsed().as_secs_f64());
            }
        }
        observer.on_close(slab.open);
    }
}

/// Apply every reply injected since the last wakeup: land each batch's
/// lines on its connection (dropping replies whose connection or
/// generation is gone), then flush and reconcile that connection.
fn apply_injections(
    poller: &Poller,
    slab: &mut Slab,
    mailbox: &ReplyInjector,
    observer: &mut dyn Observer,
) {
    for (token, lines) in mailbox.take() {
        let Some((generation, idx)) = token_parts(token) else {
            continue;
        };
        {
            let Some(entry) = slab.get_mut(idx) else {
                continue; // connection died before its reply arrived
            };
            if entry.generation != generation {
                continue; // slot reused; reply belongs to the old owner
            }
            // One injection completes one deferred batch, even when it
            // carries no lines.
            entry.pending_deferred = entry.pending_deferred.saturating_sub(1);
            for line in &lines {
                entry.conn.queue_line(line);
            }
        }
        settle_connection(poller, slab, idx, observer);
    }
}

/// Split one socket's drained frames into line batches and oversized
/// rejections, preserving wire order, and queue (or defer) the
/// responses.
fn dispatch_frames(
    entry: &mut Entry,
    token: u64,
    frames: &mut Vec<Frame>,
    handler: &mut dyn Handler,
    observer: &mut dyn Observer,
) {
    let Entry {
        conn,
        pending_deferred,
        ..
    } = entry;
    let mut lines: Vec<String> = Vec::new();
    let flush_batch = |lines: &mut Vec<String>,
                       conn: &mut Connection,
                       pending_deferred: &mut usize,
                       handler: &mut dyn Handler,
                       observer: &mut dyn Observer| {
        if lines.is_empty() {
            return;
        }
        observer.on_batch_size(lines.len());
        let deferred = handler.on_batch(token, *pending_deferred, lines, &mut |resp| {
            conn.queue_line(resp);
        });
        *pending_deferred += deferred;
        lines.clear();
    };
    for frame in frames.drain(..) {
        match frame {
            Frame::Line(line) => lines.push(line),
            Frame::Oversized { len } => {
                flush_batch(&mut lines, conn, pending_deferred, handler, observer);
                observer.on_oversized();
                let resp = handler.oversized_line(len);
                conn.queue_line(&resp);
            }
        }
    }
    flush_batch(&mut lines, conn, pending_deferred, handler, observer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write as _};
    use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Uppercases every line; "stop" requests shut the reactor down.
    /// Lines starting with "slow" — or any batch while a deferred
    /// batch is outstanding — are deferred to a helper thread that
    /// injects the replies.
    struct EchoUpper {
        stop: Arc<AtomicBool>,
        injector: Option<ReplyInjector>,
    }

    impl Handler for EchoUpper {
        fn on_start(&mut self, injector: ReplyInjector) {
            self.injector = Some(injector);
        }

        fn on_batch(
            &mut self,
            token: u64,
            pending: usize,
            lines: &[String],
            respond: &mut dyn FnMut(&str),
        ) -> usize {
            let slow = pending > 0 || lines.iter().any(|l| l.starts_with("slow"));
            if !slow {
                for line in lines {
                    if line == "stop" {
                        self.stop.store(true, Ordering::SeqCst);
                    }
                    respond(&line.to_uppercase());
                }
                return 0;
            }
            let injector = self.injector.clone().unwrap();
            let lines = lines.to_vec();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                injector.inject(token, lines.iter().map(|l| l.to_uppercase()).collect());
            });
            1
        }
        fn oversized_line(&mut self, len: usize) -> String {
            format!("oversized:{len}")
        }
        fn shed_line(&mut self) -> String {
            "shed".to_owned()
        }
        fn should_stop(&mut self) -> bool {
            self.stop.load(Ordering::SeqCst)
        }
    }

    #[derive(Default)]
    struct CountingObserver {
        opens: usize,
        closes: usize,
        sheds: usize,
        batches: Vec<usize>,
    }

    impl Observer for CountingObserver {
        fn on_open(&mut self, _open: usize) {
            self.opens += 1;
        }
        fn on_close(&mut self, _open: usize) {
            self.closes += 1;
        }
        fn on_accept_shed(&mut self) {
            self.sheds += 1;
        }
        fn on_batch_size(&mut self, lines: usize) {
            self.batches.push(lines);
        }
    }

    fn spawn_reactor(
        max_connections: usize,
    ) -> (
        SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<CountingObserver>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let cfg = ReactorConfig {
                max_connections,
                max_line_bytes: 64,
                poll_timeout_ms: 10,
            };
            let mut handler = EchoUpper {
                stop: stop2,
                injector: None,
            };
            let mut obs = CountingObserver::default();
            run(listener.as_raw_fd(), &cfg, &mut handler, &mut obs).unwrap();
            obs
        });
        (addr, stop, handle)
    }

    #[test]
    fn reactor_batches_pipelined_lines_and_preserves_order() {
        let (addr, stop, handle) = spawn_reactor(8);
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(b"alpha\nbeta\ngamma\n").unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut got = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            got.push(line.trim().to_owned());
        }
        assert_eq!(got, ["ALPHA", "BETA", "GAMMA"]);
        stop.store(true, Ordering::SeqCst);
        let obs = handle.join().unwrap();
        // All three lines arrived in one readiness batch (loopback
        // coalesces the single write), so one batch of 3 — but a racy
        // kernel split is tolerated as long as order held above.
        assert_eq!(obs.batches.iter().sum::<usize>(), 3);
        assert_eq!(obs.opens, 1);
    }

    #[test]
    fn reactor_sheds_accepts_over_budget() {
        let (addr, stop, handle) = spawn_reactor(1);
        let mut keep = TcpStream::connect(addr).unwrap();
        keep.write_all(b"ping\n").unwrap();
        let mut reader = BufReader::new(keep.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "PING");

        let shed = TcpStream::connect(addr).unwrap();
        let mut shed_reader = BufReader::new(shed);
        let mut shed_line = String::new();
        shed_reader.read_line(&mut shed_line).unwrap();
        assert_eq!(shed_line.trim(), "shed");
        // The shed socket is closed right after the response.
        shed_line.clear();
        assert_eq!(shed_reader.read_line(&mut shed_line).unwrap(), 0);

        stop.store(true, Ordering::SeqCst);
        let obs = handle.join().unwrap();
        assert_eq!(obs.sheds, 1);
        assert_eq!(obs.opens, 1);
    }

    #[test]
    fn reactor_rejects_oversized_lines_and_recovers() {
        let (addr, stop, handle) = spawn_reactor(4);
        let mut sock = TcpStream::connect(addr).unwrap();
        let big = vec![b'z'; 65];
        sock.write_all(&big).unwrap();
        sock.write_all(b"\nping\n").unwrap();
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("oversized:"), "got {line:?}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "PING");
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn mid_line_disconnect_owes_no_response_and_keeps_serving() {
        let (addr, stop, handle) = spawn_reactor(4);
        {
            let mut sock = TcpStream::connect(addr).unwrap();
            sock.write_all(b"half-a-lin").unwrap();
        } // dropped: mid-line disconnect
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(b"still-alive\n").unwrap();
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "STILL-ALIVE");
        stop.store(true, Ordering::SeqCst);
        let obs = handle.join().unwrap();
        assert_eq!(obs.opens, 2);
        // The first (mid-line) disconnect was definitely processed
        // before the second connection's response round-tripped; the
        // second close may race the stop flag.
        assert!(obs.closes >= 1, "closes = {}", obs.closes);
    }

    #[test]
    fn stop_request_flushes_the_final_response() {
        let (addr, _stop, handle) = spawn_reactor(4);
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(b"stop\n").unwrap();
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "STOP");
        handle.join().unwrap();
    }

    #[test]
    fn deferred_batches_reply_via_the_injector_in_order() {
        let (addr, stop, handle) = spawn_reactor(4);
        let mut sock = TcpStream::connect(addr).unwrap();
        // One batch of two lines, deferred whole: replies come back
        // through the injector, still in request order.
        sock.write_all(b"slow-one\nslow-two\n").unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut got = Vec::new();
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            got.push(line.trim().to_owned());
        }
        assert_eq!(got, ["SLOW-ONE", "SLOW-TWO"]);
        // The connection is fully alive again: a fast inline line
        // round-trips.
        sock.write_all(b"after\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "AFTER");
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    /// Defers every batch containing a "hold" line *without* replying —
    /// the test owns the injector and sends the replies itself, so it
    /// can race them against connection death and slot reuse.
    struct HoldHandler {
        stop: Arc<AtomicBool>,
        injector: Arc<Mutex<Option<ReplyInjector>>>,
        held: Arc<Mutex<Vec<u64>>>,
    }

    impl Handler for HoldHandler {
        fn on_start(&mut self, injector: ReplyInjector) {
            *self.injector.lock().unwrap() = Some(injector);
        }

        fn on_batch(
            &mut self,
            token: u64,
            _pending: usize,
            lines: &[String],
            respond: &mut dyn FnMut(&str),
        ) -> usize {
            if lines.iter().any(|l| l.starts_with("hold")) {
                self.held.lock().unwrap().push(token);
                return 1;
            }
            for line in lines {
                if line == "stop" {
                    self.stop.store(true, Ordering::SeqCst);
                }
                respond(&line.to_uppercase());
            }
            0
        }
        fn oversized_line(&mut self, len: usize) -> String {
            format!("oversized:{len}")
        }
        fn shed_line(&mut self) -> String {
            "shed".to_owned()
        }
        fn should_stop(&mut self) -> bool {
            self.stop.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn stale_deferred_reply_is_dropped_when_the_slot_is_reused() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let injector: Arc<Mutex<Option<ReplyInjector>>> = Arc::new(Mutex::new(None));
        let held: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let handle = {
            let (stop, injector, held) =
                (Arc::clone(&stop), Arc::clone(&injector), Arc::clone(&held));
            std::thread::spawn(move || {
                let cfg = ReactorConfig {
                    max_connections: 4,
                    max_line_bytes: 64,
                    poll_timeout_ms: 10,
                };
                let mut handler = HoldHandler {
                    stop,
                    injector,
                    held,
                };
                run(listener.as_raw_fd(), &cfg, &mut handler, &mut NullObserver).unwrap();
            })
        };
        let wait_held = |n: usize| {
            for _ in 0..500 {
                if held.lock().unwrap().len() >= n {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            panic!("handler never captured {n} deferred batches");
        };

        // Connection A parks three deferred batches (separate writes so
        // each arrives as its own readiness batch), then disappears.
        let mut a = TcpStream::connect(addr).unwrap();
        a.write_all(b"hold-1\n").unwrap();
        wait_held(1);
        a.write_all(b"hold-2\n").unwrap();
        wait_held(2);
        a.write_all(b"hold-3\n").unwrap();
        wait_held(3);
        let token_a = held.lock().unwrap()[0];
        assert!(
            held.lock().unwrap().iter().all(|&t| t == token_a),
            "one connection, one token"
        );
        drop(a); // FIN; the entry survives on its deferred batches
        let inject = |lines: Vec<&str>| {
            let injector = injector.lock().unwrap().clone().unwrap();
            injector.inject(token_a, lines.into_iter().map(String::from).collect());
        };
        // First reply still writes cleanly (the peer's kernel answers
        // with RST); after the RST lands, the second reply's write
        // fails hard and the reactor frees the slot — with the third
        // deferred batch still outstanding: a connection died mid-drain.
        inject(vec!["one"]);
        std::thread::sleep(std::time::Duration::from_millis(60));
        inject(vec!["two"]);
        std::thread::sleep(std::time::Duration::from_millis(60));

        // Connection B reuses A's slot (same index, bumped generation)
        // and is fully functional.
        let mut b = TcpStream::connect(addr).unwrap();
        b.write_all(b"ping\n").unwrap();
        let mut reader = BufReader::new(b.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "PING");

        // The third batch's reply finally arrives under A's old token.
        // The generation tag must drop it: B's very next line is its
        // own response, not A's buffered "stale".
        inject(vec!["stale"]);
        std::thread::sleep(std::time::Duration::from_millis(60));
        b.write_all(b"after\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            line.trim(),
            "AFTER",
            "stale deferred reply leaked onto the reused slot"
        );
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn peer_eof_with_a_deferred_batch_still_gets_its_reply() {
        let (addr, stop, handle) = spawn_reactor(4);
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(b"slow-goodbye\n").unwrap();
        // Half-close: the reactor sees EOF while the batch is still
        // deferred; the connection must survive until the reply lands.
        sock.shutdown(Shutdown::Write).unwrap();
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "SLOW-GOODBYE");
        // ... and then the drain-then-close completes.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
        stop.store(true, Ordering::SeqCst);
        let obs = handle.join().unwrap();
        assert_eq!(obs.opens, 1);
        assert!(obs.closes >= 1, "closes = {}", obs.closes);
    }
}
