//! The single-threaded mini-reactor: one epoll instance multiplexing a
//! listening socket and every accepted connection.
//!
//! Protocol logic stays out of this crate: the embedding server
//! provides a [`Handler`] (turn a batch of request lines into response
//! lines) and an [`Observer`] (metrics taps). The reactor owns
//! readiness, framing, batching, the connection budget, and
//! `EPOLLOUT`-re-armed backpressure.
//!
//! Event-loop shape per wakeup:
//!
//! 1. `epoll_wait` (bounded timeout, so [`Handler::should_stop`] is
//!    polled even when idle),
//! 2. listener readable → accept until `EAGAIN`, shedding with a final
//!    response line once the budget is reached,
//! 3. connection readable → drain reads into the framer, hand every
//!    complete line of the socket to the handler as **one batch**,
//!    queue the responses, flush,
//! 4. flush stopped by `EPOLLOUT`? re-arm write interest and finish the
//!    flush on a later wakeup.

use crate::conn::Connection;
use crate::framing::{Frame, DEFAULT_MAX_LINE};
use crate::poller::{Event, Interest, Poller};
use crate::sys;
use std::io;

/// Reactor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Open-connection budget; accepts beyond it are shed with
    /// [`Handler::shed_line`] and closed immediately.
    pub max_connections: usize,
    /// Per-line byte budget for the framer.
    pub max_line_bytes: usize,
    /// `epoll_wait` timeout — the stop-flag polling cadence.
    pub poll_timeout_ms: i32,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 10_240,
            max_line_bytes: DEFAULT_MAX_LINE,
            poll_timeout_ms: 100,
        }
    }
}

/// The embedding server's protocol logic.
pub trait Handler {
    /// Handle one batch: every complete request line drained from a
    /// single readable socket. Push exactly one response line per
    /// request line, in order, via `respond`.
    fn on_batch(&mut self, lines: &[String], respond: &mut dyn FnMut(&str));

    /// The response line for a request line that blew the byte budget
    /// (`len` bytes seen when it tripped).
    fn oversized_line(&mut self, len: usize) -> String;

    /// The final response line written to a connection shed by the
    /// budget, before it is closed.
    fn shed_line(&mut self) -> String;

    /// Polled once per wakeup; return `true` to stop the reactor
    /// (pending responses get a best-effort final flush).
    fn should_stop(&mut self) -> bool;
}

/// Metrics taps. Every method has a no-op default so embedders
/// implement only what they export.
pub trait Observer {
    /// A connection was accepted; `open` is the new open count.
    fn on_open(&mut self, open: usize) {
        let _ = open;
    }
    /// A connection closed; `open` is the new open count.
    fn on_close(&mut self, open: usize) {
        let _ = open;
    }
    /// An accept was shed by the connection budget.
    fn on_accept_shed(&mut self) {}
    /// One handler batch of `lines` complete request lines.
    fn on_batch_size(&mut self, lines: usize) {
        let _ = lines;
    }
    /// One `epoll_wait` returned `events` readiness records.
    fn on_wakeup(&mut self, events: usize) {
        let _ = events;
    }
    /// A request line exceeded the byte budget.
    fn on_oversized(&mut self) {}
}

/// Ignores everything — for tests and minimal embedders.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

const LISTENER_TOKEN: u64 = 0;

struct Slab {
    slots: Vec<Option<Connection>>,
    free: Vec<usize>,
    open: usize,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            open: 0,
        }
    }

    fn insert(&mut self, conn: Connection) -> usize {
        self.open += 1;
        if let Some(idx) = self.free.pop() {
            if let Some(slot) = self.slots.get_mut(idx) {
                *slot = Some(conn);
                return idx;
            }
        }
        self.slots.push(Some(conn));
        self.slots.len() - 1
    }

    fn get_mut(&mut self, idx: usize) -> Option<&mut Connection> {
        self.slots.get_mut(idx).and_then(Option::as_mut)
    }

    fn remove(&mut self, idx: usize) -> Option<Connection> {
        let conn = self.slots.get_mut(idx).and_then(Option::take);
        if conn.is_some() {
            self.open -= 1;
            self.free.push(idx);
        }
        conn
    }
}

/// Run the reactor over an already-bound, **nonblocking** listening
/// socket until [`Handler::should_stop`] returns `true`. The listener
/// fd is borrowed: registered with the reactor's epoll instance for
/// the duration, never closed.
///
/// # Errors
/// Only on setup or wait failures of the epoll instance itself;
/// per-connection errors close that connection and keep the loop
/// running.
pub fn run(
    listener_fd: i32,
    cfg: &ReactorConfig,
    handler: &mut dyn Handler,
    observer: &mut dyn Observer,
) -> io::Result<()> {
    let poller = Poller::new()?;
    poller.add(listener_fd, LISTENER_TOKEN, Interest::READ)?;

    let mut slab = Slab::new();
    let mut events: Vec<Event> = Vec::new();
    let mut frames: Vec<Frame> = Vec::new();

    loop {
        let n = poller.wait(&mut events, cfg.poll_timeout_ms)?;
        observer.on_wakeup(n);
        if handler.should_stop() {
            break;
        }
        // Tokens are stable across the iteration: epoll coalesces to at
        // most one event per fd per wait, and a connection is only ever
        // closed while its own event is being processed, so no stale
        // token can alias a slot reused by an accept in the same batch.
        for i in 0..events.len() {
            let Some(&ev) = events.get(i) else { break };
            if ev.token == LISTENER_TOKEN {
                accept_ready(listener_fd, cfg, &poller, &mut slab, handler, observer);
                continue;
            }
            let idx = usize::try_from(ev.token.saturating_sub(1)).unwrap_or(usize::MAX);
            service_connection(&poller, &mut slab, idx, ev, handler, observer, &mut frames);
        }
        if handler.should_stop() {
            break;
        }
    }

    // Graceful stop: one best-effort flush of queued responses, then
    // drop (and thereby close) every connection.
    for slot in &mut slab.slots {
        if let Some(conn) = slot.as_mut() {
            let _ = conn.flush();
        }
        *slot = None;
    }
    let _ = poller.remove(listener_fd);
    Ok(())
}

fn accept_ready(
    listener_fd: i32,
    cfg: &ReactorConfig,
    poller: &Poller,
    slab: &mut Slab,
    handler: &mut dyn Handler,
    observer: &mut dyn Observer,
) {
    loop {
        let fd = match sys::accept_nonblocking(listener_fd) {
            Ok(fd) => fd,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // ECONNABORTED and friends: the would-be peer is gone.
            Err(_) => return,
        };
        if slab.open >= cfg.max_connections {
            // Shed at the door: one explicit wire response, then close.
            // A fresh socket's send buffer is empty, so the single
            // nonblocking write virtually always lands whole.
            let mut line = handler.shed_line().into_bytes();
            line.push(b'\n');
            let _ = sys::write_fd(fd, &line);
            sys::close_fd(fd);
            observer.on_accept_shed();
            continue;
        }
        let conn = Connection::new(fd, cfg.max_line_bytes);
        let idx = slab.insert(conn);
        let token = idx as u64 + 1;
        if poller.add(fd, token, Interest::READ).is_err() {
            let _ = slab.remove(idx);
            observer.on_close(slab.open);
            continue;
        }
        observer.on_open(slab.open);
    }
}

fn service_connection(
    poller: &Poller,
    slab: &mut Slab,
    idx: usize,
    ev: Event,
    handler: &mut dyn Handler,
    observer: &mut dyn Observer,
    frames: &mut Vec<Frame>,
) {
    let Some(conn) = slab.get_mut(idx) else {
        return; // closed earlier this iteration
    };
    let token = idx as u64 + 1;
    let mut dead = false;

    if ev.readable || ev.hangup {
        frames.clear();
        let eof = conn.fill(frames).unwrap_or(true);
        dispatch_frames(conn, frames, handler, observer);
        if eof || ev.hangup {
            // Drain-then-close: any complete lines above got their
            // responses; a mid-line fragment owes none.
            conn.closing = true;
        }
    }

    match conn.flush() {
        Ok(true) => {
            if conn.closing {
                dead = true;
            } else if conn.write_armed {
                conn.write_armed = false;
                if poller.modify(conn.fd(), token, Interest::READ).is_err() {
                    dead = true;
                }
            }
        }
        Ok(false) => {
            if !conn.write_armed {
                conn.write_armed = true;
                if poller
                    .modify(conn.fd(), token, Interest::READ_WRITE)
                    .is_err()
                {
                    dead = true;
                }
            }
        }
        Err(_) => dead = true,
    }

    if dead {
        if let Some(conn) = slab.remove(idx) {
            let _ = poller.remove(conn.fd());
        }
        observer.on_close(slab.open);
    }
}

/// Split one socket's drained frames into line batches and oversized
/// rejections, preserving wire order, and queue the responses.
fn dispatch_frames(
    conn: &mut Connection,
    frames: &mut Vec<Frame>,
    handler: &mut dyn Handler,
    observer: &mut dyn Observer,
) {
    let mut lines: Vec<String> = Vec::new();
    let flush_batch = |lines: &mut Vec<String>,
                       conn: &mut Connection,
                       handler: &mut dyn Handler,
                       observer: &mut dyn Observer| {
        if lines.is_empty() {
            return;
        }
        observer.on_batch_size(lines.len());
        handler.on_batch(lines, &mut |resp| conn.queue_line(resp));
        lines.clear();
    };
    for frame in frames.drain(..) {
        match frame {
            Frame::Line(line) => lines.push(line),
            Frame::Oversized { len } => {
                flush_batch(&mut lines, conn, handler, observer);
                observer.on_oversized();
                let resp = handler.oversized_line(len);
                conn.queue_line(&resp);
            }
        }
    }
    flush_batch(&mut lines, conn, handler, observer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Uppercases every line; "stop" requests shut the reactor down.
    struct EchoUpper {
        stop: Arc<AtomicBool>,
    }

    impl Handler for EchoUpper {
        fn on_batch(&mut self, lines: &[String], respond: &mut dyn FnMut(&str)) {
            for line in lines {
                if line == "stop" {
                    self.stop.store(true, Ordering::SeqCst);
                }
                respond(&line.to_uppercase());
            }
        }
        fn oversized_line(&mut self, len: usize) -> String {
            format!("oversized:{len}")
        }
        fn shed_line(&mut self) -> String {
            "shed".to_owned()
        }
        fn should_stop(&mut self) -> bool {
            self.stop.load(Ordering::SeqCst)
        }
    }

    #[derive(Default)]
    struct CountingObserver {
        opens: usize,
        closes: usize,
        sheds: usize,
        batches: Vec<usize>,
    }

    impl Observer for CountingObserver {
        fn on_open(&mut self, _open: usize) {
            self.opens += 1;
        }
        fn on_close(&mut self, _open: usize) {
            self.closes += 1;
        }
        fn on_accept_shed(&mut self) {
            self.sheds += 1;
        }
        fn on_batch_size(&mut self, lines: usize) {
            self.batches.push(lines);
        }
    }

    fn spawn_reactor(
        max_connections: usize,
    ) -> (
        std::net::SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<CountingObserver>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let cfg = ReactorConfig {
                max_connections,
                max_line_bytes: 64,
                poll_timeout_ms: 10,
            };
            let mut handler = EchoUpper { stop: stop2 };
            let mut obs = CountingObserver::default();
            run(listener.as_raw_fd(), &cfg, &mut handler, &mut obs).unwrap();
            obs
        });
        (addr, stop, handle)
    }

    #[test]
    fn reactor_batches_pipelined_lines_and_preserves_order() {
        let (addr, stop, handle) = spawn_reactor(8);
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(b"alpha\nbeta\ngamma\n").unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut got = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            got.push(line.trim().to_owned());
        }
        assert_eq!(got, ["ALPHA", "BETA", "GAMMA"]);
        stop.store(true, Ordering::SeqCst);
        let obs = handle.join().unwrap();
        // All three lines arrived in one readiness batch (loopback
        // coalesces the single write), so one batch of 3 — but a racy
        // kernel split is tolerated as long as order held above.
        assert_eq!(obs.batches.iter().sum::<usize>(), 3);
        assert_eq!(obs.opens, 1);
    }

    #[test]
    fn reactor_sheds_accepts_over_budget() {
        let (addr, stop, handle) = spawn_reactor(1);
        let mut keep = TcpStream::connect(addr).unwrap();
        keep.write_all(b"ping\n").unwrap();
        let mut reader = BufReader::new(keep.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "PING");

        let shed = TcpStream::connect(addr).unwrap();
        let mut shed_reader = BufReader::new(shed);
        let mut shed_line = String::new();
        shed_reader.read_line(&mut shed_line).unwrap();
        assert_eq!(shed_line.trim(), "shed");
        // The shed socket is closed right after the response.
        shed_line.clear();
        assert_eq!(shed_reader.read_line(&mut shed_line).unwrap(), 0);

        stop.store(true, Ordering::SeqCst);
        let obs = handle.join().unwrap();
        assert_eq!(obs.sheds, 1);
        assert_eq!(obs.opens, 1);
    }

    #[test]
    fn reactor_rejects_oversized_lines_and_recovers() {
        let (addr, stop, handle) = spawn_reactor(4);
        let mut sock = TcpStream::connect(addr).unwrap();
        let big = vec![b'z'; 65];
        sock.write_all(&big).unwrap();
        sock.write_all(b"\nping\n").unwrap();
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("oversized:"), "got {line:?}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "PING");
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn mid_line_disconnect_owes_no_response_and_keeps_serving() {
        let (addr, stop, handle) = spawn_reactor(4);
        {
            let mut sock = TcpStream::connect(addr).unwrap();
            sock.write_all(b"half-a-lin").unwrap();
        } // dropped: mid-line disconnect
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(b"still-alive\n").unwrap();
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "STILL-ALIVE");
        stop.store(true, Ordering::SeqCst);
        let obs = handle.join().unwrap();
        assert_eq!(obs.opens, 2);
        // The first (mid-line) disconnect was definitely processed
        // before the second connection's response round-tripped; the
        // second close may race the stop flag.
        assert!(obs.closes >= 1, "closes = {}", obs.closes);
    }

    #[test]
    fn stop_request_flushes_the_final_response() {
        let (addr, _stop, handle) = spawn_reactor(4);
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(b"stop\n").unwrap();
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "STOP");
        handle.join().unwrap();
    }
}
