//! Incremental NDJSON line framing.
//!
//! A [`LineFramer`] accepts arbitrary byte chunks as they arrive from a
//! nonblocking socket and emits complete frames: one [`Frame::Line`]
//! per newline-terminated, non-blank line (CR stripped, surrounding
//! whitespace trimmed — matching what the thread backend's
//! `BufRead::read_line` + `trim()` path accepted historically), or one
//! [`Frame::Oversized`] the moment a line crosses the configured byte
//! budget. Oversized input is then discarded up to the next newline so
//! a hostile or broken client cannot grow the per-connection buffer
//! without bound.
//!
//! Both wire front-ends in `dvfs-serve` run this exact framer, and
//! [`edge_cases`] is the shared table their tests drive it with.

/// Default per-line byte budget shared by both wire front-ends.
pub const DEFAULT_MAX_LINE: usize = 64 * 1024;

/// One framing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete, non-blank request line (newline and CR stripped).
    Line(String),
    /// A line exceeded the budget; `len` is the bytes seen when the
    /// limit tripped. Emitted once per oversized line, at detection
    /// time, so the peer gets its error before the line even ends.
    Oversized {
        /// Bytes accumulated when the budget was exceeded.
        len: usize,
    },
}

/// Incremental line splitter with an oversized-line guard.
#[derive(Debug)]
pub struct LineFramer {
    partial: Vec<u8>,
    max_line: usize,
    discarding: bool,
}

impl LineFramer {
    /// A framer that rejects lines longer than `max_line` bytes.
    #[must_use]
    pub fn new(max_line: usize) -> Self {
        LineFramer {
            partial: Vec::new(),
            max_line: max_line.max(1),
            discarding: false,
        }
    }

    /// Feed one chunk of bytes, appending any completed frames to
    /// `out`. Order is preserved: frames appear exactly in wire order.
    pub fn feed(&mut self, data: &[u8], out: &mut Vec<Frame>) {
        let empty: &[u8] = &[];
        let mut rest = data;
        while !rest.is_empty() {
            let (chunk, after, terminated) = match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let (head, tail) = rest.split_at(pos);
                    (head, tail.get(1..).unwrap_or(empty), true)
                }
                None => (rest, empty, false),
            };
            rest = after;
            if self.discarding {
                // Inside an already-reported oversized line: swallow
                // until its terminating newline.
                if terminated {
                    self.discarding = false;
                }
                continue;
            }
            if self.partial.len() + chunk.len() > self.max_line {
                out.push(Frame::Oversized {
                    len: self.partial.len() + chunk.len(),
                });
                self.partial.clear();
                self.discarding = !terminated;
                continue;
            }
            if terminated {
                let mut line = std::mem::take(&mut self.partial);
                line.extend_from_slice(chunk);
                let text = String::from_utf8_lossy(&line);
                let text = text.trim();
                if !text.is_empty() {
                    out.push(Frame::Line(text.to_owned()));
                }
            } else {
                self.partial.extend_from_slice(chunk);
            }
        }
    }

    /// Bytes buffered for the line in progress.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.partial.len()
    }

    /// True when an unterminated line is pending — either buffered
    /// bytes or an oversized line still being discarded. A disconnect
    /// in this state is a mid-line disconnect: the fragment is dropped
    /// and owes no response.
    #[must_use]
    pub fn has_partial(&self) -> bool {
        !self.partial.is_empty() || self.discarding
    }
}

/// Expected outcome of one framing step in an [`edge_cases`] entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// A complete line with this exact text.
    Line(&'static str),
    /// An oversized-line rejection (length not pinned — it depends on
    /// the budget the table was built for).
    Oversized,
}

/// One table-driven framing scenario.
#[derive(Debug)]
pub struct FramingCase {
    /// Scenario name, used in assertion messages.
    pub name: &'static str,
    /// The byte chunks, in arrival order. Chunk boundaries are part of
    /// the scenario: unit tests feed them one `feed` call at a time.
    pub chunks: Vec<Vec<u8>>,
    /// The frames the framer must emit, in order.
    pub want: Vec<Expect>,
    /// Whether an unterminated fragment must remain buffered after the
    /// last chunk (the mid-line-disconnect scenarios).
    pub leftover: bool,
}

/// The shared edge-case table, scaled to a line budget of `max_line`
/// bytes. `dvfs-net`'s unit tests run it straight through a
/// [`LineFramer`]; the serve integration tests replay the same chunks
/// over live sockets against both wire backends and count responses.
#[must_use]
pub fn edge_cases(max_line: usize) -> Vec<FramingCase> {
    let max_line = max_line.max(8);
    let big = vec![b'x'; max_line + 1];
    let mut big_then_ok = big.clone();
    big_then_ok.extend_from_slice(b"\nok\n");
    vec![
        FramingCase {
            name: "partial-line-across-reads",
            chunks: vec![b"{\"cmd\":\"pi".to_vec(), b"ng\"}\n".to_vec()],
            want: vec![Expect::Line("{\"cmd\":\"ping\"}")],
            leftover: false,
        },
        FramingCase {
            name: "multiple-lines-per-read",
            chunks: vec![b"one\ntwo\nthree\n".to_vec()],
            want: vec![
                Expect::Line("one"),
                Expect::Line("two"),
                Expect::Line("three"),
            ],
            leftover: false,
        },
        FramingCase {
            name: "oversized-line-rejected-then-recovers",
            chunks: vec![big_then_ok],
            want: vec![Expect::Oversized, Expect::Line("ok")],
            leftover: false,
        },
        FramingCase {
            name: "oversized-reported-before-newline",
            chunks: vec![big, b"trailing".to_vec(), b"\nok\n".to_vec()],
            want: vec![Expect::Oversized, Expect::Line("ok")],
            leftover: false,
        },
        FramingCase {
            name: "mid-line-disconnect-drops-fragment",
            chunks: vec![b"{\"cmd\":\"sta".to_vec()],
            want: vec![],
            leftover: true,
        },
        FramingCase {
            name: "crlf-and-blank-lines",
            chunks: vec![b"first\r\n\r\n\nsecond\n".to_vec()],
            want: vec![Expect::Line("first"), Expect::Line("second")],
            leftover: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_case(case: &FramingCase, max_line: usize) -> (Vec<Frame>, bool) {
        let mut framer = LineFramer::new(max_line);
        let mut out = Vec::new();
        for chunk in &case.chunks {
            framer.feed(chunk, &mut out);
        }
        (out, framer.has_partial())
    }

    #[test]
    fn edge_case_table_holds() {
        let max_line = 32;
        for case in edge_cases(max_line) {
            let (frames, leftover) = run_case(&case, max_line);
            assert_eq!(frames.len(), case.want.len(), "{}: frame count", case.name);
            for (got, want) in frames.iter().zip(&case.want) {
                match (got, want) {
                    (Frame::Line(l), Expect::Line(w)) => {
                        assert_eq!(l, w, "{}: line text", case.name);
                    }
                    (Frame::Oversized { len }, Expect::Oversized) => {
                        assert!(*len > max_line, "{}: oversized len", case.name);
                    }
                    (got, want) => panic!("{}: got {got:?}, want {want:?}", case.name),
                }
            }
            assert_eq!(leftover, case.leftover, "{}: leftover", case.name);
        }
    }

    #[test]
    fn byte_at_a_time_feeding_matches_bulk() {
        let data = b"alpha\nbeta\r\ngamma";
        let mut bulk = LineFramer::new(64);
        let mut bulk_out = Vec::new();
        bulk.feed(data, &mut bulk_out);

        let mut drip = LineFramer::new(64);
        let mut drip_out = Vec::new();
        for b in data {
            drip.feed(std::slice::from_ref(b), &mut drip_out);
        }
        assert_eq!(bulk_out, drip_out);
        assert_eq!(bulk.buffered(), drip.buffered());
        assert!(drip.has_partial(), "gamma has no newline yet");
    }

    #[test]
    fn exact_budget_line_is_accepted() {
        let mut framer = LineFramer::new(4);
        let mut out = Vec::new();
        framer.feed(b"abcd\nabcde\n", &mut out);
        assert_eq!(
            out,
            vec![Frame::Line("abcd".to_owned()), Frame::Oversized { len: 5 }]
        );
    }

    #[test]
    fn oversized_line_is_reported_exactly_once() {
        let mut framer = LineFramer::new(4);
        let mut out = Vec::new();
        framer.feed(b"toolong", &mut out);
        framer.feed(b"evenlonger", &mut out);
        framer.feed(b"\nok\n", &mut out);
        assert_eq!(
            out,
            vec![Frame::Oversized { len: 7 }, Frame::Line("ok".to_owned())]
        );
        assert!(!framer.has_partial());
    }
}
