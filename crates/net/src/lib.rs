//! `dvfs-net` — a zero-dependency epoll mini-reactor for the DVFS
//! scheduler service's wire front-end.
//!
//! The thread-per-connection backend in `dvfs-serve` costs a stack per
//! client; at tens of thousands of mostly-idle connections that is the
//! dominant memory bill before the scheduler's decision path even
//! runs. This crate provides the evented alternative:
//!
//! - [`sys`] — thin `extern "C"` bindings for exactly the syscalls the
//!   reactor needs (`epoll_create1`/`epoll_ctl`/`epoll_wait`,
//!   `accept4`, nonblocking `read`/`write`, `rlimit`). The only
//!   `unsafe` in the crate lives here.
//! - [`poller`] — a safe epoll wrapper ([`Poller`], [`Interest`],
//!   [`Event`]).
//! - [`framing`] — incremental NDJSON line splitting with an
//!   oversized-line guard ([`LineFramer`], [`Frame`]), plus the shared
//!   edge-case table ([`framing::edge_cases`]) both wire backends test
//!   against.
//! - [`conn`] — per-connection read framer + buffered write side with
//!   explicit backpressure ([`Connection`]).
//! - [`reactor`] — the event loop ([`reactor::run`]): accept with a
//!   shed-on-accept connection budget, batch every complete line of a
//!   readable socket into one [`Handler`] call, re-arm `EPOLLOUT`
//!   while responses are part-written, and apply deferred replies
//!   other threads deliver through a [`ReplyInjector`] (an
//!   eventfd-woken mailbox), so a slow handler never has to block the
//!   event loop.
//!
//! The crate knows nothing about the wire protocol or the scheduler:
//! embedders supply a [`Handler`] for request lines and an
//! [`Observer`] for metrics. It deliberately has **no dependencies**
//! (workspace or external) so the layering invariant is structural.

pub mod conn;
pub mod framing;
pub mod poller;
pub mod reactor;
pub mod sys;

pub use conn::Connection;
pub use framing::{Frame, LineFramer, DEFAULT_MAX_LINE};
pub use poller::{Event, Interest, Poller};
pub use reactor::{Handler, NullObserver, Observer, ReactorConfig, ReplyInjector};
