//! In-process metrics: counters, gauges, and log-bucketed histograms.
//!
//! The registry is the single source of operational truth for the
//! service. Counters and gauges are lock-free atomics; histograms keep
//! geometrically spaced buckets so a fixed, small footprint covers nine
//! decades of latency (or cost) while quantile error stays bounded by
//! the bucket growth factor.

use serde::{Number, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depth, pending tasks, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Smallest finite value with its own bucket; anything below lands in
/// the underflow bucket 0. With seconds as the unit this is 1 µs.
const HIST_BASE: f64 = 1e-6;
/// Geometric growth per bucket. Quantiles are reported as the bucket's
/// geometric midpoint, so the relative error is at most `sqrt(2) - 1`.
const HIST_GROWTH: f64 = 2.0;
/// Bucket count: underflow + 60 geometric buckets reaches ~1.15e12 ×
/// base, far past any latency or cost this service records.
const HIST_BUCKETS: usize = 61;

#[derive(Debug)]
struct HistInner {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A log-bucketed histogram over non-negative `f64` samples.
#[derive(Debug)]
pub struct Histogram {
    inner: Mutex<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Mutex::new(HistInner {
                counts: [0; HIST_BUCKETS],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }
}

/// Bucket index for a sample: 0 is the underflow bucket `[0, base)`,
/// bucket `i >= 1` covers `[base * g^(i-1), base * g^i)`.
#[must_use]
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < HIST_BASE {
        // Negative, NaN, and sub-base samples all underflow.
        return 0;
    }
    let i = (v / HIST_BASE).log(HIST_GROWTH).floor() as usize + 1;
    i.min(HIST_BUCKETS - 1)
}

/// Representative value reported for a bucket: its geometric midpoint
/// (half the base for the underflow bucket).
#[must_use]
pub fn bucket_value(i: usize) -> f64 {
    if i == 0 {
        return HIST_BASE / 2.0;
    }
    let lo = HIST_BASE * HIST_GROWTH.powi(i as i32 - 1);
    lo * HIST_GROWTH.sqrt()
}

impl Histogram {
    fn lock(&self) -> std::sync::MutexGuard<'_, HistInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record one sample.
    pub fn record(&self, v: f64) {
        let mut h = self.lock();
        h.counts[bucket_index(v)] += 1;
        h.count += 1;
        h.sum += v;
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.lock().count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.lock().sum
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the
    /// geometric midpoint of the bucket holding that rank. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let h = self.lock();
        if h.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * h.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_value(i));
            }
        }
        Some(bucket_value(HIST_BUCKETS - 1))
    }

    /// Snapshot as a JSON object: count, sum, min/max, p50/p95/p99.
    fn to_value(&self) -> Value {
        let (count, sum, min, max) = {
            let h = self.lock();
            (h.count, h.sum, h.min, h.max)
        };
        let quant = |q| self.quantile(q).unwrap_or(0.0);
        let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
        Value::Object(vec![
            ("count".into(), Value::Number(Number::PosInt(count))),
            ("sum".into(), Value::Number(Number::Float(sum))),
            ("min".into(), Value::Number(Number::Float(finite(min)))),
            ("max".into(), Value::Number(Number::Float(finite(max)))),
            ("p50".into(), Value::Number(Number::Float(quant(0.50)))),
            ("p95".into(), Value::Number(Number::Float(quant(0.95)))),
            ("p99".into(), Value::Number(Number::Float(quant(0.99)))),
        ])
    }
}

/// Registry name for the per-shard variant of metric `name`
/// (`name.shardK`). The unsuffixed name stays the merged total, so the
/// sorted snapshot lists a metric directly above its shard breakdown.
#[must_use]
pub fn shard_metric(name: &str, shard: usize) -> String {
    format!("{name}.shard{shard}")
}

fn read_or_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_or_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Named metrics, created on first use and shared by `Arc`.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

macro_rules! get_or_create {
    ($self:ident, $map:ident, $name:ident) => {{
        if let Some(m) = read_or_recover(&$self.$map).get($name) {
            return Arc::clone(m);
        }
        Arc::clone(
            write_or_recover(&$self.$map)
                .entry($name.to_string())
                .or_default(),
        )
    }};
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create!(self, counters, name)
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create!(self, gauges, name)
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create!(self, histograms, name)
    }

    /// Snapshot every metric as one JSON object (deterministic name
    /// order).
    #[must_use]
    pub fn snapshot(&self) -> Value {
        let counters = read_or_recover(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), Value::Number(Number::PosInt(v.get()))))
            .collect();
        let gauges = read_or_recover(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), Value::Number(Number::NegInt(v.get()))))
            .collect();
        let histograms = read_or_recover(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_geometric() {
        // Below base → underflow bucket.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(0.99e-6), 0);
        // [base, 2*base) → bucket 1, each doubling advances one bucket.
        assert_eq!(bucket_index(1.0e-6), 1);
        assert_eq!(bucket_index(1.99e-6), 1);
        assert_eq!(bucket_index(2.0e-6), 2);
        assert_eq!(bucket_index(4.0e-6), 3);
        // 1 second = base * 2^19.93… → bucket 20.
        assert_eq!(bucket_index(1.0), 20);
        // Far overflow clamps to the last bucket.
        assert_eq!(bucket_index(1e300), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_value_sits_inside_the_bucket() {
        for i in 1..HIST_BUCKETS - 1 {
            let v = bucket_value(i);
            assert_eq!(bucket_index(v), i, "midpoint of bucket {i} maps back");
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        // 90 fast samples at ~1 ms, 10 slow at ~1 s.
        for _ in 0..90 {
            h.record(1.0e-3);
        }
        for _ in 0..10 {
            h.record(1.0);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // p50 lands in the 1 ms bucket, p95/p99 in the 1 s bucket;
        // midpoint error is bounded by the sqrt(2) growth factor.
        assert!((0.5e-3..2.0e-3).contains(&p50), "p50 = {p50}");
        assert!((0.5..2.0).contains(&p95), "p95 = {p95}");
        assert!((0.5..2.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn quantile_edges_and_single_sample() {
        // A single sample: every quantile, including the edges, is that
        // sample's bucket midpoint.
        let h = Histogram::default();
        h.record(0.01);
        let mid = bucket_value(bucket_index(0.01));
        assert_eq!(h.quantile(0.0), Some(mid));
        assert_eq!(h.quantile(0.5), Some(mid));
        assert_eq!(h.quantile(1.0), Some(mid));
        // Out-of-range q clamps rather than panicking or skipping
        // buckets.
        assert_eq!(h.quantile(-0.5), Some(mid));
        assert_eq!(h.quantile(2.0), Some(mid));

        // Two distinct buckets: q=0.0 must land in the lowest occupied
        // bucket (rank clamps up to 1, not 0) and q=1.0 in the highest.
        let h = Histogram::default();
        h.record(1.0e-3);
        h.record(1.0);
        assert_eq!(h.quantile(0.0), Some(bucket_value(bucket_index(1.0e-3))));
        assert_eq!(h.quantile(1.0), Some(bucket_value(bucket_index(1.0))));
    }

    #[test]
    fn shard_metric_names_group_under_the_total() {
        assert_eq!(shard_metric("queue_depth", 0), "queue_depth.shard0");
        assert_eq!(shard_metric("completed", 13), "completed.shard13");
    }

    #[test]
    fn registry_shares_instances_and_snapshots() {
        let r = Registry::new();
        r.counter("requests").inc();
        r.counter("requests").add(2);
        r.gauge("depth").set(-4);
        r.histogram("latency").record(0.01);
        assert_eq!(r.counter("requests").get(), 3);
        let snap = r.snapshot();
        let c = snap.get("counters").unwrap().get("requests").unwrap();
        assert_eq!(c, &Value::Number(Number::PosInt(3)));
        let g = snap.get("gauges").unwrap().get("depth").unwrap();
        assert_eq!(g, &Value::Number(Number::NegInt(-4)));
        let h = snap.get("histograms").unwrap().get("latency").unwrap();
        assert_eq!(h.get("count").unwrap(), &Value::Number(Number::PosInt(1)));
    }
}
