//! In-process metrics: counters, gauges, and log-bucketed histograms.
//!
//! The registry is the single source of operational truth for the
//! service. Counters and gauges are lock-free atomics; histograms keep
//! geometrically spaced buckets so a fixed, small footprint covers nine
//! decades of latency (or cost) while quantile error stays bounded by
//! the bucket growth factor.

use serde::{Number, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depth, pending tasks, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Smallest finite value with its own bucket; anything below lands in
/// the underflow bucket 0. With seconds as the unit this is 1 µs.
const HIST_BASE: f64 = 1e-6;
/// Geometric growth per bucket. Quantiles are reported as the bucket's
/// geometric midpoint, so the relative error is at most `sqrt(2) - 1`.
const HIST_GROWTH: f64 = 2.0;
/// Bucket count: underflow + 60 geometric buckets reaches ~1.15e12 ×
/// base, far past any latency or cost this service records.
pub const HIST_BUCKETS: usize = 61;

#[derive(Debug)]
struct HistInner {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A log-bucketed histogram over non-negative `f64` samples.
#[derive(Debug)]
pub struct Histogram {
    inner: Mutex<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Mutex::new(HistInner {
                counts: [0; HIST_BUCKETS],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }
}

/// Bucket index for a sample: 0 is the underflow bucket `[0, base)`,
/// bucket `i >= 1` covers `[base * g^(i-1), base * g^i)`.
#[must_use]
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < HIST_BASE {
        // Negative, NaN, and sub-base samples all underflow.
        return 0;
    }
    let i = (v / HIST_BASE).log(HIST_GROWTH).floor() as usize + 1;
    i.min(HIST_BUCKETS - 1)
}

/// Representative value reported for a bucket: its geometric midpoint
/// (half the base for the underflow bucket).
#[must_use]
pub fn bucket_value(i: usize) -> f64 {
    if i == 0 {
        return HIST_BASE / 2.0;
    }
    let lo = HIST_BASE * HIST_GROWTH.powi(i as i32 - 1);
    lo * HIST_GROWTH.sqrt()
}

/// Exclusive upper bound of bucket `i` (the `le` bound Prometheus
/// renders). The final bucket clamps to infinity, so callers exporting
/// bounded buckets should stop at `HIST_BUCKETS - 2` and let the
/// `+Inf` bucket cover the clamp.
#[must_use]
pub fn bucket_upper_bound(i: usize) -> f64 {
    if i == 0 {
        return HIST_BASE;
    }
    HIST_BASE * HIST_GROWTH.powi(i as i32)
}

impl Histogram {
    fn lock(&self) -> std::sync::MutexGuard<'_, HistInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record one sample.
    pub fn record(&self, v: f64) {
        let mut h = self.lock();
        Self::record_locked(&mut h, v);
    }

    /// Record a batch of samples under one lock acquisition. The hot
    /// stage-attribution paths run per drained round, not per task, so
    /// a round's worth of samples costs one mutex round-trip instead
    /// of one per sample.
    pub fn record_many(&self, samples: &[f64]) {
        if samples.is_empty() {
            return;
        }
        let mut h = self.lock();
        for &v in samples {
            Self::record_locked(&mut h, v);
        }
    }

    fn record_locked(h: &mut HistInner, v: f64) {
        h.counts[bucket_index(v)] += 1;
        h.count += 1;
        h.sum += v;
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.lock().count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.lock().sum
    }

    /// Raw per-bucket counts, length [`HIST_BUCKETS`]. Index with
    /// [`bucket_index`] / [`bucket_upper_bound`].
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.lock().counts.to_vec()
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the
    /// geometric midpoint of the bucket holding that rank. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let h = self.lock();
        if h.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * h.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_value(i));
            }
        }
        Some(bucket_value(HIST_BUCKETS - 1))
    }

    /// Fold another histogram's samples into this one: bucket counts,
    /// count, and sum add; min/max widen. Merging is commutative and
    /// associative (floating-point sum reassociation aside), so merging
    /// every `name.shardK` stage histogram reproduces the global `name`
    /// histogram bucket-for-bucket.
    pub fn merge_from(&self, other: &Histogram) {
        // Snapshot the source first so the two locks are never held at
        // once (self.merge_from(self) would otherwise deadlock, and a
        // fixed single-lock-at-a-time discipline cannot invert).
        let (counts, count, sum, min, max) = {
            let o = other.lock();
            (o.counts, o.count, o.sum, o.min, o.max)
        };
        let mut h = self.lock();
        for (dst, src) in h.counts.iter_mut().zip(counts.iter()) {
            *dst += src;
        }
        h.count += count;
        h.sum += sum;
        h.min = h.min.min(min);
        h.max = h.max.max(max);
    }

    /// Snapshot as a JSON object: count, sum, min/max, p50/p95/p99, and
    /// the raw occupied buckets as `[index, count]` pairs (an additive
    /// field — consumers of the quantile-only schema are unaffected).
    pub(crate) fn to_value(&self) -> Value {
        let (count, sum, min, max, counts) = {
            let h = self.lock();
            (h.count, h.sum, h.min, h.max, h.counts)
        };
        let quant = |q| self.quantile(q).unwrap_or(0.0);
        let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
        let buckets: Vec<Value> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Value::Array(vec![
                    Value::Number(Number::PosInt(i as u64)),
                    Value::Number(Number::PosInt(c)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("count".into(), Value::Number(Number::PosInt(count))),
            ("sum".into(), Value::Number(Number::Float(sum))),
            ("min".into(), Value::Number(Number::Float(finite(min)))),
            ("max".into(), Value::Number(Number::Float(finite(max)))),
            ("p50".into(), Value::Number(Number::Float(quant(0.50)))),
            ("p95".into(), Value::Number(Number::Float(quant(0.95)))),
            ("p99".into(), Value::Number(Number::Float(quant(0.99)))),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }
}

/// Registry name for the per-shard variant of metric `name`
/// (`name.shardK`). The unsuffixed name stays the merged total, so the
/// sorted snapshot lists a metric directly above its shard breakdown.
#[must_use]
pub fn shard_metric(name: &str, shard: usize) -> String {
    format!("{name}.shard{shard}")
}

fn read_or_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_or_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Named metrics, created on first use and shared by `Arc`.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

macro_rules! get_or_create {
    ($self:ident, $map:ident, $name:ident) => {{
        if let Some(m) = read_or_recover(&$self.$map).get($name) {
            return Arc::clone(m);
        }
        Arc::clone(
            write_or_recover(&$self.$map)
                .entry($name.to_string())
                .or_default(),
        )
    }};
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create!(self, counters, name)
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create!(self, gauges, name)
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create!(self, histograms, name)
    }

    /// Snapshot every metric as one JSON object (deterministic name
    /// order).
    #[must_use]
    pub fn snapshot(&self) -> Value {
        let counters = read_or_recover(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), Value::Number(Number::PosInt(v.get()))))
            .collect();
        let gauges = read_or_recover(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), Value::Number(Number::NegInt(v.get()))))
            .collect();
        let histograms = read_or_recover(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }
}

/// Split a registry metric name into its base family name and an
/// optional shard label: `"completed.shard3"` → `("completed",
/// Some("3"))`, anything else passes through unlabelled.
fn split_shard(name: &str) -> (&str, Option<&str>) {
    if let Some(pos) = name.rfind(".shard") {
        let digits = &name[pos + ".shard".len()..];
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            return (&name[..pos], Some(digits));
        }
    }
    (name, None)
}

fn shard_labels(shard: Option<&str>) -> Vec<(String, String)> {
    match shard {
        Some(k) => vec![("shard".to_string(), k.to_string())],
        None => Vec::new(),
    }
}

/// Render the registry in the Prometheus text exposition format
/// ([`dvfs_trace::prom::TEXT_FORMAT`]). Per-shard variants
/// (`name.shardK`) fold into their base family with a `shard` label;
/// every family gets a `dvfs_` namespace prefix.
#[must_use]
pub fn prometheus_text(registry: &Registry) -> String {
    use dvfs_trace::prom::{
        render, sanitize_name, PromFamily, PromHistogram, PromSample, PromValue,
    };

    // BTreeMap iteration gives deterministic family order; within a
    // family, the unsuffixed total sorts before its shard breakdown.
    let mut families: Vec<PromFamily> = Vec::new();
    let mut push_samples = |raw: Vec<(String, Vec<PromSample>)>, help: &str, gauge: bool| {
        let mut grouped: BTreeMap<String, Vec<PromSample>> = BTreeMap::new();
        for (name, samples) in raw {
            grouped.entry(name).or_default().extend(samples);
        }
        for (base, samples) in grouped {
            families.push(PromFamily {
                name: sanitize_name(&format!("dvfs_{base}")),
                help: help.to_string(),
                value: if gauge {
                    PromValue::Gauge(samples)
                } else {
                    PromValue::Counter(samples)
                },
            });
        }
    };

    let counters: Vec<(String, Vec<PromSample>)> = read_or_recover(&registry.counters)
        .iter()
        .map(|(name, c)| {
            let (base, shard) = split_shard(name);
            (
                base.to_string(),
                vec![PromSample {
                    labels: shard_labels(shard),
                    value: c.get() as f64,
                }],
            )
        })
        .collect();
    push_samples(counters, "Service counter.", false);

    let gauges: Vec<(String, Vec<PromSample>)> = read_or_recover(&registry.gauges)
        .iter()
        .map(|(name, g)| {
            let (base, shard) = split_shard(name);
            (
                base.to_string(),
                vec![PromSample {
                    labels: shard_labels(shard),
                    value: g.get() as f64,
                }],
            )
        })
        .collect();
    push_samples(gauges, "Service gauge.", true);

    let mut hist_grouped: BTreeMap<String, Vec<PromHistogram>> = BTreeMap::new();
    for (name, h) in read_or_recover(&registry.histograms).iter() {
        let (base, shard) = split_shard(name);
        let counts = h.bucket_counts();
        let last_occupied = counts.iter().rposition(|&c| c > 0);
        let mut cum = 0u64;
        let mut buckets = Vec::new();
        if let Some(last) = last_occupied {
            // Bounded buckets stop before the clamp bucket; the
            // renderer's +Inf sample covers the rest.
            for (i, &c) in counts
                .iter()
                .enumerate()
                .take(last.min(HIST_BUCKETS - 2) + 1)
            {
                cum += c;
                buckets.push((bucket_upper_bound(i), cum));
            }
        }
        hist_grouped
            .entry(base.to_string())
            .or_default()
            .push(PromHistogram {
                labels: shard_labels(shard),
                buckets,
                sum: h.sum(),
                count: h.count(),
            });
    }
    for (base, series) in hist_grouped {
        families.push(PromFamily {
            name: sanitize_name(&format!("dvfs_{base}")),
            help: "Service histogram.".to_string(),
            value: PromValue::Histogram(series),
        });
    }

    render(&families)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_folds_shard_suffixes_into_labels() {
        let r = Registry::new();
        r.counter("completed").add(7);
        r.counter(&shard_metric("completed", 0)).add(3);
        r.counter(&shard_metric("completed", 1)).add(4);
        r.gauge("queue_depth").set(2);
        r.histogram("task_latency_s").record(0.01);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE dvfs_completed counter\n"), "{text}");
        assert!(text.contains("dvfs_completed 7\n"));
        assert!(text.contains("dvfs_completed{shard=\"0\"} 3\n"));
        assert!(text.contains("dvfs_completed{shard=\"1\"} 4\n"));
        assert!(text.contains("# TYPE dvfs_queue_depth gauge\n"));
        assert!(text.contains("dvfs_queue_depth 2\n"));
        assert!(text.contains("# TYPE dvfs_task_latency_s histogram\n"));
        assert!(text.contains("dvfs_task_latency_s_count 1\n"));
        assert!(text.contains("dvfs_task_latency_s_bucket{le=\"+Inf\"} 1\n"));
    }

    #[test]
    fn split_shard_only_matches_all_digit_suffixes() {
        assert_eq!(split_shard("completed.shard3"), ("completed", Some("3")));
        assert_eq!(split_shard("completed"), ("completed", None));
        assert_eq!(split_shard("a.shardX"), ("a.shardX", None));
        assert_eq!(split_shard("a.shard"), ("a.shard", None));
    }

    #[test]
    fn histogram_snapshot_carries_raw_buckets() {
        let h = Histogram::default();
        h.record(1.0e-3);
        h.record(1.0e-3);
        h.record(1.0);
        let v = h.to_value();
        // Existing schema fields are untouched.
        assert_eq!(v.get("count").unwrap(), &Value::Number(Number::PosInt(3)));
        let Some(Value::Array(buckets)) = v.get("buckets") else {
            panic!("snapshot must carry a buckets array");
        };
        assert_eq!(buckets.len(), 2, "two occupied buckets");
        let pair = |b: &Value| match b {
            Value::Array(xs) => match (&xs[0], &xs[1]) {
                (Value::Number(Number::PosInt(i)), Value::Number(Number::PosInt(c))) => (*i, *c),
                _ => panic!("bucket pair must be two integers"),
            },
            _ => panic!("bucket entry must be an array"),
        };
        assert_eq!(pair(&buckets[0]), (bucket_index(1.0e-3) as u64, 2));
        assert_eq!(pair(&buckets[1]), (bucket_index(1.0) as u64, 1));
    }

    #[test]
    fn bucket_upper_bounds_are_exclusive() {
        assert_eq!(bucket_index(bucket_upper_bound(0)), 1);
        for i in 1..HIST_BUCKETS - 2 {
            assert_eq!(
                bucket_index(bucket_upper_bound(i)),
                i + 1,
                "bound of bucket {i} opens bucket {}",
                i + 1
            );
        }
    }

    #[test]
    fn bucket_boundaries_are_geometric() {
        // Below base → underflow bucket.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(0.99e-6), 0);
        // [base, 2*base) → bucket 1, each doubling advances one bucket.
        assert_eq!(bucket_index(1.0e-6), 1);
        assert_eq!(bucket_index(1.99e-6), 1);
        assert_eq!(bucket_index(2.0e-6), 2);
        assert_eq!(bucket_index(4.0e-6), 3);
        // 1 second = base * 2^19.93… → bucket 20.
        assert_eq!(bucket_index(1.0), 20);
        // Far overflow clamps to the last bucket.
        assert_eq!(bucket_index(1e300), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_value_sits_inside_the_bucket() {
        for i in 1..HIST_BUCKETS - 1 {
            let v = bucket_value(i);
            assert_eq!(bucket_index(v), i, "midpoint of bucket {i} maps back");
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        // 90 fast samples at ~1 ms, 10 slow at ~1 s.
        for _ in 0..90 {
            h.record(1.0e-3);
        }
        for _ in 0..10 {
            h.record(1.0);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // p50 lands in the 1 ms bucket, p95/p99 in the 1 s bucket;
        // midpoint error is bounded by the sqrt(2) growth factor.
        assert!((0.5e-3..2.0e-3).contains(&p50), "p50 = {p50}");
        assert!((0.5..2.0).contains(&p95), "p95 = {p95}");
        assert!((0.5..2.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn quantile_edges_and_single_sample() {
        // A single sample: every quantile, including the edges, is that
        // sample's bucket midpoint.
        let h = Histogram::default();
        h.record(0.01);
        let mid = bucket_value(bucket_index(0.01));
        assert_eq!(h.quantile(0.0), Some(mid));
        assert_eq!(h.quantile(0.5), Some(mid));
        assert_eq!(h.quantile(1.0), Some(mid));
        // Out-of-range q clamps rather than panicking or skipping
        // buckets.
        assert_eq!(h.quantile(-0.5), Some(mid));
        assert_eq!(h.quantile(2.0), Some(mid));

        // Two distinct buckets: q=0.0 must land in the lowest occupied
        // bucket (rank clamps up to 1, not 0) and q=1.0 in the highest.
        let h = Histogram::default();
        h.record(1.0e-3);
        h.record(1.0);
        assert_eq!(h.quantile(0.0), Some(bucket_value(bucket_index(1.0e-3))));
        assert_eq!(h.quantile(1.0), Some(bucket_value(bucket_index(1.0))));
    }

    fn hist_fingerprint(
        h: &Histogram,
    ) -> (Vec<u64>, u64, f64, Option<f64>, Option<f64>, Option<f64>) {
        (
            h.bucket_counts(),
            h.count(),
            h.sum(),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
        )
    }

    #[test]
    fn merging_empty_stage_histograms_is_identity() {
        // An idle stage (no samples yet) merged in either direction must
        // not disturb counts, sum, or quantiles.
        let stage = Histogram::default();
        let empty = Histogram::default();
        stage.record(2.0e-3);
        stage.record(3.0e-3);
        let before = hist_fingerprint(&stage);
        stage.merge_from(&empty);
        assert_eq!(hist_fingerprint(&stage), before);
        empty.merge_from(&stage);
        assert_eq!(hist_fingerprint(&empty), before);
        // Empty ⊕ empty stays empty: no count, no quantiles, and the
        // snapshot still renders finite min/max.
        let a = Histogram::default();
        a.merge_from(&Histogram::default());
        assert_eq!(a.count(), 0);
        assert_eq!(a.quantile(0.5), None);
        let v = a.to_value();
        assert_eq!(v.get("min").unwrap(), &Value::Number(Number::Float(0.0)));
        assert_eq!(v.get("max").unwrap(), &Value::Number(Number::Float(0.0)));
    }

    #[test]
    fn merging_single_bucket_histograms_accumulates_in_place() {
        // Both sources occupy the same bucket: the merge lands every
        // sample in that one bucket and the quantiles stay put.
        let a = Histogram::default();
        let b = Histogram::default();
        for _ in 0..3 {
            a.record(1.1e-3);
        }
        for _ in 0..5 {
            b.record(1.2e-3);
        }
        // Both samples sit inside [1.024e-3, 2.048e-3) — one bucket.
        assert_eq!(bucket_index(1.1e-3), bucket_index(1.2e-3));
        a.merge_from(&b);
        assert_eq!(a.count(), 8);
        let occupied: Vec<(usize, u64)> = a
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        assert_eq!(occupied, vec![(bucket_index(1.1e-3), 8)]);
        assert_eq!(a.quantile(0.5), Some(bucket_value(bucket_index(1.1e-3))));
        assert!((a.sum() - (3.0 * 1.1e-3 + 5.0 * 1.2e-3)).abs() < 1e-12);
    }

    #[test]
    fn cross_shard_merge_is_associative_and_matches_global() {
        // Three per-shard stage histograms with distinct profiles.
        let shards = [
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
        ];
        let global = Histogram::default();
        let samples: [&[f64]; 3] = [
            &[1.0e-4, 2.0e-4, 5.0e-2],
            &[3.0e-3],
            &[1.0e-5, 4.0e-1, 4.0e-1, 2.0],
        ];
        for (h, vals) in shards.iter().zip(samples.iter()) {
            for &v in vals.iter() {
                h.record(v);
                global.record(v);
            }
        }
        // (s0 ⊕ s1) ⊕ s2
        let left = Histogram::default();
        left.merge_from(&shards[0]);
        left.merge_from(&shards[1]);
        left.merge_from(&shards[2]);
        // s0 ⊕ (s1 ⊕ s2)
        let inner = Histogram::default();
        inner.merge_from(&shards[1]);
        inner.merge_from(&shards[2]);
        let right = Histogram::default();
        right.merge_from(&shards[0]);
        right.merge_from(&inner);
        let (lb, lc, ls, l50, l95, l99) = hist_fingerprint(&left);
        let (rb, rc, rs, r50, r95, r99) = hist_fingerprint(&right);
        assert_eq!((lb.clone(), lc, l50, l95, l99), (rb, rc, r50, r95, r99));
        assert!((ls - rs).abs() < 1e-12);
        // And the merged result reproduces the global histogram the
        // worker records alongside the per-shard variants.
        let (gb, gc, gs, g50, g95, g99) = hist_fingerprint(&global);
        assert_eq!((lb, lc, l50, l95, l99), (gb, gc, g50, g95, g99));
        assert!((ls - gs).abs() < 1e-12);
    }

    #[test]
    fn shard_metric_names_group_under_the_total() {
        assert_eq!(shard_metric("queue_depth", 0), "queue_depth.shard0");
        assert_eq!(shard_metric("completed", 13), "completed.shard13");
    }

    #[test]
    fn registry_shares_instances_and_snapshots() {
        let r = Registry::new();
        r.counter("requests").inc();
        r.counter("requests").add(2);
        r.gauge("depth").set(-4);
        r.histogram("latency").record(0.01);
        assert_eq!(r.counter("requests").get(), 3);
        let snap = r.snapshot();
        let c = snap.get("counters").unwrap().get("requests").unwrap();
        assert_eq!(c, &Value::Number(Number::PosInt(3)));
        let g = snap.get("gauges").unwrap().get("depth").unwrap();
        assert_eq!(g, &Value::Number(Number::NegInt(-4)));
        let h = snap.get("histograms").unwrap().get("latency").unwrap();
        assert_eq!(h.get("count").unwrap(), &Value::Number(Number::PosInt(1)));
    }
}
