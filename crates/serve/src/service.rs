//! The scheduler service: wire requests in, LMC scheduling decisions
//! out.
//!
//! Two operating modes:
//!
//! * **Replay** — submissions buffer in the admission queues with their
//!   explicit arrival times; a `drain` command runs the whole workload
//!   through the wall-clock executors at once. Because the buffered
//!   tasks reach each engine in submission order with untouched
//!   arrivals, a drained round on a single shard is *bit-identical* to
//!   running `LeastMarginalCost` over the same trace on the simulator
//!   — the determinism contract the end-to-end tests pin.
//! * **Paced** — a ticker thread maps wall time onto the executor
//!   clocks (`engine_seconds = wall_seconds * speed`) and steps them
//!   incrementally; submissions arrive at the current engine time and
//!   completions stream into the latency/cost histograms as they
//!   happen. Each worker's paced anchor restarts together with its
//!   engine on every drain, so a fresh round always begins near engine
//!   time zero instead of inheriting the previous round's clock.
//!
//! ## Sharding
//!
//! The service runs `shards` independent engine instances, each owning
//! its own `RealTimeExecutor`, `LeastMarginalCost` policy state, and
//! bounded admission queue (the configured capacity is split across
//! shards). A router assigns each submission to a shard:
//!
//! * **Explicit ids** hash to `id % shards`, so replaying a recorded
//!   trace is reproducible — the same task always lands on the same
//!   shard.
//! * **Auto-assigned ids** route class-aware by load: each shard is
//!   scored by its *combined* load — admission depth plus the engine
//!   backlog its worker publishes through a shared atomic — and the
//!   shard with the most class headroom against that load wins, ties
//!   going to the lower combined load and then the rotating cursor.
//!   Admission depth alone is blind to tasks a tick already pulled
//!   into an engine, which let auto-ids pile onto a shard whose queue
//!   looked empty while its engine was deep.
//!
//! `tick`, `drain`, `stats`, and shutdown fan out across shards in
//! ascending index order and merge the per-shard results
//! deterministically. With `shards = 1` the service is exactly the
//! single-engine scheduler it replaces.
//!
//! ## Cross-shard rebalancing
//!
//! Routing is one-shot, so shards can still diverge after placement.
//! When [`RebalanceConfig::enabled`] is set, every `tick` ends with a
//! rebalance pass: the scheduler reads each worker's published load
//! gauge (engine backlog + the Eq. 32 queued-cost total of its
//! resident queue), and when the hottest shard's queued cost exceeds
//! the coldest's by more than the configured gap it moves a batch —
//! sized to close about half the cost gap, capped at `max_batch` — of
//! queued (never dispatched) tasks hot→cold through the worker command
//! protocol — `Steal` on the hot worker (Algorithm 6 ledger deletes,
//! longest-cycles first), `Inject` on the cold worker (normal
//! Algorithm 5 inserts via the arrival path), with `migrate` trace
//! events and `migrations{,_out,_in}` counters recording the decision.
//! The pass runs only from the tick path — never a free-running
//! thread — and the default is off, so replay drains (which never
//! tick) stay bit-identical to the simulator reference.
//!
//! ## Threading model
//!
//! Every shard's engine is owned outright by a dedicated **worker
//! thread** (see the crate's `worker` module); there is no engine
//! mutex anywhere. The submission path never touches a worker: it
//! reads an atomic shutdown flag, reserves the task id under a small
//! id-ledger mutex, and hands the task to one shard's admission queue
//! (which has its own lock and re-checks the shutdown flag inside it —
//! see [`AdmissionQueue::try_submit_gated`]). `tick`, `drain`, and
//! `stats` broadcast a command to every worker and collect the
//! one-shot replies in ascending shard order, so a slow scheduling
//! round never blocks admission, a slow round on one shard never
//! blocks the others — and with `shards = N` on an N-core host the
//! rounds genuinely run in parallel.
//!
//! A drain is still a global round barrier: a small `round_mx` mutex
//! serializes rounds, and the id ledger and paced clock reset inside
//! it, while per-shard reports are collected in ascending order. The
//! barrier is released *before* the reports are merged and encoded —
//! no cross-shard state is read during the merge, so nothing needs to
//! stay blocked across it.

use crate::admission::{AdmissionPolicy, AdmissionQueue, GateOutcome};
use crate::executor::{ActuatorKind, RoundReport};
use crate::metrics::{shard_metric, Registry};
use crate::protocol::{field_f64, field_u64, ErrorKind, Response};
use crate::stage::{StageClock, StageHists, REQUEST_E2E, STAGE_CMD_DEQUEUE, TELESCOPE_STAGES};
use crate::worker::{self, Command, Heartbeat, ShardShared, WorkerHandle};
use dvfs_model::{CoreSpec, CostParams, Platform, RateTable, Task, TaskClass};
use dvfs_trace::{ClassTag, EventKind as TraceKind, SharedRing, TraceEvent};
use serde::Value;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How the service maps submissions onto engine time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Buffer submissions (explicit arrivals) and run on `drain`.
    Replay,
    /// Step the executors in real time, `speed` engine seconds per wall
    /// second.
    Paced {
        /// Engine-seconds advanced per wall-second (1.0 = real time).
        speed: f64,
    },
}

/// Cross-shard rebalancer knobs (`--rebalance on|off`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Master switch. Off by default: a disabled rebalancer touches no
    /// engine, so replay rounds stay bit-identical to the simulator.
    pub enabled: bool,
    /// Relative queued-cost gap the hot shard must hold over the cold
    /// one before tasks move (`hot > cold * (1 + min_cost_gap)`) — the
    /// guard that keeps near-balanced shards from thrashing work back
    /// and forth.
    pub min_cost_gap: f64,
    /// Most tasks migrated per rebalance pass.
    pub max_batch: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            enabled: false,
            min_cost_gap: 0.25,
            max_batch: 8,
        }
    }
}

impl RebalanceConfig {
    /// The default knobs with the master switch on.
    #[must_use]
    pub fn on() -> Self {
        RebalanceConfig {
            enabled: true,
            ..RebalanceConfig::default()
        }
    }
}

/// Scheduler construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Number of homogeneous i7-950 cores *per shard* to schedule onto.
    pub cores: usize,
    /// Cost weights for reporting and the LMC policy.
    pub params: CostParams,
    /// Replay or paced operation.
    pub mode: Mode,
    /// Total admission-queue bound, split evenly across shards (every
    /// shard keeps at least one slot).
    pub queue_capacity: usize,
    /// Number of independent engine instances (executor + policy +
    /// admission queue), each owned by its own worker thread. Clamped
    /// to at least 1.
    pub shards: usize,
    /// Per-shard lifecycle trace ring capacity (events). `0` disables
    /// tracing entirely: no rings are allocated and the executors'
    /// record paths stay dormant.
    pub trace_capacity: usize,
    /// Which actuator backend every shard's executor lands frequency
    /// decisions on. `Simulated` (the default) runs the full
    /// sysfs-protocol model and is what the bit-identical replay
    /// contract is pinned against.
    pub actuator: ActuatorKind,
    /// Cross-shard rebalancer, driven from the tick path. Disabled by
    /// default so drains of an untouched service replay bit-identically.
    pub rebalance: RebalanceConfig,
    /// Per-request stage-attribution telemetry (the runtime health
    /// plane's per-task half). On by default; the health-overhead bench
    /// turns it off to pin the cost of the stage clock. Heartbeat slots
    /// are per-command and stay on regardless — only the per-task stage
    /// histogram records are gated. Metrics never feed back into
    /// scheduling, so the flag cannot affect the replayed schedule.
    pub telemetry: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            cores: 4,
            params: CostParams::online_paper(),
            mode: Mode::Replay,
            queue_capacity: 1024,
            shards: 1,
            trace_capacity: 0,
            actuator: ActuatorKind::default(),
            rebalance: RebalanceConfig::default(),
            telemetry: true,
        }
    }
}

/// One submit request as batched off the wire: the fields of a
/// `{"cmd":"submit",...}` line, ready for [`Scheduler::submit_many`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitItem {
    /// Explicit task id, or `None` for auto-assignment.
    pub id: Option<u64>,
    /// Work, in cycles.
    pub cycles: u64,
    /// Scheduling class.
    pub class: TaskClass,
    /// Arrival on the engine clock; defaulted per [`Mode`].
    pub arrival: Option<f64>,
}

/// The platform a scheduler shard with `cores` cores runs on. Exposed
/// so out-of-process clients (tests, analysis) can reproduce server
/// runs exactly.
#[must_use]
pub fn service_platform(cores: usize) -> Platform {
    Platform::homogeneous(cores, CoreSpec::new(RateTable::i7_950_table2()))
        .expect("positive core count")
}

fn class_tag(class: TaskClass) -> ClassTag {
    match class {
        TaskClass::Batch => ClassTag::Batch,
        TaskClass::Interactive => ClassTag::Interactive,
        TaskClass::NonInteractive => ClassTag::NonInteractive,
    }
}

/// The task-id ledger for the current round (global across shards, so
/// duplicate-id rejection holds service-wide).
struct IdLedger {
    used: HashSet<u64>,
    next_auto: u64,
}

#[cfg(test)]
type RoundHook = Box<dyn FnOnce(&Scheduler) + Send>;

/// Trace events drained from the shard rings, plus the streaming
/// cursor: `forgotten` events were already handed out by
/// `trace_stream` (and, when a `--trace-out` file is configured,
/// appended to it first) and dropped from memory.
struct DrainedTrace {
    events: Vec<TraceEvent>,
    /// Events streamed-and-forgotten so far; `forgotten + events.len()`
    /// is the absolute index of the next event to arrive.
    forgotten: u64,
}

/// One `trace_stream` increment: every retained event serialized, about
/// to be forgotten server-side.
pub(crate) struct TraceChunk {
    /// JSONL lines of this chunk's events.
    pub lines: Vec<String>,
    /// Absolute index of `lines[0]` in the full trace stream — the
    /// append cursor a `--trace-out` file writer needs.
    pub forgotten_before: u64,
    /// Total events streamed including this chunk.
    pub streamed_total: u64,
    /// Ring-drop counter at snapshot time.
    pub dropped: u64,
}

/// The long-running scheduler: a router over N shards — each an
/// admission queue feeding an engine owned by a dedicated worker
/// thread — plus a global id ledger, the paced-clock anchor used for
/// arrival stamping, and metrics.
pub struct Scheduler {
    cfg: SchedulerConfig,
    shards: Vec<Arc<ShardShared>>,
    /// One worker per shard, same indexing as `shards`. Commands are
    /// broadcast in ascending order and replies collected in ascending
    /// order, which is what makes every fan-out deterministic.
    workers: Vec<WorkerHandle>,
    metrics: Arc<Registry>,
    shutting_down: AtomicBool,
    ids: Mutex<IdLedger>,
    /// Wall-clock anchor for stamping paced submissions with an engine
    /// arrival time. Reset on every drain so a fresh round starts near
    /// engine time zero. (Each worker keeps its *own* anchor for tick
    /// targets, reset inside its drain processing.)
    anchor: Mutex<Option<Instant>>,
    /// Serializes rounds: a drain broadcasts to every worker and
    /// collects every report under this lock, so two concurrent drains
    /// cannot interleave their rounds across shards.
    round_mx: Mutex<()>,
    /// Signals `wait_for_work` when any shard admits a task.
    work_mx: Mutex<()>,
    work_cv: Condvar,
    /// Rotating start offset for auto-id routing, so fully tied shards
    /// (e.g. a paced service whose ticker keeps every queue empty)
    /// round-robin instead of piling onto shard 0.
    router_cursor: AtomicUsize,
    /// Trace events drained from the shard rings so far, in drain
    /// order (ascending shard within each round). Grows until the
    /// server restarts — unless the client streams it: `trace_stream`
    /// hands out retained events incrementally and forgets them, so
    /// long paced runs can bound memory without losing history.
    drained_trace: Mutex<DrainedTrace>,
    /// Per-shard "currently in a stall episode" latches, so the
    /// supervisor counts each stall once instead of once per poll.
    stall_episodes: Mutex<Vec<bool>>,
    /// Test-only seam: runs once inside the next `tick`/`drain` after
    /// the queues were drained but before the depth gauges are
    /// published, standing in for a racing submitter.
    #[cfg(test)]
    round_hook: Mutex<Option<RoundHook>>,
}

impl Scheduler {
    /// Build a scheduler publishing into `metrics`, spawning one worker
    /// thread per shard.
    #[must_use]
    pub fn new(cfg: SchedulerConfig, metrics: Arc<Registry>) -> Self {
        let n = cfg.shards.max(1);
        let shards: Vec<Arc<ShardShared>> = (0..n)
            .map(|k| {
                // Split the total capacity evenly, remainder to the low
                // shards; every shard keeps at least one slot.
                let cap = (cfg.queue_capacity / n + usize::from(k < cfg.queue_capacity % n)).max(1);
                let ring =
                    (cfg.trace_capacity > 0).then(|| SharedRing::new(k as u32, cfg.trace_capacity));
                Arc::new(ShardShared {
                    index: k,
                    queue: AdmissionQueue::new(AdmissionPolicy::with_capacity(cap)),
                    ring,
                    depth_gauge: metrics.gauge(&shard_metric("queue_depth", k)),
                    pending_gauge: metrics.gauge(&shard_metric("pending_tasks", k)),
                    admitted: metrics.counter(&shard_metric("admitted", k)),
                    shed: metrics.counter(&shard_metric("shed", k)),
                    completed: metrics.counter(&shard_metric("completed", k)),
                    backlog: AtomicUsize::new(0),
                    queued_cost_bits: AtomicU64::new(0),
                    hb: Heartbeat::new(),
                    stages: StageHists::new(&metrics, k),
                })
            })
            .collect();
        // Health-plane metrics exist from the start, so `stats`,
        // `prometheus_text`, and `health` expose them even before the
        // first stall or failed send.
        let _ = metrics.counter("worker_stalled");
        let _ = metrics.counter("worker_send_failed");
        metrics.gauge("degraded").set(0);
        let lmc_hist = metrics.histogram("lmc_decision_us");
        let workers = shards
            .iter()
            .map(|sh| {
                worker::spawn(
                    Arc::clone(sh),
                    cfg,
                    Arc::clone(&metrics),
                    Arc::clone(&lmc_hist),
                )
            })
            .collect();
        Scheduler {
            shards,
            workers,
            metrics,
            shutting_down: AtomicBool::new(false),
            ids: Mutex::new(IdLedger {
                used: HashSet::new(),
                next_auto: 0,
            }),
            anchor: Mutex::new(None),
            round_mx: Mutex::new(()),
            work_mx: Mutex::new(()),
            work_cv: Condvar::new(),
            router_cursor: AtomicUsize::new(0),
            drained_trace: Mutex::new(DrainedTrace {
                events: Vec::new(),
                forgotten: 0,
            }),
            stall_episodes: Mutex::new(vec![false; n]),
            #[cfg(test)]
            round_hook: Mutex::new(None),
            cfg,
        }
    }

    fn lock_ids(&self) -> MutexGuard<'_, IdLedger> {
        self.ids.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Number of engine shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The metrics registry this scheduler publishes into.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Shard `k`'s admission queue (exposed for backpressure-aware
    /// callers and tests).
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    #[must_use]
    pub fn shard_queue(&self, k: usize) -> &AdmissionQueue {
        &self.shards[k].queue
    }

    /// Total queued depth across all shards.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.depth()).sum()
    }

    /// Block until any shard's queue is non-empty or `timeout` passes;
    /// returns the total depth observed. Lets a paced ticker sleep
    /// between ticks without missing a burst on any shard.
    pub fn wait_for_work(&self, timeout: Duration) -> usize {
        let guard = self.work_mx.lock().unwrap_or_else(PoisonError::into_inner);
        let depth = self.queue_depth();
        if depth > 0 {
            return depth;
        }
        let _unused = self
            .work_cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        self.queue_depth()
    }

    /// Whether shutdown has begun.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Start the paced clock (no-op in replay mode). Called once when
    /// the server begins serving. Arms the submission-stamping anchor
    /// and broadcasts `StartClock` so every worker arms its own tick
    /// anchor.
    pub fn start_clock(&self) {
        {
            let mut anchor = self.anchor.lock().unwrap_or_else(PoisonError::into_inner);
            if anchor.is_none() {
                *anchor = Some(crate::clock::wall_now());
            }
        }
        for w in &self.workers {
            w.send(Command::StartClock);
        }
    }

    /// Restart the submission-stamping anchor for a fresh round (no-op
    /// until [`Scheduler::start_clock`] ran). Called by `drain`: the
    /// workers stand up fresh engines at time zero and restart their
    /// own tick anchors, so the arrival-stamping anchor must restart
    /// with them or every later arrival would be stamped far in the
    /// fresh engines' future.
    fn reset_clock(&self) {
        let mut anchor = self.anchor.lock().unwrap_or_else(PoisonError::into_inner);
        if anchor.is_some() {
            *anchor = Some(crate::clock::wall_now());
        }
    }

    /// Wall-mapped target engine time for paced mode (0 in replay).
    /// Reads only the anchor — used to stamp submission arrivals.
    fn target_time(&self) -> f64 {
        let anchor = *self.anchor.lock().unwrap_or_else(PoisonError::into_inner);
        match (self.cfg.mode, anchor) {
            (Mode::Paced { speed }, Some(t0)) => t0.elapsed().as_secs_f64() * speed,
            _ => 0.0,
        }
    }

    /// Route a submission to a shard. Explicit ids hash (`id % shards`)
    /// so replays are reproducible; auto-assigned ids go to the shard
    /// with the most class headroom against its *combined* load —
    /// admission depth plus the engine backlog the worker publishes —
    /// ties broken by lower combined load and then by a rotating cursor,
    /// so fully tied shards (the steady state of a fast-ticking paced
    /// service) round-robin instead of all landing on shard 0. Scoring
    /// admission depth alone would go blind the moment a tick drains
    /// the queues: a shard with hundreds of tasks queued inside its
    /// engine would keep winning ties and attract every auto id.
    fn route(&self, explicit: bool, id: u64, class: TaskClass) -> usize {
        let n = self.shards.len();
        if n == 1 {
            return 0;
        }
        if explicit {
            return (id % n as u64) as usize;
        }
        let start = self.router_cursor.fetch_add(1, Ordering::Relaxed) % n;
        let mut best = start;
        let mut best_headroom = 0usize;
        let mut best_load = usize::MAX;
        for i in 0..n {
            let k = (start + i) % n;
            let sh = &self.shards[k];
            let load = sh.queue.depth() + sh.backlog();
            let headroom = sh.queue.policy().effective_cap(class).saturating_sub(load);
            if headroom > best_headroom || (headroom == best_headroom && load < best_load) {
                best = k;
                best_headroom = headroom;
                best_load = load;
            }
        }
        best
    }

    /// Handle a submit request end to end: id assignment, validation,
    /// shard routing, admission, metrics. Touches the id ledger and one
    /// shard's admission queue, never a worker.
    pub fn submit(
        &self,
        id: Option<u64>,
        cycles: u64,
        class: TaskClass,
        arrival: Option<f64>,
    ) -> Response {
        self.submit_many(&[SubmitItem {
            id,
            cycles,
            class,
            arrival,
        }])
        .into_iter()
        .next()
        .unwrap_or_else(|| Response::err(ErrorKind::Internal, "empty submit batch"))
    }

    /// Handle one wire batch of submits — every complete submit line a
    /// front-end drained from a readable socket in one go. Semantics
    /// are exactly sequential [`Scheduler::submit`] calls (responses in
    /// order, same counters, same trace records), but the id ledger is
    /// locked once for the whole batch and the paced ticker is signaled
    /// once at the end instead of per task.
    pub fn submit_many(&self, items: &[SubmitItem]) -> Vec<Response> {
        // In-process submitters have no wire seams; both stamps close
        // now, so their frame stage records as (near) zero.
        self.submit_many_timed(items, StageClock::now())
    }

    /// [`Scheduler::submit_many`] with the batch's wire stage stamps.
    /// The front-ends call this with the instants the bytes were read
    /// and the batch finished parsing, closing the frame and admit
    /// seams of the stage clock.
    pub fn submit_many_timed(&self, items: &[SubmitItem], clock: StageClock) -> Vec<Response> {
        let mut out = Vec::with_capacity(items.len());
        if items.is_empty() {
            return out;
        }
        let mut admitted_any = false;
        {
            let mut ids = self.lock_ids();
            for item in items {
                out.push(self.submit_one(&mut ids, *item, clock, &mut admitted_any));
            }
        }
        if admitted_any {
            self.publish_queue_depth();
            // Wake a ticker sleeping in `wait_for_work`; the empty
            // critical section orders the wake after the admits.
            drop(self.work_mx.lock().unwrap_or_else(PoisonError::into_inner));
            self.work_cv.notify_all();
        }
        out
    }

    /// One submit under the already-held id-ledger lock. Ordering note:
    /// the ledger lock is held across the admission-queue touch; the
    /// only other multi-lock paths (drain, shutdown) release every
    /// queue lock before taking the ledger, so no cycle exists.
    fn submit_one(
        &self,
        ids: &mut IdLedger,
        item: SubmitItem,
        clock: StageClock,
        admitted_any: &mut bool,
    ) -> Response {
        let SubmitItem {
            id,
            cycles,
            class,
            arrival,
        } = item;
        self.metrics.counter("submitted").inc();
        if self.is_shutting_down() {
            return Response::err(ErrorKind::ShuttingDown, "server is draining");
        }
        // Reserve the id so concurrent submitters can't race to the
        // same one; released again if validation or admission fails.
        let explicit = id.is_some();
        let id = {
            let id = match id {
                Some(id) => {
                    if ids.used.contains(&id) {
                        self.metrics.counter("rejected_duplicate_id").inc();
                        return Response::err(
                            ErrorKind::BadRequest,
                            format!("task id {id} already used this round"),
                        );
                    }
                    id
                }
                None => {
                    while ids.used.contains(&ids.next_auto) {
                        ids.next_auto += 1;
                    }
                    ids.next_auto
                }
            };
            ids.used.insert(id);
            id
        };
        let arrival = match self.cfg.mode {
            Mode::Replay => arrival.unwrap_or(0.0),
            // Paced submissions arrive "now" on the engine clock; an
            // explicit arrival in the future is honored, the past is
            // clamped forward by the executor.
            Mode::Paced { .. } => {
                let now = self.target_time();
                arrival.unwrap_or(now).max(now)
            }
        };
        let task = match Task::online(id, cycles, arrival, None, class) {
            Ok(t) => t,
            Err(e) => {
                ids.used.remove(&id);
                self.metrics.counter("rejected_invalid").inc();
                return Response::err(ErrorKind::BadRequest, e.to_string());
            }
        };
        let shard = self.route(explicit, id, class);
        let sh = &self.shards[shard];
        // The gate re-checks the shutdown flag *inside* the queue lock:
        // shutdown's post-drain depth re-check takes the same lock, so
        // a submission either lands before that check (and is drained)
        // or observes the flag and is refused — never silently lost.
        match sh
            .queue
            .try_submit_stamped(task, clock.recv, || !self.is_shutting_down())
        {
            GateOutcome::Admitted(depth) => {
                *admitted_any = true;
                self.metrics.counter("admitted").inc();
                sh.admitted.inc();
                if self.cfg.telemetry {
                    // Close the wire-side seams for this shard: receive
                    // → parsed, parsed → admitted.
                    let admitted_at = crate::clock::wall_now();
                    let frame = clock.framed.duration_since(clock.recv);
                    let admit = admitted_at.duration_since(clock.framed);
                    sh.stages.frame.record(frame.as_secs_f64());
                    sh.stages.admit.record(admit.as_secs_f64());
                }
                if let Some(ring) = &sh.ring {
                    let tag = class_tag(class);
                    ring.record(
                        arrival,
                        TraceKind::Submit {
                            task: id,
                            class: tag,
                            cycles,
                        },
                    );
                    ring.record(
                        arrival,
                        TraceKind::Admit {
                            task: id,
                            depth: depth as u64,
                        },
                    );
                }
                Response::Ok(vec![
                    field_u64("id", id),
                    field_u64("depth", depth as u64),
                    field_u64("shard", shard as u64),
                ])
            }
            GateOutcome::Shed(shed) => {
                ids.used.remove(&id);
                let tag = class_tag(class);
                self.metrics.counter("shed").inc();
                self.metrics.counter(&format!("shed.{}", tag.name())).inc();
                sh.shed.inc();
                if let Some(ring) = &sh.ring {
                    ring.record(
                        arrival,
                        TraceKind::Submit {
                            task: id,
                            class: tag,
                            cycles,
                        },
                    );
                    ring.record(
                        arrival,
                        TraceKind::Shed {
                            task: id,
                            class: tag,
                        },
                    );
                }
                Response::err(ErrorKind::Overloaded, shed.to_string())
            }
            GateOutcome::Closed => {
                ids.used.remove(&id);
                Response::err(ErrorKind::ShuttingDown, "server is draining")
            }
        }
    }

    /// Recompute every depth gauge from the live queues at write time.
    /// Snapshotting the depth earlier (a submit's post-admit depth, or
    /// a constant zero after a drain) goes stale the moment a
    /// concurrent submit lands. The gauge counts waiting work wherever
    /// it sits — admission depth *plus* the engine backlog the worker
    /// publishes — so the metric agrees with what the router and the
    /// rebalancer see; counting the admission queue alone made the
    /// gauge drop to zero on every tick while hundreds of tasks still
    /// waited inside the engines.
    fn publish_queue_depth(&self) {
        let mut total = 0i64;
        for sh in &self.shards {
            let depth = (sh.queue.depth() + sh.backlog()) as i64;
            sh.depth_gauge.set(depth);
            total += depth;
        }
        self.metrics.gauge("queue_depth").set(total);
    }

    /// Run the test-only round hook, if one is armed (no-op otherwise
    /// and in non-test builds).
    fn fire_round_hook(&self) {
        #[cfg(test)]
        {
            let hook = self
                .round_hook
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            if let Some(hook) = hook {
                hook(self);
            }
        }
    }

    /// Arm the round hook (test builds only): runs once inside the next
    /// `tick` or `drain`, after the queues were drained into the
    /// engines but before the depth gauges are published — the position
    /// of a submitter racing the round.
    #[cfg(test)]
    fn set_round_hook(&self, hook: impl FnOnce(&Scheduler) + Send + 'static) {
        *self
            .round_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(Box::new(hook));
    }

    /// One paced step: broadcast a tick to every worker — each pulls
    /// admitted work into its engine, advances the executor clock to
    /// its wall-mapped target, and streams completions into the
    /// histograms — then collect the replies in ascending shard order.
    /// With more shards than one, the per-shard steps run genuinely in
    /// parallel on the worker threads.
    pub fn tick(&self) {
        let mut replies = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            let (tx, rx) = worker::reply_channel();
            w.send(Command::Tick { reply: tx });
            replies.push(rx);
        }
        let mut pending_total = 0i64;
        for (k, rx) in replies.into_iter().enumerate() {
            let reply = rx
                .recv()
                .unwrap_or_else(|_| panic!("shard {k} worker exited during tick"));
            pending_total += reply.pending as i64;
        }
        self.metrics.gauge("pending_tasks").set(pending_total);
        let t0 = crate::clock::wall_now();
        self.rebalance_once();
        if self.cfg.rebalance.enabled && self.shards.len() > 1 {
            let micros = crate::clock::wall_now().duration_since(t0).as_micros();
            self.metrics
                .gauge("rebalance_pass_us")
                .set(i64::try_from(micros).unwrap_or(i64::MAX));
        }
        self.fire_round_hook();
        self.publish_queue_depth();
    }

    /// One cross-shard rebalance pass, run at the end of every tick
    /// when [`RebalanceConfig::enabled`] is set. Reads the load gauges
    /// every worker just republished during its tick, picks the
    /// hottest and coldest shards by Eq. 32 queued cost, and — when the
    /// gap clears `min_cost_gap` and the hot shard has queued
    /// (not-yet-dispatched) work — moves up to `max_batch` tasks
    /// through the worker command protocol: `Steal` pulls them out of
    /// the hot engine's ledger, `Inject` re-enqueues them on the cold
    /// engine's arrival path (recording a `migrate` trace event per
    /// task). Runs only from the tick path, so a service that never
    /// ticks — the replay determinism contract — never migrates.
    fn rebalance_once(&self) {
        if !self.cfg.rebalance.enabled || self.shards.len() < 2 {
            return;
        }
        let (mut hot, mut cold) = (0usize, 0usize);
        let (mut hot_cost, mut cold_cost) = (f64::MIN, f64::MAX);
        for (k, sh) in self.shards.iter().enumerate() {
            let cost = sh.queued_cost();
            if cost > hot_cost {
                hot = k;
                hot_cost = cost;
            }
            if cost < cold_cost {
                cold = k;
                cold_cost = cost;
            }
        }
        let backlog = self.shards[hot].backlog();
        if hot == cold
            || backlog == 0
            || hot_cost <= cold_cost * (1.0 + self.cfg.rebalance.min_cost_gap)
        {
            return;
        }
        // Size the batch to close about half the cost gap, converting
        // cost to a task count via the hot shard's average queued cost.
        // Sizing off the backlog alone oscillates: once shards are
        // near-balanced it keeps swinging `max_batch` of the longest
        // tasks between them, flipping hot and cold every tick. The
        // next tick re-evaluates with fresh gauges rather than chasing
        // the remainder in one pass.
        let gap_share = (hot_cost - cold_cost) / (2.0 * hot_cost);
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            reason = "gap_share is in (0, 0.5], so the product is a small non-negative count"
        )]
        let batch = ((backlog as f64 * gap_share) as usize).clamp(1, self.cfg.rebalance.max_batch);
        let (tx, rx) = worker::reply_channel();
        self.workers[hot].send(Command::Steal {
            max: batch,
            reply: tx,
        });
        let tasks = rx
            .recv()
            .unwrap_or_else(|_| panic!("shard {hot} worker exited during steal"));
        if tasks.is_empty() {
            // Every backlogged job was already running or not yet
            // arrived; nothing safe to move this pass.
            return;
        }
        let moved = tasks.len() as u64;
        let (tx, rx) = worker::reply_channel();
        self.workers[cold].send(Command::Inject {
            from_shard: hot as u32,
            from_cost: hot_cost,
            to_cost: cold_cost,
            tasks,
            reply: tx,
        });
        let injected = rx
            .recv()
            .unwrap_or_else(|_| panic!("shard {cold} worker exited during inject"));
        debug_assert_eq!(
            injected as u64, moved,
            "cold shard accepts every stolen task"
        );
        self.metrics.counter("migrations").add(moved);
        self.metrics
            .counter(&shard_metric("migrations_out", hot))
            .add(moved);
        self.metrics
            .counter(&shard_metric("migrations_in", cold))
            .add(moved);
    }

    /// Run everything buffered (and, in paced mode, everything still in
    /// flight) to completion on every shard; return the per-shard
    /// reports in shard order. Each worker runs its round concurrently,
    /// stands up a fresh engine, and restarts its paced anchor; the
    /// reports are collected in ascending shard order under the round
    /// barrier, and the id ledger and the arrival-stamping anchor reset
    /// inside it.
    ///
    /// The round barrier (`round_mx`) serializes whole rounds, so two
    /// concurrent drains cannot interleave across shards. It is
    /// released before the caller merges or encodes the reports —
    /// nothing cross-shard is read during a merge, so no worker or
    /// lock stays held across it.
    pub fn drain_shards(&self) -> Vec<RoundReport> {
        self.metrics.counter("drains").inc();
        let mut reports = Vec::with_capacity(self.workers.len());
        {
            let _round = self.round_mx.lock().unwrap_or_else(PoisonError::into_inner);
            // Hold the id ledger across the whole barrier: submissions
            // assign ids and enqueue under this lock, so every task
            // admitted before we take it is already in its shard's
            // queue (and gets pulled by the worker's drain below), and
            // none can slip in between a worker's queue pull and the
            // namespace reset — the window where an old-round task and
            // a post-reset id reuse would collide in the next round's
            // engine.
            let mut ids = self.lock_ids();
            let mut replies = Vec::with_capacity(self.workers.len());
            for w in &self.workers {
                let (tx, rx) = worker::reply_channel();
                w.send(Command::Drain { reply: tx });
                replies.push(rx);
            }
            for (k, rx) in replies.into_iter().enumerate() {
                let report = rx
                    .recv()
                    .unwrap_or_else(|_| panic!("shard {k} worker exited during drain"));
                // Capture the round's trace as each shard's report
                // lands (ascending shard order, because this loop is).
                self.drain_shard_trace(&self.shards[k]);
                reports.push(report);
            }
            // New round: the id space and the arrival-stamping clock
            // restart together with the engines, still inside the
            // round barrier.
            ids.used.clear();
            ids.next_auto = 0;
            drop(ids);
            self.reset_clock();
        }
        self.metrics.gauge("pending_tasks").set(0);
        self.fire_round_hook();
        self.publish_queue_depth();
        reports
    }

    /// Run the round on every shard and merge the reports in
    /// deterministic shard order. The programmatic form of the wire
    /// `drain` — end-to-end tests use it to compare served rounds
    /// against library runs task by task. The merge happens after the
    /// round barrier is released.
    pub fn drain_round(&self) -> RoundReport {
        RoundReport::merge(&self.drain_shards())
    }

    /// Whether lifecycle tracing is on (`trace_capacity > 0`).
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.cfg.trace_capacity > 0
    }

    fn lock_drained(&self) -> MutexGuard<'_, DrainedTrace> {
        self.drained_trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Drain shard `sh`'s live ring into the accumulated trace and fold
    /// its `complete` events into the cost-attribution counters:
    /// per-shard, per-core energy cost (`Re · E`) and waiting cost
    /// (`Rt · turnaround`), both in integer micro-cost units.
    fn drain_shard_trace(&self, sh: &ShardShared) {
        let Some(ring) = &sh.ring else { return };
        let events = ring.drain();
        if events.is_empty() {
            return;
        }
        let params = self.cfg.params;
        for ev in &events {
            if let TraceKind::Complete {
                core,
                energy_j,
                turnaround_s,
                ..
            } = ev.kind
            {
                let energy_micros = (params.re * energy_j * 1e6).round() as u64;
                let wait_micros = (params.rt * turnaround_s * 1e6).round() as u64;
                self.metrics
                    .counter("energy_cost_micros")
                    .add(energy_micros);
                self.metrics.counter("wait_cost_micros").add(wait_micros);
                self.metrics
                    .counter(&shard_metric(
                        &format!("energy_cost_micros.core{core}"),
                        sh.index,
                    ))
                    .add(energy_micros);
                self.metrics
                    .counter(&shard_metric(
                        &format!("wait_cost_micros.core{core}"),
                        sh.index,
                    ))
                    .add(wait_micros);
            }
        }
        self.lock_drained().events.extend(events);
    }

    /// Move every shard's live ring residue (events recorded since the
    /// last round boundary) into the accumulated trace, ascending shard
    /// order.
    fn collect_trace_residue(&self) {
        for sh in &self.shards {
            self.drain_shard_trace(sh);
        }
    }

    /// The retained accumulated trace as JSONL lines (one event per
    /// line, no trailing newline per line). Live ring residue is folded
    /// in first, so the result covers everything recorded and not yet
    /// streamed away: on a server that never used `trace_stream`, that
    /// is the complete run. The same lines back a `--trace-out` file
    /// and the wire `trace` response, byte for byte.
    #[must_use]
    pub fn trace_lines(&self) -> Vec<String> {
        self.trace_lines_absolute().0
    }

    /// [`Scheduler::trace_lines`] plus the absolute index of the first
    /// retained line in the full trace stream — the offset an
    /// append-only file writer needs to skip lines it already wrote.
    pub(crate) fn trace_lines_absolute(&self) -> (Vec<String>, u64) {
        self.collect_trace_residue();
        let drained = self.lock_drained();
        let lines = drained
            .events
            .iter()
            .map(dvfs_trace::export::jsonl_line)
            .collect();
        (lines, drained.forgotten)
    }

    /// Take one `trace_stream` chunk: serialize every retained event,
    /// then forget it server-side. Repeated calls return disjoint,
    /// contiguous chunks whose concatenation is byte-identical to what
    /// a single one-shot `trace` would have returned.
    pub(crate) fn trace_stream_take(&self) -> TraceChunk {
        self.collect_trace_residue();
        let dropped = self.trace_dropped();
        let mut drained = self.lock_drained();
        let events = std::mem::take(&mut drained.events);
        let lines: Vec<String> = events.iter().map(dvfs_trace::export::jsonl_line).collect();
        let forgotten_before = drained.forgotten;
        drained.forgotten += lines.len() as u64;
        TraceChunk {
            forgotten_before,
            streamed_total: drained.forgotten,
            lines,
            dropped,
        }
    }

    /// Encode a [`TraceChunk`] as the `trace_stream` wire response.
    pub(crate) fn stream_response(chunk: TraceChunk) -> Response {
        Response::Ok(vec![
            field_u64("count", chunk.lines.len() as u64),
            field_u64("dropped", chunk.dropped),
            field_u64("streamed", chunk.streamed_total),
            (
                "events".to_string(),
                Value::Array(chunk.lines.into_iter().map(Value::String).collect()),
            ),
        ])
    }

    /// Wire handler for `trace_stream` (in-process form; the server
    /// front-end interleaves the file append between take and encode).
    pub fn trace_stream_run(&self) -> Response {
        if !self.trace_enabled() {
            return Response::err(
                ErrorKind::BadRequest,
                "tracing is disabled (start the server with --trace-cap)",
            );
        }
        Self::stream_response(self.trace_stream_take())
    }

    /// Events dropped by full (or zero-capacity) trace rings so far.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|s| s.ring.as_ref())
            .map(SharedRing::dropped)
            .sum()
    }

    /// Wire handler for `trace`: the accumulated trace as an array of
    /// JSONL strings plus the ring-drop counter.
    pub fn trace_run(&self) -> Response {
        if !self.trace_enabled() {
            return Response::err(
                ErrorKind::BadRequest,
                "tracing is disabled (start the server with --trace-cap)",
            );
        }
        let lines = self.trace_lines();
        Response::Ok(vec![
            field_u64("count", lines.len() as u64),
            field_u64("dropped", self.trace_dropped()),
            (
                "events".to_string(),
                Value::Array(lines.into_iter().map(Value::String).collect()),
            ),
        ])
    }

    /// Wire handler for `drain`: run the round and encode the merged
    /// report plus the per-shard reports (merging and encoding happen
    /// after the round barrier is released).
    pub fn drain_run(&self) -> Response {
        let params = self.cfg.params;
        let reports = self.drain_shards();
        let merged = RoundReport::merge(&reports);
        let shard_reports: Vec<Value> = reports
            .iter()
            .enumerate()
            .map(|(k, r)| {
                Value::Object(vec![
                    field_u64("shard", k as u64),
                    field_u64("completed", r.records.len() as u64),
                    field_f64("total_cost", r.total_cost(params)),
                    field_f64("active_energy_joules", r.active_energy_joules),
                    field_f64("total_turnaround_s", r.total_turnaround_s),
                    field_f64("makespan_s", r.makespan_s),
                ])
            })
            .collect();
        Response::Ok(vec![
            field_u64("completed", merged.records.len() as u64),
            field_f64("total_cost", merged.total_cost(params)),
            field_f64("active_energy_joules", merged.active_energy_joules),
            field_f64("total_turnaround_s", merged.total_turnaround_s),
            field_f64("makespan_s", merged.makespan_s),
            field_u64("shards", self.shards.len() as u64),
            ("shard_reports".to_string(), Value::Array(shard_reports)),
        ])
    }

    /// Sum of pending (registered but uncompleted) tasks across every
    /// worker, via a stats broadcast.
    fn pending_tasks_total(&self) -> usize {
        let mut replies = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            let (tx, rx) = worker::reply_channel();
            w.send(Command::Stats { reply: tx });
            replies.push(rx);
        }
        replies
            .into_iter()
            .enumerate()
            .map(|(k, rx)| {
                rx.recv()
                    .unwrap_or_else(|_| panic!("shard {k} worker exited during stats"))
                    .pending
            })
            .sum()
    }

    /// Handle a stats request: registry snapshot plus live per-shard
    /// depths and clocks (collected from the workers in ascending shard
    /// order).
    pub fn stats(&self) -> Response {
        let mut replies = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            let (tx, rx) = worker::reply_channel();
            w.send(Command::Stats { reply: tx });
            replies.push(rx);
        }
        let mut shard_stats = Vec::with_capacity(self.shards.len());
        let mut depth_total = 0u64;
        let mut pending_total = 0u64;
        let mut now_max = 0.0f64;
        for (sh, rx) in self.shards.iter().zip(replies) {
            let reply = rx
                .recv()
                .unwrap_or_else(|_| panic!("shard {} worker exited during stats", sh.index));
            // Waiting work wherever it sits: admission depth plus the
            // engine backlog — the same combined load the router and
            // the rebalancer score shards by.
            let depth = (sh.queue.depth() + sh.backlog()) as u64;
            let pending = reply.pending as u64;
            depth_total += depth;
            pending_total += pending;
            now_max = now_max.max(reply.now);
            let out = self
                .metrics
                .counter(&shard_metric("migrations_out", sh.index))
                .get();
            let inn = self
                .metrics
                .counter(&shard_metric("migrations_in", sh.index))
                .get();
            let admitted = sh.admitted.get();
            shard_stats.push(Value::Object(vec![
                field_u64("shard", sh.index as u64),
                field_u64("queue_depth", depth),
                field_u64("pending_tasks", pending),
                field_f64("sim_now_s", reply.now),
                field_u64("migrations_out", out),
                field_u64("migrations_in", inn),
                field_f64(
                    "migration_rate",
                    (out + inn) as f64 / admitted.max(1) as f64,
                ),
            ]));
        }
        let migrations = self.metrics.counter("migrations").get();
        let admitted_total = self.metrics.counter("admitted").get();
        Response::Ok(vec![
            ("metrics".to_string(), self.metrics.snapshot()),
            field_u64("queue_depth", depth_total),
            field_u64("pending_tasks", pending_total),
            field_f64("sim_now_s", now_max),
            field_u64("shards", self.shards.len() as u64),
            field_u64("migrations", migrations),
            field_f64(
                "migration_rate",
                migrations as f64 / admitted_total.max(1) as f64,
            ),
            field_u64(
                "worker_send_failed",
                self.metrics.counter("worker_send_failed").get(),
            ),
            field_u64(
                "worker_stalled",
                self.metrics.counter("worker_stalled").get(),
            ),
            ("shard_stats".to_string(), Value::Array(shard_stats)),
        ])
    }

    /// One supervisor pass over the worker heartbeats: a worker with
    /// commands outstanding and no progress for `stall_after` is
    /// stalled. Each stall episode increments `worker_stalled` (global
    /// and per shard) exactly once — the per-shard latch resets when
    /// the worker makes progress again — and the `degraded` gauge
    /// reflects whether any shard is currently stalled. Reads only the
    /// lock-free heartbeat slots; never touches a worker channel, so a
    /// wedged worker cannot wedge its own supervisor.
    pub fn check_stalls(&self, stall_after: Duration) -> bool {
        let mut episodes = self
            .stall_episodes
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut any = false;
        for (latched, sh) in episodes.iter_mut().zip(&self.shards) {
            let snap = sh.hb.snapshot();
            let stalled =
                snap.cmd_depth > 0 && snap.last_progress_age_s > stall_after.as_secs_f64();
            if stalled && !*latched {
                self.metrics.counter("worker_stalled").inc();
                self.metrics
                    .counter(&shard_metric("worker_stalled", sh.index))
                    .inc();
            }
            *latched = stalled;
            any |= stalled;
        }
        self.metrics.gauge("degraded").set(i64::from(any));
        any
    }

    /// Wire handler for `health`: the runtime health plane as one JSON
    /// document — per-shard worker heartbeats, the stage-attribution
    /// histograms, reactor loop stats, and trace-ring drop counts.
    /// Deliberately computed from lock-free heartbeat slots and
    /// leaf-locked metrics only (no worker fan-out, no engine access),
    /// so the reactor can serve it inline on the fast path even while
    /// every worker is mid-round.
    pub fn health(&self) -> Response {
        let heartbeats: Vec<Value> = self
            .shards
            .iter()
            .map(|sh| {
                let snap = sh.hb.snapshot();
                Value::Object(vec![
                    field_u64("shard", sh.index as u64),
                    field_f64("last_progress_age_s", snap.last_progress_age_s),
                    field_u64("cmd_depth", snap.cmd_depth),
                    field_u64("dequeue_age_us", snap.dequeue_age_us),
                    field_u64("tick_us", snap.tick_us),
                    field_u64("drain_us", snap.drain_us),
                    field_u64("steal_us", snap.steal_us),
                    field_u64("inject_us", snap.inject_us),
                    field_u64("queue_depth", sh.queue.depth() as u64),
                    field_u64("backlog", sh.backlog() as u64),
                ])
            })
            .collect();
        let stages: Vec<(String, Value)> = TELESCOPE_STAGES
            .iter()
            .chain([&STAGE_CMD_DEQUEUE, &REQUEST_E2E])
            .map(|name| ((*name).to_string(), self.metrics.histogram(name).to_value()))
            .collect();
        let reactor = Value::Object(vec![
            field_u64("wakeups", self.metrics.counter("net_wakeups").get()),
            field_u64("wait_micros", self.metrics.counter("net_wait_micros").get()),
            field_u64("work_micros", self.metrics.counter("net_work_micros").get()),
            (
                "events_per_wakeup".to_string(),
                self.metrics.histogram("net_events_per_wakeup").to_value(),
            ),
            (
                "batch_lines".to_string(),
                self.metrics.histogram("net_batch_lines").to_value(),
            ),
            field_u64(
                "backpressure_stalls",
                self.metrics.counter("net_backpressure_stalls").get(),
            ),
            field_u64(
                "backpressure_stall_micros",
                self.metrics.counter("net_backpressure_stall_micros").get(),
            ),
        ]);
        let streamed = self.lock_drained().forgotten;
        Response::Ok(vec![
            field_u64(
                "degraded",
                u64::from(self.metrics.gauge("degraded").get() != 0),
            ),
            field_u64(
                "worker_stalled",
                self.metrics.counter("worker_stalled").get(),
            ),
            field_u64(
                "worker_send_failed",
                self.metrics.counter("worker_send_failed").get(),
            ),
            field_u64("shards", self.shards.len() as u64),
            field_u64("telemetry", u64::from(self.cfg.telemetry)),
            ("heartbeats".to_string(), Value::Array(heartbeats)),
            ("stages".to_string(), Value::Object(stages)),
            ("reactor".to_string(), reactor),
            field_u64("trace_dropped", self.trace_dropped()),
            field_u64("trace_streamed", streamed),
            field_u64(
                "rebalance_pass_us",
                u64::try_from(self.metrics.gauge("rebalance_pass_us").get()).unwrap_or(0),
            ),
        ])
    }

    /// Begin graceful shutdown: refuse new submissions, then drain the
    /// backlog until every queue and engine is observed empty, so
    /// nothing admitted is lost. A submitter that passed the shutdown
    /// check before the flag was stored can still be admitted
    /// concurrently with a drain; re-checking the depths after each
    /// drain (under the queue locks the admission gate also takes)
    /// catches it, and every later submit observes the flag inside the
    /// gate and is refused — so the loop terminates.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        loop {
            let queued = self.queue_depth();
            let pending = self.pending_tasks_total();
            if queued == 0 && pending == 0 {
                break;
            }
            let _ = self.drain_run();
        }
    }
}

impl Drop for Scheduler {
    /// Stop and join every shard worker. Commands already queued are
    /// processed first (the stop request is FIFO like everything else),
    /// so no in-flight round is abandoned.
    fn drop(&mut self) {
        for w in &self.workers {
            w.begin_stop();
        }
        for w in &mut self.workers {
            w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{value_f64, value_u64};
    use dvfs_core::LeastMarginalCost;
    use dvfs_sim::{SimConfig, Simulator};

    fn scheduler(capacity: usize) -> Scheduler {
        Scheduler::new(
            SchedulerConfig {
                cores: 2,
                queue_capacity: capacity,
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        )
    }

    fn sharded(shards: usize, capacity: usize) -> Scheduler {
        Scheduler::new(
            SchedulerConfig {
                cores: 2,
                queue_capacity: capacity,
                shards,
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        )
    }

    fn paced(shards: usize, speed: f64) -> Scheduler {
        Scheduler::new(
            SchedulerConfig {
                cores: 1,
                queue_capacity: 64,
                mode: Mode::Paced { speed },
                shards,
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        )
    }

    #[test]
    fn replay_drain_matches_library_run() {
        let s = scheduler(64);
        let trace: Vec<Task> = (0..12)
            .map(|i| {
                let class = if i % 3 == 0 {
                    TaskClass::Interactive
                } else {
                    TaskClass::NonInteractive
                };
                Task::online(i, (i + 1) * 40_000_000, i as f64 * 0.01, None, class).unwrap()
            })
            .collect();
        for t in &trace {
            let r = s.submit(Some(t.id.0), t.cycles, t.class, Some(t.arrival));
            assert!(r.is_ok(), "submit failed: {r:?}");
        }
        let served = s.drain_run();
        assert!(served.is_ok());

        // Reference: the same trace through the simulator, in process.
        let platform = service_platform(2);
        let params = CostParams::online_paper();
        let mut policy = LeastMarginalCost::new(&platform, params);
        let mut sim = Simulator::new(SimConfig::new(platform));
        sim.add_tasks(&trace);
        let want = sim.run(&mut policy);

        let got_cost = crate::protocol::value_f64(served.field("total_cost").unwrap()).unwrap();
        assert!(
            (got_cost - want.cost(params).total()).abs() < 1e-12,
            "served cost {got_cost} != library cost {}",
            want.cost(params).total()
        );
        let got_makespan = crate::protocol::value_f64(served.field("makespan_s").unwrap()).unwrap();
        assert!((got_makespan - want.makespan).abs() < 1e-12);
        assert_eq!(value_u64(served.field("completed").unwrap()), Some(12));
        assert_eq!(value_u64(served.field("shards").unwrap()), Some(1));
    }

    #[test]
    fn duplicate_ids_rejected_within_a_round_and_allowed_across() {
        let s = scheduler(8);
        assert!(s
            .submit(Some(1), 1_000, TaskClass::Interactive, None)
            .is_ok());
        let dup = s.submit(Some(1), 1_000, TaskClass::Interactive, None);
        assert!(!dup.is_ok());
        assert!(s.drain_run().is_ok());
        // New round, id space reset.
        assert!(s
            .submit(Some(1), 1_000, TaskClass::Interactive, None)
            .is_ok());
    }

    #[test]
    fn overflow_sheds_with_overloaded_kind_and_releases_the_id() {
        let s = scheduler(2);
        // capacity 2, reserve 1 → one non-interactive slot.
        let first = s.submit(None, 1_000, TaskClass::NonInteractive, None);
        assert!(first.is_ok());
        assert_eq!(value_u64(first.field("id").unwrap()), Some(0));
        let shed = s.submit(None, 1_000, TaskClass::NonInteractive, None);
        match shed {
            Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::Overloaded),
            Response::Ok(_) => panic!("expected shed"),
        }
        assert_eq!(s.metrics().counter("shed").get(), 1);
        // The interactive reserve still admits, and the shed auto-id
        // was released for reuse.
        let third = s.submit(None, 1_000, TaskClass::Interactive, None);
        assert!(third.is_ok());
        assert_eq!(value_u64(third.field("id").unwrap()), Some(1));
    }

    #[test]
    fn shutdown_refuses_new_work_and_drains_backlog() {
        let s = scheduler(8);
        assert!(s
            .submit(Some(5), 2_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        s.begin_shutdown();
        assert!(s.is_shutting_down());
        assert_eq!(s.metrics().counter("completed").get(), 1, "backlog drained");
        let r = s.submit(Some(6), 1_000, TaskClass::Interactive, None);
        match r {
            Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::ShuttingDown),
            Response::Ok(_) => panic!("submit must fail during shutdown"),
        }
    }

    #[test]
    fn paced_ticks_complete_tasks_and_actuate() {
        let s = paced(1, 10_000.0);
        s.start_clock();
        assert!(s
            .submit(None, 1_600_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        // Tick until the task completes (bounded wait).
        let mut done = false;
        for _ in 0..200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            s.tick();
            if s.metrics().counter("completed").get() == 1 {
                done = true;
                break;
            }
        }
        assert!(done, "paced task never completed");
        assert!(s.metrics().counter("actuations").get() >= 1);
        assert_eq!(s.metrics().histogram("task_latency_s").count(), 1);
    }

    #[test]
    fn paced_drain_counts_streamed_completions_once() {
        let s = paced(1, 10_000.0);
        s.start_clock();
        assert!(s
            .submit(None, 1_600_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        for _ in 0..200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            s.tick();
            if s.metrics().counter("completed").get() == 1 {
                break;
            }
        }
        assert_eq!(s.metrics().counter("completed").get(), 1);
        // The drain reports the round's single task but must not feed
        // its already-streamed completion into the histograms again.
        let report = s.drain_round();
        assert_eq!(report.records.len(), 1);
        assert_eq!(s.metrics().counter("completed").get(), 1);
        assert_eq!(s.metrics().histogram("task_latency_s").count(), 1);
    }

    /// Regression (paced-clock time warp): a drain stands up fresh
    /// engines at time zero, so the paced anchors must restart with
    /// them. Pre-fix, the tick target kept growing from the original
    /// anchor and the first tick of the next round warped the fresh
    /// engine to the previous round's clock.
    #[test]
    fn paced_clock_restarts_with_the_round_on_drain() {
        let s = paced(1, 2_000.0);
        s.start_clock();
        assert!(s
            .submit(None, 1_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        // Let the wall-mapped target grow well past 200 engine seconds.
        std::thread::sleep(std::time::Duration::from_millis(120));
        s.tick();
        let round1 = s.drain_round();
        assert_eq!(round1.records.len(), 1);

        // Round two: the engine clock after one immediate tick must be
        // near zero again, not the previous round's ~240 s.
        assert!(s
            .submit(None, 1_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        s.tick();
        let stats = s.stats();
        let now = value_f64(stats.field("sim_now_s").unwrap()).unwrap();
        assert!(
            now < 100.0,
            "fresh round time-warped to {now} engine seconds: the paced \
             anchor was not reset on drain"
        );
        // And the round still completes normally.
        let round2 = s.drain_round();
        assert_eq!(round2.records.len(), 1);
    }

    /// Regression (shutdown/submit race): a task that enters the queue
    /// concurrently with shutdown's drain — the hook stands in for a
    /// submitter that passed the shutdown check before the flag was
    /// stored — must still be completed, not silently lost.
    #[test]
    fn shutdown_drains_tasks_admitted_during_its_own_drain() {
        let s = scheduler(8);
        assert!(s
            .submit(Some(1), 1_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        // Fires inside the first shutdown drain, after the queue was
        // emptied into the engine: exactly the window the single-drain
        // shutdown lost tasks in.
        s.set_round_hook(|s| {
            let late = Task::online(99, 1_000_000, 0.0, None, TaskClass::NonInteractive).unwrap();
            s.shard_queue(0).try_submit(late).expect("late admit");
        });
        s.begin_shutdown();
        assert_eq!(
            s.metrics().counter("completed").get(),
            2,
            "the late-admitted task must be drained, not lost"
        );
        assert_eq!(s.queue_depth(), 0);
    }

    /// The same race, exercised with a real racing submitter thread:
    /// after shutdown returns, every acknowledged submission has been
    /// completed.
    #[test]
    fn shutdown_races_a_live_submitter_without_losing_admitted_tasks() {
        let s = Arc::new(scheduler(512));
        let submitter = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut admitted = 0u64;
                for _ in 0..100_000 {
                    match s.submit(None, 1_000_000, TaskClass::NonInteractive, None) {
                        Response::Ok(_) => admitted += 1,
                        Response::Err {
                            kind: ErrorKind::ShuttingDown,
                            ..
                        } => break,
                        Response::Err { .. } => {}
                    }
                }
                admitted
            })
        };
        // Give the submitter a head start, then shut down mid-stream.
        while s.metrics().counter("admitted").get() < 64 {
            std::thread::yield_now();
        }
        s.begin_shutdown();
        let admitted = submitter.join().expect("submitter thread");
        assert_eq!(
            s.metrics().counter("completed").get(),
            admitted,
            "every acknowledged submission must be completed"
        );
        assert_eq!(s.queue_depth(), 0);
    }

    /// Regression (stale queue-depth gauge): `tick` and `drain` used to
    /// write a constant zero after emptying the queues, clobbering the
    /// depth of any task admitted concurrently. The gauge must be
    /// recomputed from the live queues at write time.
    #[test]
    fn queue_depth_gauge_tracks_tasks_admitted_during_a_round() {
        let s = scheduler(8);
        assert!(s
            .submit(Some(1), 1_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        // Fires inside the tick, after the queue was drained into the
        // engine — the position of a submitter racing the tick.
        s.set_round_hook(|s| {
            let racing = Task::online(2, 1_000_000, 0.0, None, TaskClass::NonInteractive).unwrap();
            s.shard_queue(0).try_submit(racing).expect("racing admit");
        });
        s.tick();
        assert_eq!(s.queue_depth(), 1, "racing task still queued");
        assert_eq!(
            s.metrics().gauge("queue_depth").get(),
            1,
            "gauge must reflect the live queue, not a stale zero"
        );

        // Same window during a drain.
        s.set_round_hook(|s| {
            let racing = Task::online(3, 1_000_000, 0.0, None, TaskClass::NonInteractive).unwrap();
            s.shard_queue(0).try_submit(racing).expect("racing admit");
        });
        let _ = s.drain_round();
        assert_eq!(s.queue_depth(), 1);
        assert_eq!(s.metrics().gauge("queue_depth").get(), 1);
    }

    #[test]
    fn explicit_ids_hash_to_shards_and_auto_ids_balance() {
        let s = sharded(4, 64);
        // Explicit ids land on id % shards.
        for id in 0..8u64 {
            let r = s.submit(Some(id), 1_000, TaskClass::NonInteractive, Some(0.0));
            assert!(r.is_ok());
            assert_eq!(
                value_u64(r.field("shard").unwrap()),
                Some(id % 4),
                "id {id} routed to the wrong shard"
            );
        }
        // Auto ids spread by load: with all shards at depth 2, four
        // more submissions land on four distinct shards.
        let mut seen = HashSet::new();
        for _ in 0..4 {
            let r = s.submit(None, 1_000, TaskClass::NonInteractive, Some(0.0));
            assert!(r.is_ok());
            seen.insert(value_u64(r.field("shard").unwrap()).unwrap());
        }
        assert_eq!(seen.len(), 4, "auto ids must balance across shards");
    }

    #[test]
    fn auto_ids_round_robin_when_every_shard_is_equally_idle() {
        // The paced steady state: the ticker keeps every queue empty,
        // so headroom and depth tie everywhere. The rotating cursor
        // must spread submissions instead of piling onto shard 0.
        let s = sharded(4, 64);
        let mut seen = HashSet::new();
        for _ in 0..4 {
            let r = s.submit(None, 1_000, TaskClass::Interactive, Some(0.0));
            assert!(r.is_ok());
            let shard = value_u64(r.field("shard").unwrap()).unwrap();
            seen.insert(shard);
            // Drain the queue back to empty so the next submission
            // sees the same all-tied state.
            s.shard_queue(shard as usize).drain();
        }
        assert_eq!(seen.len(), 4, "ties must round-robin across shards");
    }

    #[test]
    fn router_folds_engine_backlog_into_auto_routing() {
        let s = sharded(2, 64);
        // Skew shard 0: six explicit even ids, then a tick pulls them
        // into its engine — two dispatch (cores = 2), four stay queued
        // inside the engine while the admission queue reads empty.
        for i in 0..6u64 {
            assert!(s
                .submit(
                    Some(2 * i),
                    400_000_000,
                    TaskClass::NonInteractive,
                    Some(0.0)
                )
                .is_ok());
        }
        s.tick();
        assert_eq!(s.queue_depth(), 0, "admission queues drained by the tick");
        // The depth gauges must keep counting the engine-held tasks.
        assert_eq!(s.metrics().gauge("queue_depth").get(), 4);
        assert_eq!(
            s.metrics().gauge(&shard_metric("queue_depth", 0)).get(),
            4,
            "shard gauge must include the engine backlog"
        );
        // Pre-fix the router scored both shards as equally empty and
        // kept feeding the deep shard 0; the published backlog must now
        // push every auto id to shard 1 until the loads equalize.
        for _ in 0..4 {
            let r = s.submit(None, 1_000, TaskClass::NonInteractive, Some(0.0));
            assert!(r.is_ok());
            assert_eq!(
                value_u64(r.field("shard").unwrap()),
                Some(1),
                "auto id routed onto the backlogged shard"
            );
        }
    }

    #[test]
    fn a_submit_many_batch_routes_each_auto_id_against_fresh_depths() {
        let s = sharded(4, 64);
        let items = vec![
            SubmitItem {
                id: None,
                cycles: 1_000,
                class: TaskClass::NonInteractive,
                arrival: Some(0.0),
            };
            4
        ];
        let out = s.submit_many(&items);
        let mut seen = HashSet::new();
        for r in &out {
            assert!(r.is_ok());
            seen.insert(value_u64(r.field("shard").unwrap()).unwrap());
        }
        assert_eq!(
            seen.len(),
            4,
            "a batch of auto ids must route per item against fresh depths, not pile onto one shard"
        );
    }

    #[test]
    fn rebalancer_moves_queued_tasks_hot_to_cold_and_counts_migrations() {
        let s = Scheduler::new(
            SchedulerConfig {
                cores: 2,
                queue_capacity: 64,
                shards: 2,
                trace_capacity: 256,
                rebalance: RebalanceConfig::on(),
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        );
        // All-even explicit ids skew every task onto shard 0.
        for i in 0..8u64 {
            assert!(s
                .submit(
                    Some(2 * i),
                    400_000_000,
                    TaskClass::NonInteractive,
                    Some(0.0)
                )
                .is_ok());
        }
        // The tick pulls the skew into shard 0's engine (2 running, 6
        // queued) and ends with a rebalance pass: shard 1's queued cost
        // is zero, so the gap clears and half the backlog moves.
        s.tick();
        let moved = s.metrics().counter("migrations").get();
        assert_eq!(moved, 3, "half the backlog of 6, capped by max_batch");
        assert_eq!(
            s.metrics()
                .counter(&shard_metric("migrations_out", 0))
                .get(),
            moved
        );
        assert_eq!(
            s.metrics().counter(&shard_metric("migrations_in", 1)).get(),
            moved
        );
        let stats = s.stats();
        let rate = crate::protocol::value_f64(stats.field("migration_rate").unwrap()).unwrap();
        assert!(rate > 0.0, "stats must report a positive migration_rate");
        // Every task still completes exactly once, wherever it ran.
        let served = s.drain_run();
        assert!(served.is_ok());
        assert_eq!(value_u64(served.field("completed").unwrap()), Some(8));
        // The receiving shard recorded one migrate trace event per task.
        let migrates = s
            .trace_lines()
            .iter()
            .filter(|l| l.contains("\"ev\":\"migrate\""))
            .count();
        assert_eq!(migrates as u64, moved);
    }

    #[test]
    fn rebalancer_is_a_no_op_on_one_shard_and_when_disabled() {
        // One shard: nothing to balance against, even when enabled.
        let single = Scheduler::new(
            SchedulerConfig {
                cores: 2,
                queue_capacity: 64,
                rebalance: RebalanceConfig::on(),
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        );
        assert!(single
            .submit(Some(0), 400_000_000, TaskClass::NonInteractive, Some(0.0))
            .is_ok());
        single.tick();
        assert_eq!(single.metrics().counter("migrations").get(), 0);

        // Disabled (the default): a skewed sharded service never
        // migrates — the contract the conformance suite leans on.
        let s = sharded(2, 64);
        for i in 0..8u64 {
            assert!(s
                .submit(
                    Some(2 * i),
                    400_000_000,
                    TaskClass::NonInteractive,
                    Some(0.0)
                )
                .is_ok());
        }
        s.tick();
        assert_eq!(s.metrics().counter("migrations").get(), 0);
    }

    #[test]
    fn sharded_drain_merges_per_shard_reports() {
        let s = sharded(2, 64);
        // Disjoint work: even ids to shard 0, odd to shard 1.
        for id in 0..10u64 {
            assert!(s
                .submit(
                    Some(id),
                    (id + 1) * 40_000_000,
                    TaskClass::NonInteractive,
                    Some(0.0)
                )
                .is_ok());
        }
        let reports = s.drain_shards();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].records.len(), 5);
        assert_eq!(reports[1].records.len(), 5);
        let merged = RoundReport::merge(&reports);
        assert_eq!(merged.records.len(), 10);
        assert_eq!(
            merged.active_energy_joules,
            reports[0].active_energy_joules + reports[1].active_energy_joules
        );
        assert_eq!(
            merged.total_turnaround_s,
            reports[0].total_turnaround_s + reports[1].total_turnaround_s
        );
        assert_eq!(
            merged.makespan_s,
            reports[0].makespan_s.max(reports[1].makespan_s)
        );
        // Per-shard completed counters saw the split.
        assert_eq!(s.metrics().counter("completed").get(), 10);
        assert_eq!(s.metrics().counter(&shard_metric("completed", 0)).get(), 5);
        assert_eq!(s.metrics().counter(&shard_metric("completed", 1)).get(), 5);
    }

    #[test]
    fn single_shard_drain_is_identical_to_the_unsharded_path() {
        // shards = 1 must stay bit-identical to the simulator: the
        // merge of one report is the identity.
        let trace: Vec<Task> = (0..8)
            .map(|i| {
                Task::online(i, (i + 1) * 30_000_000, i as f64 * 0.02, None, {
                    if i % 2 == 0 {
                        TaskClass::Interactive
                    } else {
                        TaskClass::NonInteractive
                    }
                })
                .unwrap()
            })
            .collect();
        let s = sharded(1, 64);
        for t in &trace {
            assert!(s
                .submit(Some(t.id.0), t.cycles, t.class, Some(t.arrival))
                .is_ok());
        }
        let got = s.drain_round();

        let platform = service_platform(2);
        let params = CostParams::online_paper();
        let mut policy = LeastMarginalCost::new(&platform, params);
        let mut sim = Simulator::new(SimConfig::new(platform));
        sim.add_tasks(&trace);
        let want = sim.run(&mut policy);
        assert_eq!(got.active_energy_joules, want.active_energy_joules);
        assert_eq!(got.total_turnaround_s, want.total_turnaround());
        assert_eq!(got.makespan_s, want.makespan);
    }

    #[test]
    fn stats_reports_per_shard_fields() {
        let s = sharded(2, 64);
        assert!(s
            .submit(Some(0), 1_000, TaskClass::NonInteractive, Some(0.0))
            .is_ok());
        let stats = s.stats();
        assert_eq!(value_u64(stats.field("shards").unwrap()), Some(2));
        assert_eq!(value_u64(stats.field("queue_depth").unwrap()), Some(1));
        let Some(Value::Array(shard_stats)) = stats.field("shard_stats") else {
            panic!("stats must carry a shard_stats array");
        };
        assert_eq!(shard_stats.len(), 2);
        let depth0 = shard_stats[0]
            .get("queue_depth")
            .and_then(value_u64)
            .unwrap();
        assert_eq!(depth0, 1, "task with id 0 sits on shard 0");
    }

    /// The health-plane counters exist from construction and are pinned
    /// to their exposition names: `stats` carries them as top-level
    /// fields and `prometheus_text` exports them under the `dvfs_`
    /// prefix, so dashboards can alert on them before the first
    /// failure ever happens.
    #[test]
    fn stall_counters_are_pinned_in_stats_and_prometheus_exposition() {
        let s = sharded(2, 64);
        let stats = s.stats();
        assert_eq!(
            value_u64(stats.field("worker_send_failed").unwrap()),
            Some(0)
        );
        assert_eq!(value_u64(stats.field("worker_stalled").unwrap()), Some(0));
        let text = crate::metrics::prometheus_text(s.metrics());
        assert!(
            text.contains("dvfs_worker_send_failed 0"),
            "exposition must pin dvfs_worker_send_failed: {text}"
        );
        assert!(
            text.contains("dvfs_worker_stalled 0"),
            "exposition must pin dvfs_worker_stalled: {text}"
        );
        assert!(
            text.contains("dvfs_degraded 0"),
            "exposition must pin dvfs_degraded: {text}"
        );
    }

    /// The stall supervisor counts episodes, not polls: a stalled shard
    /// increments `worker_stalled` once, stays latched while the stall
    /// persists, and re-arms after the worker makes progress again.
    #[test]
    fn check_stalls_latches_one_count_per_episode() {
        let s = sharded(2, 64);
        // Healthy workers: no stall, not degraded.
        assert!(!s.check_stalls(Duration::from_millis(0)));
        assert_eq!(s.metrics().counter("worker_stalled").get(), 0);

        // Simulate a wedged shard-0 worker: a command counted as sent
        // but never dequeued, with the progress stamp aging out.
        s.shards[0].hb.note_send();
        std::thread::sleep(Duration::from_millis(2));
        assert!(s.check_stalls(Duration::from_millis(1)));
        assert_eq!(s.metrics().counter("worker_stalled").get(), 1);
        assert_eq!(
            s.metrics()
                .counter(&shard_metric("worker_stalled", 0))
                .get(),
            1
        );
        assert_eq!(s.metrics().gauge("degraded").get(), 1);
        // Still stalled: the latch holds the count at one.
        assert!(s.check_stalls(Duration::from_millis(1)));
        assert_eq!(s.metrics().counter("worker_stalled").get(), 1);

        // The worker recovers (dequeues the command, marks progress):
        // the flag clears and the latch re-arms.
        s.shards[0].hb.note_dequeue(crate::clock::wall_now());
        assert!(!s.check_stalls(Duration::from_millis(1)));
        assert_eq!(s.metrics().gauge("degraded").get(), 0);

        // A second episode counts again.
        s.shards[0].hb.note_send();
        std::thread::sleep(Duration::from_millis(2));
        assert!(s.check_stalls(Duration::from_millis(1)));
        assert_eq!(s.metrics().counter("worker_stalled").get(), 2);
    }

    /// `trace_stream` chunks drain-and-forget: their concatenation is
    /// byte-identical to the one-shot `trace` of an identical run that
    /// never streamed, and the retained trace really is forgotten.
    #[test]
    fn trace_stream_chunks_concatenate_to_the_one_shot_trace() {
        let run = |streamed: bool| -> (Vec<String>, Option<Scheduler>) {
            let s = Scheduler::new(
                SchedulerConfig {
                    cores: 2,
                    queue_capacity: 64,
                    trace_capacity: 256,
                    ..SchedulerConfig::default()
                },
                Arc::new(Registry::new()),
            );
            let mut lines = Vec::new();
            for round in 0..2u64 {
                for i in 0..5u64 {
                    assert!(s
                        .submit(
                            Some(round * 10 + i),
                            (i + 1) * 20_000_000,
                            TaskClass::NonInteractive,
                            Some(i as f64 * 0.01),
                        )
                        .is_ok());
                }
                assert!(s.drain_run().is_ok());
                if streamed {
                    lines.extend(s.trace_stream_take().lines);
                }
            }
            if streamed {
                (lines, Some(s))
            } else {
                (s.trace_lines(), Some(s))
            }
        };
        let (streamed, s) = run(true);
        let (oneshot, _) = run(false);
        assert!(!oneshot.is_empty());
        assert_eq!(
            streamed.join("\n"),
            oneshot.join("\n"),
            "concatenated trace_stream chunks must be byte-identical to a one-shot trace"
        );
        // Streamed events are forgotten: the retained trace is empty
        // and the cursor accounts for every line handed out.
        let s = s.unwrap();
        let (retained, forgotten) = s.trace_lines_absolute();
        assert!(retained.is_empty(), "streamed events must be forgotten");
        assert_eq!(forgotten, streamed.len() as u64);
        let health = s.health();
        assert_eq!(
            value_u64(health.field("trace_streamed").unwrap()),
            Some(streamed.len() as u64)
        );
    }

    /// The tentpole invariant: in paced mode the per-stage histograms
    /// telescope — summed over all completed requests, the telescope
    /// stages account for the observed end-to-end latency within
    /// clock-seam tolerance (each seam overlap and the completion
    /// observation lag are bounded by one tick period per request).
    #[test]
    fn paced_stage_sums_telescope_to_e2e_latency() {
        let s = Scheduler::new(
            SchedulerConfig {
                cores: 1,
                queue_capacity: 64,
                mode: Mode::Paced { speed: 50.0 },
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        );
        s.start_clock();
        let n = 4u64;
        for _ in 0..n {
            assert!(s
                .submit(None, 1_600_000_000, TaskClass::NonInteractive, None)
                .is_ok());
        }
        for _ in 0..2_000 {
            std::thread::sleep(Duration::from_millis(1));
            s.tick();
            if s.metrics().counter("completed").get() == n {
                break;
            }
        }
        assert_eq!(s.metrics().counter("completed").get(), n, "tasks completed");
        let m = s.metrics();
        for name in TELESCOPE_STAGES {
            assert_eq!(
                m.histogram(name).count(),
                n,
                "stage {name} must record one sample per request"
            );
        }
        let e2e = m.histogram(REQUEST_E2E);
        assert_eq!(e2e.count(), n);
        let stage_total: f64 = TELESCOPE_STAGES
            .iter()
            .map(|name| m.histogram(name).sum())
            .sum();
        let e2e_total = e2e.sum();
        assert!(e2e_total > 0.0);
        // Seam tolerance: 30% relative (each of the handful of seams is
        // bounded by one ~1 ms tick against ~10-20 ms of service time
        // per task) plus a small absolute floor for scheduler jitter.
        let tol = 0.30 * e2e_total + 0.02 * n as f64;
        assert!(
            (stage_total - e2e_total).abs() <= tol,
            "stage sum {stage_total:.4}s must telescope to e2e {e2e_total:.4}s (tol {tol:.4}s)"
        );
    }

    /// `health` is served from heartbeat slots and leaf metrics only;
    /// its document carries every advertised section with sane values
    /// on a live sharded service.
    #[test]
    fn health_reports_heartbeats_stages_and_reactor_sections() {
        let s = sharded(2, 64);
        for id in 0..4u64 {
            assert!(s
                .submit(Some(id), 20_000_000, TaskClass::NonInteractive, Some(0.0))
                .is_ok());
        }
        s.tick();
        let health = s.health();
        assert_eq!(value_u64(health.field("shards").unwrap()), Some(2));
        assert_eq!(value_u64(health.field("degraded").unwrap()), Some(0));
        assert_eq!(value_u64(health.field("telemetry").unwrap()), Some(1));
        let Some(Value::Array(beats)) = health.field("heartbeats") else {
            panic!("health must carry a heartbeats array");
        };
        assert_eq!(beats.len(), 2);
        for (k, beat) in beats.iter().enumerate() {
            assert_eq!(beat.get("shard").and_then(value_u64), Some(k as u64));
            assert_eq!(
                beat.get("cmd_depth").and_then(value_u64),
                Some(0),
                "an idle worker has no commands outstanding"
            );
            let age = beat
                .get("last_progress_age_s")
                .and_then(crate::protocol::value_f64)
                .unwrap();
            assert!(
                (0.0..60.0).contains(&age),
                "fresh progress stamp, got {age}"
            );
            assert!(beat.get("tick_us").and_then(value_u64).is_some());
        }
        let Some(Value::Object(stages)) = health.field("stages") else {
            panic!("health must carry a stages object");
        };
        let mut want: Vec<&str> = TELESCOPE_STAGES.to_vec();
        want.push(STAGE_CMD_DEQUEUE);
        want.push(REQUEST_E2E);
        for name in want {
            let stage = stages
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("health stages must include {name}"));
            assert!(stage.get("count").and_then(value_u64).is_some());
        }
        let Some(reactor) = health.field("reactor") else {
            panic!("health must carry a reactor section");
        };
        assert_eq!(reactor.get("wakeups").and_then(value_u64), Some(0));
        assert_eq!(value_u64(health.field("trace_dropped").unwrap()), Some(0));
    }

    /// `telemetry: false` silences the per-task stage records without
    /// touching the always-on health plane (heartbeats, health shape)
    /// or the scheduling outcome.
    #[test]
    fn telemetry_off_skips_stage_records_but_keeps_heartbeats() {
        let s = Scheduler::new(
            SchedulerConfig {
                cores: 2,
                queue_capacity: 64,
                telemetry: false,
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        );
        for id in 0..4u64 {
            assert!(s
                .submit(Some(id), 20_000_000, TaskClass::NonInteractive, Some(0.0))
                .is_ok());
        }
        assert!(s.drain_run().is_ok());
        assert_eq!(s.metrics().counter("completed").get(), 4);
        for name in TELESCOPE_STAGES {
            assert_eq!(
                s.metrics().histogram(name).count(),
                0,
                "stage {name} must stay silent with telemetry off"
            );
        }
        assert_eq!(s.metrics().histogram(REQUEST_E2E).count(), 0);
        let health = s.health();
        assert_eq!(value_u64(health.field("telemetry").unwrap()), Some(0));
        let Some(Value::Array(beats)) = health.field("heartbeats") else {
            panic!("heartbeats stay on with telemetry off");
        };
        assert_eq!(beats.len(), 1);
    }
}
