//! The scheduler service: wire requests in, LMC scheduling decisions
//! out.
//!
//! Two operating modes:
//!
//! * **Replay** — submissions buffer in the admission queue with their
//!   explicit arrival times; a `drain` command runs the whole workload
//!   through the simulator at once. Because the buffered tasks reach
//!   the engine in submission order with untouched arrivals, a drained
//!   round is *bit-identical* to running [`LeastMarginalCost`] over the
//!   same trace in-process — the determinism contract the end-to-end
//!   tests pin.
//! * **Paced** — a ticker thread maps wall time onto simulation time
//!   (`sim_seconds = wall_seconds * speed`) and steps the engine
//!   incrementally; submissions arrive at the current sim time and
//!   completions stream into the latency/cost histograms as they
//!   happen.
//!
//! Either way, every frequency decision the policy or engine makes is
//! mirrored onto a [`DvfsActuator`] over a simulated sysfs tree — the
//! same actuation path a real deployment would use, minus root.

use crate::admission::{AdmissionPolicy, AdmissionQueue};
use crate::metrics::Registry;
use crate::protocol::{field_f64, field_u64, ErrorKind, Response};
use dvfs_core::LeastMarginalCost;
use dvfs_model::{CoreSpec, CostParams, Platform, RateTable, Task, TaskClass};
use dvfs_sim::{LogEvent, SimConfig, SimReport, Simulator, TaskRecord};
use dvfs_sysfs::{DvfsActuator, SimulatedSysfs};
use std::collections::HashSet;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// How the service maps submissions onto simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Buffer submissions (explicit arrivals) and run on `drain`.
    Replay,
    /// Step the simulator in real time, `speed` sim seconds per wall
    /// second.
    Paced {
        /// Sim-seconds advanced per wall-second (1.0 = real time).
        speed: f64,
    },
}

/// Scheduler construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Number of homogeneous i7-950 cores to schedule onto.
    pub cores: usize,
    /// Cost weights for reporting and the LMC policy.
    pub params: CostParams,
    /// Replay or paced operation.
    pub mode: Mode,
    /// Admission queue bound.
    pub queue_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            cores: 4,
            params: CostParams::online_paper(),
            mode: Mode::Replay,
            queue_capacity: 1024,
        }
    }
}

/// The platform a scheduler with `cores` cores runs on. Exposed so
/// out-of-process clients (tests, analysis) can reproduce server runs
/// exactly.
#[must_use]
pub fn service_platform(cores: usize) -> Platform {
    Platform::homogeneous(cores, CoreSpec::new(RateTable::i7_950_table2()))
        .expect("positive core count")
}

struct Inner {
    sim: Simulator,
    policy: LeastMarginalCost,
    actuator: DvfsActuator<SimulatedSysfs>,
    /// Event-log entries already mirrored onto the actuator.
    log_cursor: usize,
    /// Task ids in the current round (client-chosen and auto-assigned).
    used_ids: HashSet<u64>,
    next_auto_id: u64,
    /// Wall-clock anchor for paced time mapping.
    anchor: Option<Instant>,
    shutting_down: bool,
}

fn fresh_engine(cores: usize, params: CostParams) -> (Simulator, LeastMarginalCost) {
    let platform = service_platform(cores);
    let policy = LeastMarginalCost::new(&platform, params);
    let sim = Simulator::new(SimConfig::new(platform).with_event_log());
    (sim, policy)
}

fn fresh_actuator(cores: usize) -> DvfsActuator<SimulatedSysfs> {
    let table = RateTable::i7_950_table2();
    let backend = SimulatedSysfs::new(cores, &table);
    DvfsActuator::new(backend, table).expect("simulated sysfs accepts the userspace governor")
}

/// The long-running scheduler: admission queue, simulator, policy,
/// actuator, and metrics behind one lock.
pub struct Scheduler {
    cfg: SchedulerConfig,
    queue: AdmissionQueue,
    metrics: Arc<Registry>,
    inner: Mutex<Inner>,
}

impl Scheduler {
    /// Build a scheduler publishing into `metrics`.
    #[must_use]
    pub fn new(cfg: SchedulerConfig, metrics: Arc<Registry>) -> Self {
        let (sim, policy) = fresh_engine(cfg.cores, cfg.params);
        Scheduler {
            cfg,
            queue: AdmissionQueue::new(AdmissionPolicy::with_capacity(cfg.queue_capacity)),
            metrics,
            inner: Mutex::new(Inner {
                sim,
                policy,
                actuator: fresh_actuator(cfg.cores),
                log_cursor: 0,
                used_ids: HashSet::new(),
                next_auto_id: 0,
                anchor: None,
                shutting_down: false,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// The metrics registry this scheduler publishes into.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// The admission queue (exposed for backpressure-aware callers).
    #[must_use]
    pub fn queue(&self) -> &AdmissionQueue {
        &self.queue
    }

    /// Whether shutdown has begun.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.lock().shutting_down
    }

    /// Start the paced clock (no-op in replay mode). Called once when
    /// the server begins serving.
    pub fn start_clock(&self) {
        let mut inner = self.lock();
        if inner.anchor.is_none() {
            inner.anchor = Some(Instant::now());
        }
    }

    /// Wall-mapped target simulation time for paced mode (0 in replay).
    fn target_sim_time(&self, inner: &Inner) -> f64 {
        match (self.cfg.mode, inner.anchor) {
            (Mode::Paced { speed }, Some(t0)) => t0.elapsed().as_secs_f64() * speed,
            _ => 0.0,
        }
    }

    /// Handle a submit request end to end: id assignment, validation,
    /// admission, metrics.
    pub fn submit(
        &self,
        id: Option<u64>,
        cycles: u64,
        class: TaskClass,
        arrival: Option<f64>,
    ) -> Response {
        self.metrics.counter("submitted").inc();
        let mut inner = self.lock();
        if inner.shutting_down {
            return Response::err(ErrorKind::ShuttingDown, "server is draining");
        }
        let id = match id {
            Some(id) => {
                if inner.used_ids.contains(&id) {
                    self.metrics.counter("rejected_duplicate_id").inc();
                    return Response::err(
                        ErrorKind::BadRequest,
                        format!("task id {id} already used this round"),
                    );
                }
                id
            }
            None => {
                while inner.used_ids.contains(&inner.next_auto_id) {
                    inner.next_auto_id += 1;
                }
                inner.next_auto_id
            }
        };
        let arrival = match self.cfg.mode {
            Mode::Replay => arrival.unwrap_or(0.0),
            // Paced submissions arrive "now" on the sim clock; an
            // explicit arrival in the future is honored, the past is
            // clamped forward by the engine.
            Mode::Paced { .. } => {
                let now = self.target_sim_time(&inner);
                arrival.unwrap_or(now).max(now)
            }
        };
        let task = match Task::online(id, cycles, arrival, None, class) {
            Ok(t) => t,
            Err(e) => {
                self.metrics.counter("rejected_invalid").inc();
                return Response::err(ErrorKind::BadRequest, e.to_string());
            }
        };
        match self.queue.try_submit(task) {
            Ok(depth) => {
                inner.used_ids.insert(id);
                self.metrics.counter("admitted").inc();
                self.metrics.gauge("queue_depth").set(depth as i64);
                Response::Ok(vec![field_u64("id", id), field_u64("depth", depth as u64)])
            }
            Err(shed) => {
                self.metrics.counter("shed").inc();
                Response::err(ErrorKind::Overloaded, shed.to_string())
            }
        }
    }

    /// Record a finished task into the latency/cost histograms.
    fn observe_completion(&self, rec: &TaskRecord, params: CostParams) {
        self.metrics.counter("completed").inc();
        if let Some(turnaround) = rec.turnaround() {
            self.metrics.histogram("task_latency_s").record(turnaround);
            let cost = params.re * rec.energy_joules + params.rt * turnaround;
            self.metrics.histogram("task_cost").record(cost);
        }
    }

    /// Mirror engine frequency decisions since the last call onto the
    /// actuator (the sysfs protocol a real deployment would drive).
    fn actuate_new_decisions(inner: &mut Inner, metrics: &Registry) {
        let decisions: Vec<_> = inner.sim.event_log().entries[inner.log_cursor..]
            .iter()
            .filter_map(|entry| match entry.event {
                LogEvent::Dispatch { core, rate, .. }
                | LogEvent::RateChange { core, to: rate, .. } => Some((core, rate)),
                _ => None,
            })
            .collect();
        inner.log_cursor = inner.sim.event_log().entries.len();
        for (core, rate) in decisions {
            if inner.actuator.apply(core, rate).is_ok() {
                metrics.counter("actuations").inc();
            } else {
                metrics.counter("actuation_errors").inc();
            }
        }
    }

    /// One paced step: pull admitted work into the engine, advance the
    /// sim clock to the wall-mapped target, stream completions into the
    /// histograms, actuate frequency decisions.
    pub fn tick(&self) {
        let params = self.cfg.params;
        let mut inner = self.lock();
        let target = self.target_sim_time(&inner);
        for task in self.queue.drain() {
            inner.sim.push_task(&task);
        }
        self.metrics.gauge("queue_depth").set(0);
        let inner = &mut *inner;
        inner.sim.step_until(&mut inner.policy, target);
        for rec in inner.sim.take_completions() {
            self.observe_completion(&rec, params);
        }
        Self::actuate_new_decisions(inner, &self.metrics);
        self.metrics
            .gauge("pending_tasks")
            .set(inner.sim.pending_tasks() as i64);
    }

    /// Run everything buffered (and, in paced mode, everything still in
    /// flight) to completion and report. Resets the engine for the next
    /// round.
    pub fn drain_run(&self) -> Response {
        let params = self.cfg.params;
        let mut inner = self.lock();
        self.metrics.counter("drains").inc();
        for task in self.queue.drain() {
            inner.sim.push_task(&task);
        }
        self.metrics.gauge("queue_depth").set(0);
        let report = {
            let inner = &mut *inner;
            inner.sim.run(&mut inner.policy)
        };
        // The engine is finalized; stand up a fresh round.
        let (sim, policy) = fresh_engine(self.cfg.cores, params);
        inner.sim = sim;
        inner.policy = policy;
        inner.log_cursor = 0;
        inner.used_ids.clear();
        inner.next_auto_id = 0;
        drop(inner);
        self.summarize_round(&report, params)
    }

    /// Metrics + response assembly for a finished round.
    fn summarize_round(&self, report: &SimReport, params: CostParams) -> Response {
        let mut fresh = 0u64;
        for rec in report.tasks.values() {
            if rec.completion.is_some() {
                self.observe_completion(rec, params);
                fresh += 1;
            }
        }
        // Mirror the round's frequency decisions onto a fresh actuator.
        {
            let mut actuator = fresh_actuator(self.cfg.cores);
            for entry in &report.event_log.entries {
                if let LogEvent::Dispatch { core, rate, .. }
                | LogEvent::RateChange { core, to: rate, .. } = entry.event
                {
                    if actuator.apply(core, rate).is_ok() {
                        self.metrics.counter("actuations").inc();
                    } else {
                        self.metrics.counter("actuation_errors").inc();
                    }
                }
            }
        }
        self.metrics.gauge("pending_tasks").set(0);
        Response::Ok(vec![
            field_u64("completed", fresh),
            field_f64("total_cost", report.cost(params).total()),
            field_f64("active_energy_joules", report.active_energy_joules),
            field_f64("total_turnaround_s", report.total_turnaround()),
            field_f64("makespan_s", report.makespan),
        ])
    }

    /// Handle a stats request: registry snapshot plus live depths.
    pub fn stats(&self) -> Response {
        let inner = self.lock();
        let pending = inner.sim.pending_tasks() as u64;
        let now = inner.sim.now();
        drop(inner);
        Response::Ok(vec![
            ("metrics".to_string(), self.metrics.snapshot()),
            field_u64("queue_depth", self.queue.depth() as u64),
            field_u64("pending_tasks", pending),
            field_f64("sim_now_s", now),
        ])
    }

    /// Begin graceful shutdown: refuse new submissions, then drain the
    /// backlog so nothing admitted is lost.
    pub fn begin_shutdown(&self) {
        self.lock().shutting_down = true;
        let has_work = self.queue.depth() > 0 || self.lock().sim.pending_tasks() > 0;
        if has_work {
            let _ = self.drain_run();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::value_u64;
    use dvfs_sim::SimConfig;

    fn scheduler(capacity: usize) -> Scheduler {
        Scheduler::new(
            SchedulerConfig {
                cores: 2,
                queue_capacity: capacity,
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        )
    }

    #[test]
    fn replay_drain_matches_library_run() {
        let s = scheduler(64);
        let trace: Vec<Task> = (0..12)
            .map(|i| {
                let class = if i % 3 == 0 {
                    TaskClass::Interactive
                } else {
                    TaskClass::NonInteractive
                };
                Task::online(i, (i + 1) * 40_000_000, i as f64 * 0.01, None, class).unwrap()
            })
            .collect();
        for t in &trace {
            let r = s.submit(Some(t.id.0), t.cycles, t.class, Some(t.arrival));
            assert!(r.is_ok(), "submit failed: {r:?}");
        }
        let served = s.drain_run();
        assert!(served.is_ok());

        // Reference: the same trace through the library, in process.
        let platform = service_platform(2);
        let params = CostParams::online_paper();
        let mut policy = LeastMarginalCost::new(&platform, params);
        let mut sim = Simulator::new(SimConfig::new(platform));
        sim.add_tasks(&trace);
        let want = sim.run(&mut policy);

        let got_cost = crate::protocol::value_f64(served.field("total_cost").unwrap()).unwrap();
        assert!(
            (got_cost - want.cost(params).total()).abs() < 1e-12,
            "served cost {got_cost} != library cost {}",
            want.cost(params).total()
        );
        let got_makespan = crate::protocol::value_f64(served.field("makespan_s").unwrap()).unwrap();
        assert!((got_makespan - want.makespan).abs() < 1e-12);
        assert_eq!(value_u64(served.field("completed").unwrap()), Some(12));
    }

    #[test]
    fn duplicate_ids_rejected_within_a_round_and_allowed_across() {
        let s = scheduler(8);
        assert!(s
            .submit(Some(1), 1_000, TaskClass::Interactive, None)
            .is_ok());
        let dup = s.submit(Some(1), 1_000, TaskClass::Interactive, None);
        assert!(!dup.is_ok());
        assert!(s.drain_run().is_ok());
        // New round, id space reset.
        assert!(s
            .submit(Some(1), 1_000, TaskClass::Interactive, None)
            .is_ok());
    }

    #[test]
    fn overflow_sheds_with_overloaded_kind() {
        let s = scheduler(2);
        // capacity 2, reserve 1 → one non-interactive slot.
        assert!(s
            .submit(None, 1_000, TaskClass::NonInteractive, None)
            .is_ok());
        let shed = s.submit(None, 1_000, TaskClass::NonInteractive, None);
        match shed {
            Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::Overloaded),
            Response::Ok(_) => panic!("expected shed"),
        }
        assert_eq!(s.metrics().counter("shed").get(), 1);
        // The interactive reserve still admits.
        assert!(s.submit(None, 1_000, TaskClass::Interactive, None).is_ok());
    }

    #[test]
    fn shutdown_refuses_new_work_and_drains_backlog() {
        let s = scheduler(8);
        assert!(s
            .submit(Some(5), 2_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        s.begin_shutdown();
        assert!(s.is_shutting_down());
        assert_eq!(s.metrics().counter("completed").get(), 1, "backlog drained");
        let r = s.submit(Some(6), 1_000, TaskClass::Interactive, None);
        match r {
            Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::ShuttingDown),
            Response::Ok(_) => panic!("submit must fail during shutdown"),
        }
    }

    #[test]
    fn paced_ticks_complete_tasks_and_actuate() {
        let s = Scheduler::new(
            SchedulerConfig {
                cores: 1,
                queue_capacity: 16,
                // Very fast pacing so the test finishes instantly: one
                // wall millisecond ≈ many sim seconds.
                mode: Mode::Paced { speed: 10_000.0 },
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        );
        s.start_clock();
        assert!(s
            .submit(None, 1_600_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        // Tick until the task completes (bounded wait).
        let mut done = false;
        for _ in 0..200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            s.tick();
            if s.metrics().counter("completed").get() == 1 {
                done = true;
                break;
            }
        }
        assert!(done, "paced task never completed");
        assert!(s.metrics().counter("actuations").get() >= 1);
        assert_eq!(s.metrics().histogram("task_latency_s").count(), 1);
    }
}
