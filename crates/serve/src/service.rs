//! The scheduler service: wire requests in, LMC scheduling decisions
//! out.
//!
//! Two operating modes:
//!
//! * **Replay** — submissions buffer in the admission queue with their
//!   explicit arrival times; a `drain` command runs the whole workload
//!   through the wall-clock executor at once. Because the buffered
//!   tasks reach the engine in submission order with untouched
//!   arrivals, a drained round is *bit-identical* to running
//!   [`LeastMarginalCost`] over the same trace on the simulator — the
//!   determinism contract the end-to-end tests pin.
//! * **Paced** — a ticker thread maps wall time onto the executor
//!   clock (`engine_seconds = wall_seconds * speed`) and steps it
//!   incrementally; submissions arrive at the current engine time and
//!   completions stream into the latency/cost histograms as they
//!   happen.
//!
//! Either way, the policy runs through the engine-agnostic
//! `dvfs_core::sched` interface against [`RealTimeExecutor`], which
//! applies every frequency decision to its `dvfs-sysfs` actuator the
//! moment the policy makes it.
//!
//! ## Locking
//!
//! The submission path never touches the engine: it reads an atomic
//! shutdown flag, reserves the task id under a small id-ledger mutex,
//! and hands the task to the admission queue (which has its own lock).
//! The engine mutex — executor plus policy state — is taken only by
//! `tick`, `drain`, `stats`, and shutdown, so a slow scheduling round
//! never blocks admission.

use crate::admission::{AdmissionPolicy, AdmissionQueue};
use crate::executor::{RealTimeExecutor, RoundReport};
use crate::metrics::Registry;
use crate::protocol::{field_f64, field_u64, ErrorKind, Response};
use dvfs_core::LeastMarginalCost;
use dvfs_model::{CoreSpec, CostParams, Platform, RateTable, Task, TaskClass, TaskRecord};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// How the service maps submissions onto engine time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Buffer submissions (explicit arrivals) and run on `drain`.
    Replay,
    /// Step the executor in real time, `speed` engine seconds per wall
    /// second.
    Paced {
        /// Engine-seconds advanced per wall-second (1.0 = real time).
        speed: f64,
    },
}

/// Scheduler construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Number of homogeneous i7-950 cores to schedule onto.
    pub cores: usize,
    /// Cost weights for reporting and the LMC policy.
    pub params: CostParams,
    /// Replay or paced operation.
    pub mode: Mode,
    /// Admission queue bound.
    pub queue_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            cores: 4,
            params: CostParams::online_paper(),
            mode: Mode::Replay,
            queue_capacity: 1024,
        }
    }
}

/// The platform a scheduler with `cores` cores runs on. Exposed so
/// out-of-process clients (tests, analysis) can reproduce server runs
/// exactly.
#[must_use]
pub fn service_platform(cores: usize) -> Platform {
    Platform::homogeneous(cores, CoreSpec::new(RateTable::i7_950_table2()))
        .expect("positive core count")
}

/// The executor/policy pair — the only state behind the engine lock.
struct Engine {
    exec: RealTimeExecutor,
    policy: LeastMarginalCost,
}

impl Engine {
    fn fresh(cores: usize, params: CostParams) -> Self {
        let platform = service_platform(cores);
        Engine {
            policy: LeastMarginalCost::new(&platform, params),
            exec: RealTimeExecutor::new(platform),
        }
    }
}

/// The task-id ledger for the current round.
struct IdLedger {
    used: HashSet<u64>,
    next_auto: u64,
}

/// The long-running scheduler: admission queue, wall-clock executor,
/// policy, and metrics — each behind its own narrow lock.
pub struct Scheduler {
    cfg: SchedulerConfig,
    queue: AdmissionQueue,
    metrics: Arc<Registry>,
    shutting_down: AtomicBool,
    ids: Mutex<IdLedger>,
    /// Wall-clock anchor for paced time mapping.
    anchor: Mutex<Option<Instant>>,
    engine: Mutex<Engine>,
}

impl Scheduler {
    /// Build a scheduler publishing into `metrics`.
    #[must_use]
    pub fn new(cfg: SchedulerConfig, metrics: Arc<Registry>) -> Self {
        Scheduler {
            queue: AdmissionQueue::new(AdmissionPolicy::with_capacity(cfg.queue_capacity)),
            metrics,
            shutting_down: AtomicBool::new(false),
            ids: Mutex::new(IdLedger {
                used: HashSet::new(),
                next_auto: 0,
            }),
            anchor: Mutex::new(None),
            engine: Mutex::new(Engine::fresh(cfg.cores, cfg.params)),
            cfg,
        }
    }

    fn lock_engine(&self) -> MutexGuard<'_, Engine> {
        self.engine.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_ids(&self) -> MutexGuard<'_, IdLedger> {
        self.ids.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// The metrics registry this scheduler publishes into.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// The admission queue (exposed for backpressure-aware callers).
    #[must_use]
    pub fn queue(&self) -> &AdmissionQueue {
        &self.queue
    }

    /// Whether shutdown has begun.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Start the paced clock (no-op in replay mode). Called once when
    /// the server begins serving.
    pub fn start_clock(&self) {
        let mut anchor = self.anchor.lock().unwrap_or_else(PoisonError::into_inner);
        if anchor.is_none() {
            *anchor = Some(Instant::now());
        }
    }

    /// Wall-mapped target engine time for paced mode (0 in replay).
    /// Reads only the anchor — never the engine lock.
    fn target_time(&self) -> f64 {
        let anchor = *self.anchor.lock().unwrap_or_else(PoisonError::into_inner);
        match (self.cfg.mode, anchor) {
            (Mode::Paced { speed }, Some(t0)) => t0.elapsed().as_secs_f64() * speed,
            _ => 0.0,
        }
    }

    /// Handle a submit request end to end: id assignment, validation,
    /// admission, metrics. Touches the id ledger and the admission
    /// queue, never the engine.
    pub fn submit(
        &self,
        id: Option<u64>,
        cycles: u64,
        class: TaskClass,
        arrival: Option<f64>,
    ) -> Response {
        self.metrics.counter("submitted").inc();
        if self.is_shutting_down() {
            return Response::err(ErrorKind::ShuttingDown, "server is draining");
        }
        // Reserve the id so concurrent submitters can't race to the
        // same one; released again if validation or admission fails.
        let id = {
            let mut ids = self.lock_ids();
            let id = match id {
                Some(id) => {
                    if ids.used.contains(&id) {
                        self.metrics.counter("rejected_duplicate_id").inc();
                        return Response::err(
                            ErrorKind::BadRequest,
                            format!("task id {id} already used this round"),
                        );
                    }
                    id
                }
                None => {
                    while ids.used.contains(&ids.next_auto) {
                        ids.next_auto += 1;
                    }
                    ids.next_auto
                }
            };
            ids.used.insert(id);
            id
        };
        let arrival = match self.cfg.mode {
            Mode::Replay => arrival.unwrap_or(0.0),
            // Paced submissions arrive "now" on the engine clock; an
            // explicit arrival in the future is honored, the past is
            // clamped forward by the executor.
            Mode::Paced { .. } => {
                let now = self.target_time();
                arrival.unwrap_or(now).max(now)
            }
        };
        let task = match Task::online(id, cycles, arrival, None, class) {
            Ok(t) => t,
            Err(e) => {
                self.lock_ids().used.remove(&id);
                self.metrics.counter("rejected_invalid").inc();
                return Response::err(ErrorKind::BadRequest, e.to_string());
            }
        };
        match self.queue.try_submit(task) {
            Ok(depth) => {
                self.metrics.counter("admitted").inc();
                self.metrics.gauge("queue_depth").set(depth as i64);
                Response::Ok(vec![field_u64("id", id), field_u64("depth", depth as u64)])
            }
            Err(shed) => {
                self.lock_ids().used.remove(&id);
                self.metrics.counter("shed").inc();
                Response::err(ErrorKind::Overloaded, shed.to_string())
            }
        }
    }

    /// Record a finished task into the latency/cost histograms.
    fn observe_completion(&self, rec: &TaskRecord, params: CostParams) {
        self.metrics.counter("completed").inc();
        if let Some(turnaround) = rec.turnaround() {
            self.metrics.histogram("task_latency_s").record(turnaround);
            let cost = params.re * rec.energy_joules + params.rt * turnaround;
            self.metrics.histogram("task_cost").record(cost);
        }
    }

    /// Publish the executor's actuation counters since the last drain.
    fn publish_actuations(&self, engine: &mut Engine) {
        let (applied, errored) = engine.exec.take_actuations();
        self.metrics.counter("actuations").add(applied);
        self.metrics.counter("actuation_errors").add(errored);
    }

    /// One paced step: pull admitted work into the engine, advance the
    /// executor clock to the wall-mapped target, stream completions
    /// into the histograms.
    pub fn tick(&self) {
        let params = self.cfg.params;
        let target = self.target_time();
        let mut engine = self.lock_engine();
        for task in self.queue.drain() {
            engine.exec.push_task(&task);
        }
        self.metrics.gauge("queue_depth").set(0);
        let engine = &mut *engine;
        engine.exec.step_until(&mut engine.policy, target);
        for rec in engine.exec.take_completions() {
            self.observe_completion(&rec, params);
        }
        self.publish_actuations(engine);
        self.metrics
            .gauge("pending_tasks")
            .set(engine.exec.pending_tasks() as i64);
    }

    /// Run everything buffered (and, in paced mode, everything still in
    /// flight) to completion; return the round's report and reset the
    /// engine for the next round. The programmatic form of the wire
    /// `drain` — end-to-end tests use it to compare served rounds
    /// against library runs task by task.
    pub fn drain_round(&self) -> RoundReport {
        let params = self.cfg.params;
        let mut engine = self.lock_engine();
        self.metrics.counter("drains").inc();
        for task in self.queue.drain() {
            engine.exec.push_task(&task);
        }
        self.metrics.gauge("queue_depth").set(0);
        {
            let engine = &mut *engine;
            engine.exec.run_to_completion(&mut engine.policy);
        }
        // Completions not yet streamed by a paced tick land in the
        // histograms now, exactly once.
        for rec in engine.exec.take_completions() {
            self.observe_completion(&rec, params);
        }
        self.publish_actuations(&mut engine);
        let report = engine.exec.round_report();
        // Stand up a fresh round.
        *engine = Engine::fresh(self.cfg.cores, params);
        drop(engine);
        {
            let mut ids = self.lock_ids();
            ids.used.clear();
            ids.next_auto = 0;
        }
        self.metrics.gauge("pending_tasks").set(0);
        report
    }

    /// Wire handler for `drain`: run the round and encode the report.
    pub fn drain_run(&self) -> Response {
        let params = self.cfg.params;
        let report = self.drain_round();
        Response::Ok(vec![
            field_u64("completed", report.records.len() as u64),
            field_f64("total_cost", report.total_cost(params)),
            field_f64("active_energy_joules", report.active_energy_joules),
            field_f64("total_turnaround_s", report.total_turnaround_s),
            field_f64("makespan_s", report.makespan_s),
        ])
    }

    /// Handle a stats request: registry snapshot plus live depths.
    pub fn stats(&self) -> Response {
        let engine = self.lock_engine();
        let pending = engine.exec.pending_tasks() as u64;
        let now = engine.exec.exec_now();
        drop(engine);
        Response::Ok(vec![
            ("metrics".to_string(), self.metrics.snapshot()),
            field_u64("queue_depth", self.queue.depth() as u64),
            field_u64("pending_tasks", pending),
            field_f64("sim_now_s", now),
        ])
    }

    /// Begin graceful shutdown: refuse new submissions, then drain the
    /// backlog so nothing admitted is lost.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let has_work = self.queue.depth() > 0 || self.lock_engine().exec.pending_tasks() > 0;
        if has_work {
            let _ = self.drain_run();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::value_u64;
    use dvfs_sim::{SimConfig, Simulator};

    fn scheduler(capacity: usize) -> Scheduler {
        Scheduler::new(
            SchedulerConfig {
                cores: 2,
                queue_capacity: capacity,
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        )
    }

    #[test]
    fn replay_drain_matches_library_run() {
        let s = scheduler(64);
        let trace: Vec<Task> = (0..12)
            .map(|i| {
                let class = if i % 3 == 0 {
                    TaskClass::Interactive
                } else {
                    TaskClass::NonInteractive
                };
                Task::online(i, (i + 1) * 40_000_000, i as f64 * 0.01, None, class).unwrap()
            })
            .collect();
        for t in &trace {
            let r = s.submit(Some(t.id.0), t.cycles, t.class, Some(t.arrival));
            assert!(r.is_ok(), "submit failed: {r:?}");
        }
        let served = s.drain_run();
        assert!(served.is_ok());

        // Reference: the same trace through the simulator, in process.
        let platform = service_platform(2);
        let params = CostParams::online_paper();
        let mut policy = LeastMarginalCost::new(&platform, params);
        let mut sim = Simulator::new(SimConfig::new(platform));
        sim.add_tasks(&trace);
        let want = sim.run(&mut policy);

        let got_cost = crate::protocol::value_f64(served.field("total_cost").unwrap()).unwrap();
        assert!(
            (got_cost - want.cost(params).total()).abs() < 1e-12,
            "served cost {got_cost} != library cost {}",
            want.cost(params).total()
        );
        let got_makespan = crate::protocol::value_f64(served.field("makespan_s").unwrap()).unwrap();
        assert!((got_makespan - want.makespan).abs() < 1e-12);
        assert_eq!(value_u64(served.field("completed").unwrap()), Some(12));
    }

    #[test]
    fn duplicate_ids_rejected_within_a_round_and_allowed_across() {
        let s = scheduler(8);
        assert!(s
            .submit(Some(1), 1_000, TaskClass::Interactive, None)
            .is_ok());
        let dup = s.submit(Some(1), 1_000, TaskClass::Interactive, None);
        assert!(!dup.is_ok());
        assert!(s.drain_run().is_ok());
        // New round, id space reset.
        assert!(s
            .submit(Some(1), 1_000, TaskClass::Interactive, None)
            .is_ok());
    }

    #[test]
    fn overflow_sheds_with_overloaded_kind_and_releases_the_id() {
        let s = scheduler(2);
        // capacity 2, reserve 1 → one non-interactive slot.
        let first = s.submit(None, 1_000, TaskClass::NonInteractive, None);
        assert!(first.is_ok());
        assert_eq!(value_u64(first.field("id").unwrap()), Some(0));
        let shed = s.submit(None, 1_000, TaskClass::NonInteractive, None);
        match shed {
            Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::Overloaded),
            Response::Ok(_) => panic!("expected shed"),
        }
        assert_eq!(s.metrics().counter("shed").get(), 1);
        // The interactive reserve still admits, and the shed auto-id
        // was released for reuse.
        let third = s.submit(None, 1_000, TaskClass::Interactive, None);
        assert!(third.is_ok());
        assert_eq!(value_u64(third.field("id").unwrap()), Some(1));
    }

    #[test]
    fn shutdown_refuses_new_work_and_drains_backlog() {
        let s = scheduler(8);
        assert!(s
            .submit(Some(5), 2_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        s.begin_shutdown();
        assert!(s.is_shutting_down());
        assert_eq!(s.metrics().counter("completed").get(), 1, "backlog drained");
        let r = s.submit(Some(6), 1_000, TaskClass::Interactive, None);
        match r {
            Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::ShuttingDown),
            Response::Ok(_) => panic!("submit must fail during shutdown"),
        }
    }

    #[test]
    fn paced_ticks_complete_tasks_and_actuate() {
        let s = Scheduler::new(
            SchedulerConfig {
                cores: 1,
                queue_capacity: 16,
                // Very fast pacing so the test finishes instantly: one
                // wall millisecond ≈ many engine seconds.
                mode: Mode::Paced { speed: 10_000.0 },
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        );
        s.start_clock();
        assert!(s
            .submit(None, 1_600_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        // Tick until the task completes (bounded wait).
        let mut done = false;
        for _ in 0..200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            s.tick();
            if s.metrics().counter("completed").get() == 1 {
                done = true;
                break;
            }
        }
        assert!(done, "paced task never completed");
        assert!(s.metrics().counter("actuations").get() >= 1);
        assert_eq!(s.metrics().histogram("task_latency_s").count(), 1);
    }

    #[test]
    fn paced_drain_counts_streamed_completions_once() {
        let s = Scheduler::new(
            SchedulerConfig {
                cores: 1,
                queue_capacity: 16,
                mode: Mode::Paced { speed: 10_000.0 },
                ..SchedulerConfig::default()
            },
            Arc::new(Registry::new()),
        );
        s.start_clock();
        assert!(s
            .submit(None, 1_600_000_000, TaskClass::NonInteractive, None)
            .is_ok());
        for _ in 0..200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            s.tick();
            if s.metrics().counter("completed").get() == 1 {
                break;
            }
        }
        assert_eq!(s.metrics().counter("completed").get(), 1);
        // The drain reports the round's single task but must not feed
        // its already-streamed completion into the histograms again.
        let report = s.drain_round();
        assert_eq!(report.records.len(), 1);
        assert_eq!(s.metrics().counter("completed").get(), 1);
        assert_eq!(s.metrics().histogram("task_latency_s").count(), 1);
    }
}
