//! The companion load generator.
//!
//! Three drive modes against a running server:
//!
//! * **Replay** — submit a recorded task trace (e.g. a Judgegirl trace
//!   from `dvfs-workloads`) with its explicit ids and arrivals, then
//!   `drain` and report the served totals. Round-trips deterministically
//!   against a replay-mode server.
//! * **Poisson** — open-loop: exponential inter-arrival gaps at a target
//!   rate for a fixed duration; senders do not wait for the previous
//!   completion, so overload shows up as shed responses rather than as
//!   a silently slowed offered load.
//! * **Closed** — `clients` connections, each submitting its next task
//!   only after the previous acknowledgment; throughput is bounded by
//!   round-trip latency, the classic closed-loop profile. The run ends
//!   with a `drain`, so the report carries the served totals and the
//!   per-shard completion counts from `shard_reports`.
//!
//! Every acknowledgment round-trip lands in a shared wire-latency
//! histogram — globally and per task class — and the run report
//! carries throughput and p50/p95/p99. After the run the generator
//! fetches the server's `health` document (best-effort: older servers
//! without the command are tolerated) so the summary can print the
//! client-observed percentiles next to the server-side stage
//! attribution and show where the round-trip time actually went.

use crate::metrics::Histogram;
use crate::protocol::{encode_command, encode_submit, value_f64, value_u64, ErrorKind, Response};
use crate::server::Endpoint;
use dvfs_model::{Task, TaskClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// What to offer the server.
#[derive(Debug, Clone)]
pub enum LoadMode {
    /// Replay a recorded trace verbatim, then drain.
    Replay {
        /// The tasks to submit, in order.
        trace: Vec<Task>,
    },
    /// Open-loop Poisson arrivals.
    Poisson {
        /// Mean arrival rate in tasks per second.
        rate_hz: f64,
        /// How long to offer load.
        duration: Duration,
        /// RNG seed (arrivals, sizes, classes).
        seed: u64,
        /// Probability a task is interactive.
        interactive_fraction: f64,
        /// Mean task size in cycles (exponentially distributed).
        mean_cycles: f64,
    },
    /// Closed-loop clients.
    Closed {
        /// Concurrent connections.
        clients: usize,
        /// Submissions per connection.
        requests_per_client: usize,
        /// RNG seed.
        seed: u64,
        /// Probability a task is interactive.
        interactive_fraction: f64,
        /// Mean task size in cycles.
        mean_cycles: f64,
        /// Fraction of submissions pinned to shard 0 via explicit ids
        /// (`id % shards == 0`), skewing load onto one shard — the
        /// scenario the cross-shard rebalancer exists for. Zero keeps
        /// every submission auto-routed.
        skew: f64,
    },
    /// Hold a herd of mostly-idle connections while one active client
    /// submits — the scenario the epoll front-end exists for, and the
    /// driver of the 10k-connection bench. Reports submit-latency
    /// quantiles under the idle herd plus a per-connection RSS
    /// estimate.
    Idle {
        /// Idle connections to open and hold for the whole run.
        connections: usize,
        /// Submissions from the single active connection.
        active_requests: usize,
        /// RNG seed (sizes, classes).
        seed: u64,
        /// Probability a task is interactive.
        interactive_fraction: f64,
        /// Mean task size in cycles.
        mean_cycles: f64,
    },
}

/// Served-workload totals returned by a `drain`.
#[derive(Debug, Clone, Default)]
pub struct DrainSummary {
    /// Tasks completed in the drained round (all shards).
    pub completed: u64,
    /// Monetary cost of the round (`Re·E + Rt·T`).
    pub total_cost: f64,
    /// Active energy in joules.
    pub active_energy_joules: f64,
    /// Sum of turnarounds in seconds.
    pub total_turnaround_s: f64,
    /// Completion time of the last task.
    pub makespan_s: f64,
    /// Engine shards on the server side.
    pub shards: u64,
    /// Completed count per shard, in shard order (empty when the
    /// server predates the `shard_reports` field).
    pub per_shard_completed: Vec<u64>,
}

/// What [`LoadMode::Idle`] observed about the idle herd.
#[derive(Debug, Clone, Default)]
pub struct IdleSummary {
    /// Idle connections actually held open.
    pub connections: usize,
    /// Process `VmRSS` (kB) before opening the herd.
    pub rss_before_kb: u64,
    /// Process `VmRSS` (kB) with the whole herd open.
    pub rss_after_kb: u64,
    /// RSS growth per held connection, in bytes. An **estimate** of
    /// process-side cost only (client + server when they share the
    /// process, as in the bench smoke): kernel socket buffers are not
    /// resident memory.
    pub rss_per_conn_bytes: u64,
}

/// What a load-generation run observed.
#[derive(Debug)]
pub struct LoadReport {
    /// Submissions sent.
    pub sent: u64,
    /// Submissions acknowledged as admitted.
    pub admitted: u64,
    /// Submissions shed by admission control.
    pub shed: u64,
    /// Other error responses.
    pub errors: u64,
    /// Shed submissions split by task class, indexed by [`class_idx`]
    /// (interactive, non-interactive, batch).
    pub shed_by_class: [u64; 3],
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
    /// Acknowledged submissions per wall second.
    pub throughput_rps: f64,
    /// Wire round-trip latency histogram (seconds).
    pub rtt: Arc<Histogram>,
    /// Per-class round-trip histograms, indexed by [`class_idx`]
    /// (interactive, non-interactive, batch).
    pub rtt_by_class: [Arc<Histogram>; 3],
    /// Server-side stage attribution from the post-run `health` fetch,
    /// in pipeline order. Empty when the server does not speak
    /// `health` or recorded no stage samples.
    pub stages: Vec<StageQuantiles>,
    /// Drain totals (replay mode only).
    pub drain: Option<DrainSummary>,
    /// Idle-herd observations ([`LoadMode::Idle`] only).
    pub idle: Option<IdleSummary>,
}

/// One server-side stage's latency quantiles, parsed out of the
/// `health` document's `stages` object.
#[derive(Debug, Clone, PartialEq)]
pub struct StageQuantiles {
    /// Histogram series name (e.g. `stage_queue_s`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Median, in seconds.
    pub p50_s: f64,
    /// 95th percentile, in seconds.
    pub p95_s: f64,
    /// 99th percentile, in seconds.
    pub p99_s: f64,
}

/// Index of a task class in [`LoadReport::shed_by_class`].
#[must_use]
pub fn class_idx(class: TaskClass) -> usize {
    match class {
        TaskClass::Interactive => 0,
        TaskClass::NonInteractive => 1,
        TaskClass::Batch => 2,
    }
}

impl LoadReport {
    /// Fraction of submissions shed by admission control (0 when
    /// nothing was sent).
    #[must_use]
    pub fn shed_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.shed as f64 / self.sent as f64
        }
    }

    /// Render the human-readable summary the CLI prints.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sent {} | admitted {} | shed {} | errors {}",
            self.sent, self.admitted, self.shed, self.errors
        );
        if self.shed > 0 {
            let [i, n, b] = self.shed_by_class;
            let _ = writeln!(
                out,
                "shed by class: interactive {i} | non_interactive {n} | batch {b}"
            );
        }
        let _ = writeln!(
            out,
            "wall {:.3} s | throughput {:.1} req/s",
            self.wall_seconds, self.throughput_rps
        );
        let q = |p: f64| self.rtt.quantile(p).unwrap_or(0.0) * 1e3;
        let _ = writeln!(
            out,
            "rtt p50 {:.3} ms | p95 {:.3} ms | p99 {:.3} ms",
            q(0.50),
            q(0.95),
            q(0.99)
        );
        let class_names = ["interactive", "non_interactive", "batch"];
        for (name, hist) in class_names.iter().zip(&self.rtt_by_class) {
            if hist.count() == 0 {
                continue;
            }
            let q = |p: f64| hist.quantile(p).unwrap_or(0.0) * 1e3;
            let _ = writeln!(
                out,
                "rtt[{name}] p50 {:.3} ms | p95 {:.3} ms | p99 {:.3} ms ({} samples)",
                q(0.50),
                q(0.95),
                q(0.99),
                hist.count()
            );
        }
        for s in &self.stages {
            // `stage_queue_s` renders as `server queue`; the e2e series
            // keeps its full name so it is not mistaken for a stage.
            let label = s
                .name
                .strip_prefix("stage_")
                .and_then(|n| n.strip_suffix("_s"))
                .unwrap_or(&s.name);
            let _ = writeln!(
                out,
                "server {label} p50 {:.3} ms | p95 {:.3} ms | p99 {:.3} ms ({} samples)",
                s.p50_s * 1e3,
                s.p95_s * 1e3,
                s.p99_s * 1e3,
                s.count
            );
        }
        if let Some(i) = &self.idle {
            let _ = writeln!(
                out,
                "idle herd: {} connections | rss {} kB -> {} kB | ~{} B/conn",
                i.connections, i.rss_before_kb, i.rss_after_kb, i.rss_per_conn_bytes
            );
        }
        if let Some(d) = &self.drain {
            let _ = writeln!(
                out,
                "served: {} tasks | total cost {:.6} | energy {:.3} J | turnaround {:.3} s | makespan {:.3} s",
                d.completed, d.total_cost, d.active_energy_joules, d.total_turnaround_s, d.makespan_s
            );
            if d.shards > 1 {
                let per_shard: Vec<String> = d
                    .per_shard_completed
                    .iter()
                    .enumerate()
                    .map(|(k, n)| format!("shard{k}:{n}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "shards: {} | completed per shard: {}",
                    d.shards,
                    per_shard.join(" ")
                );
            }
        }
        out
    }
}

/// One NDJSON connection to the server.
pub struct Connection {
    writer: BufWriter<Box<dyn Write + Send>>,
    reader: BufReader<Box<dyn std::io::Read + Send>>,
}

impl Connection {
    /// Connect to `endpoint`.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn open(endpoint: &Endpoint) -> std::io::Result<Self> {
        let (reader, writer): (Box<dyn std::io::Read + Send>, Box<dyn Write + Send>) =
            match endpoint {
                Endpoint::Unix(path) => {
                    let s = UnixStream::connect(path)?;
                    (Box::new(s.try_clone()?), Box::new(s))
                }
                Endpoint::Tcp(addr) => {
                    let s = TcpStream::connect(addr)?;
                    (Box::new(s.try_clone()?), Box::new(s))
                }
            };
        Ok(Connection {
            writer: BufWriter::new(writer),
            reader: BufReader::new(reader),
        })
    }

    /// Send one request line and read the response line.
    ///
    /// # Errors
    /// I/O failures, or a response that fails to decode.
    pub fn round_trip(&mut self, line: &str) -> std::io::Result<Response> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::decode(reply.trim()).map_err(std::io::Error::other)
    }
}

/// A held-open socket with no buffers attached — the idle herd member.
/// Client-side `BufReader`/`BufWriter` pairs would cost ~16 kB each,
/// which at 10k connections would swamp the RSS measurement.
enum IdleStream {
    Unix { _held: UnixStream },
    Tcp { _held: TcpStream },
}

fn open_idle(endpoint: &Endpoint) -> std::io::Result<IdleStream> {
    Ok(match endpoint {
        Endpoint::Unix(path) => IdleStream::Unix {
            _held: UnixStream::connect(path)?,
        },
        Endpoint::Tcp(addr) => IdleStream::Tcp {
            _held: TcpStream::connect(addr)?,
        },
    })
}

/// This process's resident set in kB, from `/proc/self/status`.
fn rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

#[derive(Default)]
struct Tally {
    sent: u64,
    admitted: u64,
    shed: u64,
    shed_by_class: [u64; 3],
    errors: u64,
}

impl Tally {
    fn observe(&mut self, resp: &Response, class: TaskClass) {
        self.sent += 1;
        match resp {
            Response::Ok(_) => self.admitted += 1,
            Response::Err {
                kind: ErrorKind::Overloaded,
                ..
            } => {
                self.shed += 1;
                self.shed_by_class[class_idx(class)] += 1;
            }
            Response::Err { .. } => self.errors += 1,
        }
    }
}

/// The shared latency sinks every submission reports into: the global
/// round-trip histogram plus one per task class.
#[derive(Clone)]
struct RttSinks {
    all: Arc<Histogram>,
    by_class: [Arc<Histogram>; 3],
}

impl RttSinks {
    fn new() -> Self {
        RttSinks {
            all: Arc::new(Histogram::default()),
            by_class: std::array::from_fn(|_| Arc::new(Histogram::default())),
        }
    }

    fn record(&self, class: TaskClass, seconds: f64) {
        self.all.record(seconds);
        self.by_class[class_idx(class)].record(seconds);
    }
}

fn submit_and_tally(
    conn: &mut Connection,
    line: &str,
    class: TaskClass,
    rtt: &RttSinks,
    tally: &mut Tally,
) -> std::io::Result<()> {
    let t0 = crate::clock::wall_now();
    let resp = conn.round_trip(line)?;
    rtt.record(class, t0.elapsed().as_secs_f64());
    tally.observe(&resp, class);
    Ok(())
}

/// Exponential draw with the given mean.
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * mean
}

fn random_task_parts(
    rng: &mut StdRng,
    interactive_fraction: f64,
    mean_cycles: f64,
) -> (u64, TaskClass) {
    let class = if rng.gen_bool(interactive_fraction.clamp(0.0, 1.0)) {
        TaskClass::Interactive
    } else {
        TaskClass::NonInteractive
    };
    let cycles = exp_draw(rng, mean_cycles).max(1.0) as u64;
    (cycles, class)
}

fn random_task_line(
    rng: &mut StdRng,
    interactive_fraction: f64,
    mean_cycles: f64,
) -> (String, TaskClass) {
    let (cycles, class) = random_task_parts(rng, interactive_fraction, mean_cycles);
    (encode_submit(None, cycles, class, None), class)
}

/// Explicit ids for skewed submissions start far above the server's
/// auto-id range (which counts up from zero), so a pinned id never
/// collides with an auto assignment within a round.
const SKEW_ID_BASE: u64 = 250_000_000;

/// The `n`-th skewed submission's explicit id: always `≡ 0 mod shards`,
/// so the server's hash router pins it to shard 0.
fn skew_id(n: u64, shards: u64) -> u64 {
    (SKEW_ID_BASE + n) * shards
}

/// Parse the `stages` object of a `health` response into quantile
/// rows, keeping pipeline order and dropping stages with no samples.
/// The end-to-end series rides along last so the telescope's target is
/// visible next to its parts.
fn parse_health_stages(resp: &Response) -> Vec<StageQuantiles> {
    let Some(Value::Object(pairs)) = resp.field("stages") else {
        return Vec::new();
    };
    let mut order: Vec<&str> = crate::stage::TELESCOPE_STAGES.to_vec();
    order.push(crate::stage::REQUEST_E2E);
    let mut out = Vec::new();
    for name in order {
        let Some((_, v)) = pairs.iter().find(|(k, _)| k == name) else {
            continue;
        };
        let count = v.get("count").and_then(value_u64).unwrap_or(0);
        if count == 0 {
            continue;
        }
        let f = |key| v.get(key).and_then(value_f64).unwrap_or(0.0);
        out.push(StageQuantiles {
            name: name.to_string(),
            count,
            p50_s: f("p50"),
            p95_s: f("p95"),
            p99_s: f("p99"),
        });
    }
    out
}

/// Fetch the server's stage attribution, tolerating servers that do
/// not speak `health` (an error response or I/O failure yields the
/// empty vec, never a failed run).
fn fetch_health_stages(endpoint: &Endpoint) -> Vec<StageQuantiles> {
    let Ok(mut conn) = Connection::open(endpoint) else {
        return Vec::new();
    };
    match conn.round_trip(&encode_command("health")) {
        Ok(resp @ Response::Ok(_)) => parse_health_stages(&resp),
        _ => Vec::new(),
    }
}

fn parse_drain(resp: &Response) -> Option<DrainSummary> {
    let f = |name| resp.field(name).and_then(value_f64);
    let per_shard_completed = match resp.field("shard_reports") {
        Some(Value::Array(reports)) => reports
            .iter()
            .filter_map(|r| r.get("completed").and_then(value_u64))
            .collect(),
        _ => Vec::new(),
    };
    Some(DrainSummary {
        completed: resp.field("completed").and_then(value_u64)?,
        total_cost: f("total_cost")?,
        active_energy_joules: f("active_energy_joules")?,
        total_turnaround_s: f("total_turnaround_s")?,
        makespan_s: f("makespan_s")?,
        shards: resp.field("shards").and_then(value_u64).unwrap_or(1),
        per_shard_completed,
    })
}

/// Run a load-generation session against `endpoint`.
///
/// # Errors
/// Propagates connection and protocol failures; individual shed or
/// error responses are tallied, not fatal.
pub fn run(endpoint: &Endpoint, mode: &LoadMode) -> std::io::Result<LoadReport> {
    let rtt = RttSinks::new();
    let started = crate::clock::wall_now();
    let mut tally = Tally::default();
    let mut drain = None;
    let mut idle = None;

    match mode {
        LoadMode::Replay { trace } => {
            let mut conn = Connection::open(endpoint)?;
            for t in trace {
                let line = encode_submit(Some(t.id.0), t.cycles, t.class, Some(t.arrival));
                submit_and_tally(&mut conn, &line, t.class, &rtt, &mut tally)?;
            }
            let resp = conn.round_trip(&encode_command("drain"))?;
            if let Response::Err { ref message, .. } = resp {
                return Err(std::io::Error::other(format!("drain failed: {message}")));
            }
            drain = parse_drain(&resp);
        }
        LoadMode::Poisson {
            rate_hz,
            duration,
            seed,
            interactive_fraction,
            mean_cycles,
        } => {
            let mut conn = Connection::open(endpoint)?;
            let mut rng = StdRng::seed_from_u64(*seed);
            let mean_gap = 1.0 / rate_hz.max(1e-9);
            let mut next_send = 0.0f64;
            while started.elapsed() < *duration {
                let now = started.elapsed().as_secs_f64();
                if now < next_send {
                    std::thread::sleep(Duration::from_secs_f64((next_send - now).min(0.05)));
                    continue;
                }
                next_send += exp_draw(&mut rng, mean_gap);
                let (line, class) = random_task_line(&mut rng, *interactive_fraction, *mean_cycles);
                submit_and_tally(&mut conn, &line, class, &rtt, &mut tally)?;
            }
        }
        LoadMode::Closed {
            clients,
            requests_per_client,
            seed,
            interactive_fraction,
            mean_cycles,
            skew,
        } => {
            // Skewed submissions pin explicit ids onto shard 0, so the
            // shard count must be known up front; one stats round-trip
            // discovers it (skipped entirely for unskewed runs).
            let skew = skew.clamp(0.0, 1.0);
            let shards = if skew > 0.0 {
                let mut conn = Connection::open(endpoint)?;
                let resp = conn.round_trip(&encode_command("stats"))?;
                resp.field("shards").and_then(value_u64).unwrap_or(1).max(1)
            } else {
                1
            };
            let skew_seq = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let mut threads = Vec::new();
            for c in 0..*clients {
                let endpoint = endpoint.clone();
                let rtt = rtt.clone();
                let skew_seq = Arc::clone(&skew_seq);
                let (n, frac, mean, seed) = (
                    *requests_per_client,
                    *interactive_fraction,
                    *mean_cycles,
                    *seed,
                );
                threads.push(std::thread::spawn(move || -> std::io::Result<Tally> {
                    let mut conn = Connection::open(&endpoint)?;
                    let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37));
                    let mut tally = Tally::default();
                    for _ in 0..n {
                        let (cycles, class) = random_task_parts(&mut rng, frac, mean);
                        let line = if skew > 0.0 && rng.gen_bool(skew) {
                            // dvfs-lint: allow(atomics-discipline) advisory counter that only spreads hot-key ids; nothing reads it back
                            let seq = skew_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            encode_submit(Some(skew_id(seq, shards)), cycles, class, None)
                        } else {
                            encode_submit(None, cycles, class, None)
                        };
                        submit_and_tally(&mut conn, &line, class, &rtt, &mut tally)?;
                    }
                    Ok(tally)
                }));
            }
            for t in threads {
                let sub = t
                    .join()
                    .map_err(|_| std::io::Error::other("client thread panicked"))??;
                tally.sent += sub.sent;
                tally.admitted += sub.admitted;
                tally.shed += sub.shed;
                for (dst, src) in tally.shed_by_class.iter_mut().zip(sub.shed_by_class) {
                    *dst += src;
                }
                tally.errors += sub.errors;
            }
            // Drain once the clients are done: the round barrier folds
            // each shard worker's report into `shard_reports`, so the
            // summary can attribute completions per shard instead of
            // reporting submission totals only.
            let mut conn = Connection::open(endpoint)?;
            let resp = conn.round_trip(&encode_command("drain"))?;
            if let Response::Err { ref message, .. } = resp {
                return Err(std::io::Error::other(format!("drain failed: {message}")));
            }
            drain = parse_drain(&resp);
        }
        LoadMode::Idle {
            connections,
            active_requests,
            seed,
            interactive_fraction,
            mean_cycles,
        } => {
            let rss_before_kb = rss_kb().unwrap_or(0);
            let mut herd = Vec::with_capacity(*connections);
            for _ in 0..*connections {
                herd.push(open_idle(endpoint)?);
            }
            let rss_after_kb = rss_kb().unwrap_or(0);
            // The active set: one connection submitting while the herd
            // sits registered but silent.
            let mut conn = Connection::open(endpoint)?;
            let mut rng = StdRng::seed_from_u64(*seed);
            for _ in 0..*active_requests {
                let (line, class) = random_task_line(&mut rng, *interactive_fraction, *mean_cycles);
                submit_and_tally(&mut conn, &line, class, &rtt, &mut tally)?;
            }
            let growth_bytes = rss_after_kb.saturating_sub(rss_before_kb) * 1024;
            idle = Some(IdleSummary {
                connections: herd.len(),
                rss_before_kb,
                rss_after_kb,
                rss_per_conn_bytes: growth_bytes / (herd.len().max(1) as u64),
            });
            drop(herd); // held open through the whole active phase
        }
    }

    let wall_seconds = started.elapsed().as_secs_f64();
    // Post-run, so the fetch itself never lands in the rtt histograms
    // and the server-side stage counts cover the whole offered load.
    let stages = fetch_health_stages(endpoint);
    Ok(LoadReport {
        sent: tally.sent,
        admitted: tally.admitted,
        shed: tally.shed,
        errors: tally.errors,
        shed_by_class: tally.shed_by_class,
        wall_seconds,
        throughput_rps: tally.admitted as f64 / wall_seconds.max(1e-9),
        rtt: rtt.all,
        rtt_by_class: rtt.by_class,
        stages,
        drain,
        idle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_draws_have_roughly_the_right_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp_draw(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!((1.9..2.1).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn parse_drain_reads_per_shard_reports() {
        use crate::protocol::{field_f64, field_u64};
        let resp = Response::Ok(vec![
            field_u64("completed", 7),
            field_f64("total_cost", 1.5),
            field_f64("active_energy_joules", 2.0),
            field_f64("total_turnaround_s", 3.0),
            field_f64("makespan_s", 4.0),
            field_u64("shards", 2),
            (
                "shard_reports".to_string(),
                Value::Array(vec![
                    Value::Object(vec![field_u64("shard", 0), field_u64("completed", 4)]),
                    Value::Object(vec![field_u64("shard", 1), field_u64("completed", 3)]),
                ]),
            ),
        ]);
        let d = parse_drain(&resp).unwrap();
        assert_eq!(d.completed, 7);
        assert_eq!(d.shards, 2);
        assert_eq!(d.per_shard_completed, vec![4, 3]);
        // A pre-shard server response still parses, defaulting to one
        // shard and no per-shard breakdown.
        let legacy = Response::Ok(vec![
            field_u64("completed", 1),
            field_f64("total_cost", 0.1),
            field_f64("active_energy_joules", 0.2),
            field_f64("total_turnaround_s", 0.3),
            field_f64("makespan_s", 0.4),
        ]);
        let d = parse_drain(&legacy).unwrap();
        assert_eq!(d.shards, 1);
        assert!(d.per_shard_completed.is_empty());
    }

    #[test]
    fn tally_splits_sheds_by_class_and_reports_ratio() {
        let mut tally = Tally::default();
        let shed = Response::Err {
            kind: ErrorKind::Overloaded,
            message: "full".to_string(),
        };
        tally.observe(&Response::Ok(vec![]), TaskClass::Interactive);
        tally.observe(&shed, TaskClass::Interactive);
        tally.observe(&shed, TaskClass::NonInteractive);
        tally.observe(&shed, TaskClass::NonInteractive);
        assert_eq!(tally.shed, 3);
        assert_eq!(tally.shed_by_class, [1, 2, 0]);
        let report = LoadReport {
            sent: tally.sent,
            admitted: tally.admitted,
            shed: tally.shed,
            errors: tally.errors,
            shed_by_class: tally.shed_by_class,
            wall_seconds: 1.0,
            throughput_rps: 1.0,
            rtt: Arc::new(Histogram::default()),
            rtt_by_class: std::array::from_fn(|_| Arc::new(Histogram::default())),
            stages: Vec::new(),
            drain: None,
            idle: None,
        };
        assert!((report.shed_ratio() - 0.75).abs() < 1e-12);
        let text = report.render();
        assert!(
            text.contains("shed by class: interactive 1 | non_interactive 2 | batch 0"),
            "{text}"
        );
    }

    #[test]
    fn render_shows_per_class_rtt_next_to_server_stage_attribution() {
        let rtt = RttSinks::new();
        rtt.record(TaskClass::Interactive, 0.002);
        rtt.record(TaskClass::Interactive, 0.004);
        rtt.record(TaskClass::Batch, 0.050);
        let report = LoadReport {
            sent: 3,
            admitted: 3,
            shed: 0,
            errors: 0,
            shed_by_class: [0; 3],
            wall_seconds: 1.0,
            throughput_rps: 3.0,
            rtt: rtt.all,
            rtt_by_class: rtt.by_class,
            stages: vec![StageQuantiles {
                name: "stage_queue_s".to_string(),
                count: 3,
                p50_s: 0.001,
                p95_s: 0.002,
                p99_s: 0.003,
            }],
            drain: None,
            idle: None,
        };
        let text = report.render();
        assert!(text.contains("rtt[interactive] p50"), "{text}");
        assert!(text.contains("rtt[batch] p50"), "{text}");
        // No non-interactive samples: its row is suppressed, not zero.
        assert!(!text.contains("rtt[non_interactive]"), "{text}");
        assert!(
            text.contains("server queue p50 1.000 ms | p95 2.000 ms | p99 3.000 ms (3 samples)"),
            "{text}"
        );
    }

    #[test]
    fn parse_health_stages_keeps_pipeline_order_and_drops_empty() {
        use crate::protocol::{field_f64, field_u64};
        let hist = |count: u64, p50: f64| {
            Value::Object(vec![
                field_u64("count", count),
                field_f64("p50", p50),
                field_f64("p95", p50 * 2.0),
                field_f64("p99", p50 * 3.0),
            ])
        };
        // Deliberately out of pipeline order, with one empty stage.
        let resp = Response::Ok(vec![(
            "stages".to_string(),
            Value::Object(vec![
                ("request_e2e_s".to_string(), hist(5, 0.010)),
                ("stage_queue_s".to_string(), hist(5, 0.004)),
                ("stage_frame_s".to_string(), hist(5, 0.001)),
                ("stage_admit_s".to_string(), hist(0, 0.0)),
            ]),
        )]);
        let stages = parse_health_stages(&resp);
        let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["stage_frame_s", "stage_queue_s", "request_e2e_s"]);
        assert_eq!(stages[0].count, 5);
        assert!((stages[1].p50_s - 0.004).abs() < 1e-12);
        assert!((stages[1].p99_s - 0.012).abs() < 1e-12);
        // No stages object at all (pre-health server): empty, no error.
        assert!(parse_health_stages(&Response::Ok(vec![])).is_empty());
    }

    #[test]
    fn skew_ids_pin_to_shard_zero_without_colliding_with_autos() {
        for shards in [1u64, 2, 4, 7] {
            let mut seen = std::collections::HashSet::new();
            for n in 0..100 {
                let id = skew_id(n, shards);
                assert_eq!(id % shards, 0, "skewed id must hash to shard 0");
                assert!(id >= SKEW_ID_BASE, "skewed id inside the auto range");
                assert!(seen.insert(id), "duplicate skewed id {id}");
            }
        }
    }

    #[test]
    fn random_task_lines_parse_back() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let (line, _class) = random_task_line(&mut rng, 0.5, 1e8);
            assert!(crate::protocol::parse_request(&line).is_ok(), "{line}");
        }
    }
}
