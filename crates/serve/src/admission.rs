//! Bounded admission with class-aware shedding.
//!
//! The service accepts work through one bounded queue. When the queue
//! fills, new submissions are *shed* with an explicit overload response
//! rather than buffered without bound — the client sees backpressure
//! immediately instead of a timeout later. A slice of the capacity is
//! reserved for interactive tasks (the paper's latency-critical class):
//! non-interactive work is shed first, so a burst of batch submissions
//! cannot starve the class the scheduler exists to protect.

use crate::stage::StageStamp;
use dvfs_model::{Task, TaskClass};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The queue is at capacity for this task class.
    QueueFull {
        /// Depth at refusal time.
        depth: usize,
        /// Effective capacity for the refused class.
        cap: usize,
    },
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull { depth, cap } => {
                write!(f, "admission queue full ({depth} of {cap})")
            }
        }
    }
}

/// The pure admission decision, separated from the queue so the policy
/// is unit-testable.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Total queue slots.
    pub capacity: usize,
    /// Slots only interactive tasks may occupy. Must be `< capacity`
    /// for non-interactive work to be admissible at all.
    pub interactive_reserve: usize,
}

impl AdmissionPolicy {
    /// A policy with `capacity` slots, reserving a tenth (at least one
    /// when capacity permits) for interactive tasks.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let interactive_reserve = if capacity > 1 {
            (capacity / 10).max(1)
        } else {
            0
        };
        AdmissionPolicy {
            capacity,
            interactive_reserve,
        }
    }

    /// Effective capacity for a class: interactive tasks may use every
    /// slot; other classes stop short of the reserve.
    #[must_use]
    pub fn effective_cap(&self, class: TaskClass) -> usize {
        match class {
            TaskClass::Interactive => self.capacity,
            TaskClass::NonInteractive | TaskClass::Batch => {
                self.capacity.saturating_sub(self.interactive_reserve)
            }
        }
    }

    /// Decide whether a task of `class` may join a queue at `depth`.
    ///
    /// # Errors
    /// Returns the shed reason when the class's effective capacity is
    /// exhausted.
    pub fn admit(&self, depth: usize, class: TaskClass) -> Result<(), ShedReason> {
        let cap = self.effective_cap(class);
        if depth >= cap {
            return Err(ShedReason::QueueFull { depth, cap });
        }
        Ok(())
    }
}

/// Outcome of a gated submit ([`AdmissionQueue::try_submit_gated`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOutcome {
    /// Admitted; carries the queue depth including the new task.
    Admitted(usize),
    /// Shed by the admission policy.
    Shed(ShedReason),
    /// The gate closure refused the submission (e.g. shutdown began).
    Closed,
}

/// The bounded FIFO the connection handlers feed and the scheduler
/// drains. Each entry carries the request's stage stamps so the worker
/// can close the queue-wait and end-to-end latency seams; the stamps
/// ride alongside the task and never influence admission or ordering.
#[derive(Debug)]
pub struct AdmissionQueue {
    policy: AdmissionPolicy,
    inner: Mutex<VecDeque<(Task, StageStamp)>>,
    nonempty: Condvar,
}

impl AdmissionQueue {
    /// An empty queue under `policy`.
    #[must_use]
    pub fn new(policy: AdmissionPolicy) -> Self {
        AdmissionQueue {
            policy,
            inner: Mutex::new(VecDeque::new()),
            nonempty: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<(Task, StageStamp)>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Admit `task` or shed it. On success returns the queue depth
    /// *including* the new task, which the submit response reports so
    /// clients can self-throttle before hard shedding starts.
    ///
    /// # Errors
    /// Returns the shed reason when the queue is full for this class.
    pub fn try_submit(&self, task: Task) -> Result<usize, ShedReason> {
        match self.try_submit_gated(task, || true) {
            GateOutcome::Admitted(depth) => Ok(depth),
            GateOutcome::Shed(reason) => Err(reason),
            // dvfs-lint: allow(panic) the gate closure is the constant `|| true`, so `Closed` is statically impossible here
            GateOutcome::Closed => unreachable!("gate `|| true` never closes"),
        }
    }

    /// Admit `task`, but only if `open()` — evaluated *while the queue
    /// lock is held* — returns true. This is the submission side of the
    /// graceful-shutdown handshake: shutdown stores its flag and then
    /// re-checks the queue depth under this same lock, so a submission
    /// either lands before that re-check (and is drained) or observes
    /// the flag inside the gate and is refused. Checking the flag
    /// outside the lock leaves a window where a task is acknowledged
    /// after the final drain and silently lost.
    pub fn try_submit_gated(&self, task: Task, open: impl FnOnce() -> bool) -> GateOutcome {
        let recv = crate::clock::wall_now();
        self.try_submit_stamped(task, recv, open)
    }

    /// [`try_submit_gated`](Self::try_submit_gated) with an explicit
    /// wire-receive instant. The admission instant is stamped under the
    /// queue lock, so queue-wait measured by the worker starts exactly
    /// when the task became drainable.
    pub(crate) fn try_submit_stamped(
        &self,
        task: Task,
        recv: std::time::Instant,
        open: impl FnOnce() -> bool,
    ) -> GateOutcome {
        let mut q = self.lock();
        if !open() {
            return GateOutcome::Closed;
        }
        if let Err(reason) = self.policy.admit(q.len(), task.class) {
            return GateOutcome::Shed(reason);
        }
        let stamp = StageStamp {
            recv,
            admitted: crate::clock::wall_now(),
        };
        q.push_back((task, stamp));
        let depth = q.len();
        drop(q);
        self.nonempty.notify_one();
        GateOutcome::Admitted(depth)
    }

    /// Take every queued task (scheduler side).
    pub fn drain(&self) -> Vec<Task> {
        self.lock().drain(..).map(|(task, _)| task).collect()
    }

    /// Take every queued task with its stage stamps (worker side).
    pub(crate) fn drain_stamped(&self) -> Vec<(Task, StageStamp)> {
        self.lock().drain(..).collect()
    }

    /// Current depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.lock().len()
    }

    /// Block until the queue is non-empty or `timeout` passes; returns
    /// the depth observed. Lets a paced scheduler sleep between ticks
    /// without missing a burst.
    pub fn wait_nonempty(&self, timeout: std::time::Duration) -> usize {
        let q = self.lock();
        if !q.is_empty() {
            return q.len();
        }
        let (q, _) = self
            .nonempty
            .wait_timeout(q, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        q.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, class: TaskClass) -> Task {
        Task::online(id, 1_000, 0.0, None, class).unwrap()
    }

    #[test]
    fn policy_sheds_at_class_capacity() {
        let p = AdmissionPolicy {
            capacity: 10,
            interactive_reserve: 2,
        };
        // Non-interactive work stops at capacity - reserve.
        assert!(p.admit(7, TaskClass::NonInteractive).is_ok());
        assert_eq!(
            p.admit(8, TaskClass::NonInteractive),
            Err(ShedReason::QueueFull { depth: 8, cap: 8 })
        );
        assert_eq!(
            p.admit(8, TaskClass::Batch),
            Err(ShedReason::QueueFull { depth: 8, cap: 8 })
        );
        // Interactive tasks may use the reserve.
        assert!(p.admit(8, TaskClass::Interactive).is_ok());
        assert!(p.admit(9, TaskClass::Interactive).is_ok());
        assert_eq!(
            p.admit(10, TaskClass::Interactive),
            Err(ShedReason::QueueFull { depth: 10, cap: 10 })
        );
    }

    #[test]
    fn default_reserve_scales_with_capacity() {
        assert_eq!(AdmissionPolicy::with_capacity(100).interactive_reserve, 10);
        assert_eq!(AdmissionPolicy::with_capacity(5).interactive_reserve, 1);
        // A single-slot queue cannot afford a reserve.
        assert_eq!(AdmissionPolicy::with_capacity(1).interactive_reserve, 0);
        assert!(AdmissionPolicy::with_capacity(1)
            .admit(0, TaskClass::NonInteractive)
            .is_ok());
    }

    #[test]
    fn queue_enforces_policy_and_drains_fifo() {
        let q = AdmissionQueue::new(AdmissionPolicy {
            capacity: 3,
            interactive_reserve: 1,
        });
        assert_eq!(q.try_submit(task(1, TaskClass::NonInteractive)), Ok(1));
        assert_eq!(q.try_submit(task(2, TaskClass::NonInteractive)), Ok(2));
        // Reserve slot: non-interactive shed, interactive admitted.
        assert!(q.try_submit(task(3, TaskClass::NonInteractive)).is_err());
        assert_eq!(q.try_submit(task(4, TaskClass::Interactive)), Ok(3));
        assert!(q.try_submit(task(5, TaskClass::Interactive)).is_err());
        let drained = q.drain();
        assert_eq!(
            drained.iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn gated_submit_refuses_when_closed_and_admits_when_open() {
        let q = AdmissionQueue::new(AdmissionPolicy::with_capacity(4));
        assert_eq!(
            q.try_submit_gated(task(1, TaskClass::Interactive), || false),
            GateOutcome::Closed
        );
        assert_eq!(q.depth(), 0, "a closed gate admits nothing");
        assert_eq!(
            q.try_submit_gated(task(1, TaskClass::Interactive), || true),
            GateOutcome::Admitted(1)
        );
        // The gate is evaluated before the shed decision: a closed
        // gate wins even at capacity.
        let q = AdmissionQueue::new(AdmissionPolicy {
            capacity: 1,
            interactive_reserve: 0,
        });
        q.try_submit(task(1, TaskClass::NonInteractive)).unwrap();
        assert_eq!(
            q.try_submit_gated(task(2, TaskClass::NonInteractive), || false),
            GateOutcome::Closed
        );
        assert!(matches!(
            q.try_submit_gated(task(2, TaskClass::NonInteractive), || true),
            GateOutcome::Shed(_)
        ));
    }

    #[test]
    fn wait_nonempty_returns_immediately_when_fed() {
        let q = AdmissionQueue::new(AdmissionPolicy::with_capacity(4));
        q.try_submit(task(1, TaskClass::Interactive)).unwrap();
        let depth = q.wait_nonempty(std::time::Duration::from_millis(1));
        assert_eq!(depth, 1);
    }
}
