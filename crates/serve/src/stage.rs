//! Stage-level latency attribution: the per-request stage clock.
//!
//! A request's life is split into stages at well-defined seams —
//!
//! ```text
//! wire receive → frame/parse → admit → queue-wait → engine enqueue
//!              → dispatch → complete
//! ```
//!
//! — and each stage feeds a log-bucketed histogram in the [`Registry`],
//! both globally and per shard (`stage_*_s.shardK`). The first three
//! stages are measured on the wall clock (`crate::clock::wall_now`, the
//! single blessed clock seam); the engine-side stages come for free
//! from the `TaskRecord` timestamps the executor already stamps in
//! engine seconds, scaled back to wall-equivalent seconds by the paced
//! speed factor. In paced mode the two clocks therefore advance
//! together and the stages telescope: their sums match the end-to-end
//! `request_e2e_s` histogram within clock-seam tolerance (the seam
//! overlap is bounded by one tick period per request). Replay mode
//! compresses engine time, so only the wall stages are meaningful
//! there.
//!
//! Wall timing lands in metrics histograms only — never in trace
//! events — so the determinism contract (bit-identical drained replay)
//! is untouched, mirroring how `TimedPolicy` handles `lmc_decision_us`.

use crate::metrics::{shard_metric, Histogram, Registry};
use std::sync::Arc;
use std::time::Instant;

/// Wire receive → frame/parse seam (framing + request parsing).
pub const STAGE_FRAME: &str = "stage_frame_s";
/// Frame → admission seam (id ledger, validation, routing, queue push).
pub const STAGE_ADMIT: &str = "stage_admit_s";
/// Admission → worker pull seam (time spent in the admission queue).
pub const STAGE_QUEUE: &str = "stage_queue_s";
/// Engine enqueue → dispatch (engine seconds: `first_start - arrival`).
pub const STAGE_ENGINE: &str = "stage_engine_s";
/// Dispatch → completion (engine seconds: `completion - first_start`).
pub const STAGE_SERVICE: &str = "stage_service_s";
/// Command send → worker dequeue age. Loop telemetry, not part of the
/// per-request telescope (queue-wait already covers the same span).
pub const STAGE_CMD_DEQUEUE: &str = "stage_cmd_dequeue_s";
/// Wire receive → completion observed: the end-to-end latency the
/// stage histograms must sum to.
pub const REQUEST_E2E: &str = "request_e2e_s";

/// The wall stamps a submit batch carries into the service layer.
#[derive(Debug, Clone, Copy)]
pub struct StageClock {
    /// When the bytes were read off the wire.
    pub recv: Instant,
    /// When framing + parsing of the batch finished.
    pub framed: Instant,
}

impl StageClock {
    /// A degenerate clock for in-process submitters (no wire, so the
    /// frame stage is empty): both seams stamp the current instant.
    #[must_use]
    pub fn now() -> Self {
        let t = crate::clock::wall_now();
        StageClock { recv: t, framed: t }
    }

    /// A clock whose frame seam closes now (wire receive at `recv`).
    #[must_use]
    pub fn framed_now(recv: Instant) -> Self {
        StageClock {
            recv,
            framed: crate::clock::wall_now(),
        }
    }
}

/// Per-task stamps carried through the admission queue so the worker
/// can close the queue-wait and end-to-end seams.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StageStamp {
    /// Wire receive instant (opens the end-to-end window).
    pub recv: Instant,
    /// Admission instant (opens the queue-wait window).
    pub admitted: Instant,
}

/// A global + per-shard histogram pair; every stage sample lands in
/// both so `prometheus_text` exposes the total and the `{shard="K"}`
/// breakdown from one record call.
#[derive(Debug)]
pub(crate) struct StagePair {
    global: Arc<Histogram>,
    shard: Arc<Histogram>,
}

impl StagePair {
    fn new(metrics: &Registry, name: &str, shard: usize) -> Self {
        StagePair {
            global: metrics.histogram(name),
            shard: metrics.histogram(&shard_metric(name, shard)),
        }
    }

    /// Record a stage duration in seconds.
    pub fn record(&self, seconds: f64) {
        self.global.record(seconds);
        self.shard.record(seconds);
    }

    /// Record a round's worth of stage durations, one lock acquisition
    /// per histogram instead of one per sample.
    pub fn record_many(&self, seconds: &[f64]) {
        self.global.record_many(seconds);
        self.shard.record_many(seconds);
    }
}

/// The full stage histogram bundle for one shard. Handles are resolved
/// once at construction so the hot submit/complete paths never touch
/// the registry's name map.
#[derive(Debug)]
pub(crate) struct StageHists {
    pub frame: StagePair,
    pub admit: StagePair,
    pub queue: StagePair,
    pub engine: StagePair,
    pub service: StagePair,
    pub cmd_dequeue: StagePair,
    pub e2e: StagePair,
}

impl StageHists {
    pub fn new(metrics: &Registry, shard: usize) -> Self {
        StageHists {
            frame: StagePair::new(metrics, STAGE_FRAME, shard),
            admit: StagePair::new(metrics, STAGE_ADMIT, shard),
            queue: StagePair::new(metrics, STAGE_QUEUE, shard),
            engine: StagePair::new(metrics, STAGE_ENGINE, shard),
            service: StagePair::new(metrics, STAGE_SERVICE, shard),
            cmd_dequeue: StagePair::new(metrics, STAGE_CMD_DEQUEUE, shard),
            e2e: StagePair::new(metrics, REQUEST_E2E, shard),
        }
    }
}

/// The stages whose per-request durations telescope to end-to-end
/// latency (`REQUEST_E2E`), in pipeline order. `STAGE_CMD_DEQUEUE` is
/// deliberately absent: it is loop telemetry overlapping queue-wait.
pub const TELESCOPE_STAGES: [&str; 5] = [
    STAGE_FRAME,
    STAGE_ADMIT,
    STAGE_QUEUE,
    STAGE_ENGINE,
    STAGE_SERVICE,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_pairs_record_global_and_shard() {
        let r = Registry::new();
        let hists = StageHists::new(&r, 2);
        hists.queue.record(0.25);
        hists.queue.record(0.5);
        assert_eq!(r.histogram(STAGE_QUEUE).count(), 2);
        assert_eq!(r.histogram(&shard_metric(STAGE_QUEUE, 2)).count(), 2);
        assert_eq!(r.histogram(&shard_metric(STAGE_QUEUE, 0)).count(), 0);
        assert!((r.histogram(STAGE_QUEUE).sum() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stage_clock_seams_are_ordered() {
        let c = StageClock::now();
        assert!(c.framed >= c.recv);
        let later = StageClock::framed_now(c.recv);
        assert!(later.framed >= later.recv);
    }
}
