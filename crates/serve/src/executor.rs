//! The service's wall-clock executor.
//!
//! [`RealTimeExecutor`] is the second implementation of the
//! engine-agnostic `dvfs_core::sched::ExecutorView` (the first is the
//! virtual-time simulator in `dvfs-sim`). It drives a scheduling policy
//! directly: tasks are pushed as they are admitted, the service maps
//! wall time onto the executor clock and calls [`RealTimeExecutor::step_until`],
//! and every frequency decision is applied to the `dvfs-sysfs` actuator
//! at the moment the policy makes it — the actuation path a real
//! deployment would use, not an after-the-fact log replay.
//!
//! ## Determinism contract
//!
//! Replaying a buffered trace through [`RealTimeExecutor::run_to_completion`]
//! must be **bit-identical** (per-task energy, completion times, event
//! order) to running the same trace through `dvfs_sim::Simulator`. The
//! arithmetic below therefore mirrors the simulator's exactly. The
//! service platform uses userspace-governed cores with no contention
//! model and no switch latency, so the simulator's contention factor is
//! the exact identity `× 1.0` and its DVFS stall the exact identity
//! `+ 0.0`; the simplified expressions here produce the same bits.
//! Event ordering matches the simulator's queue: `(time, class, FIFO
//! seq)` with completions ahead of arrivals at equal timestamps. The
//! end-to-end tests pin this contract.

use dvfs_core::sched::{ExecutorView, Scheduler};
use dvfs_model::{
    CoreId, CostBreakdown, CostParams, Platform, RateIdx, RateTable, Task, TaskId, TaskRecord,
};
use dvfs_sysfs::{DvfsActuator, SimulatedSysfs};
use dvfs_trace::{SharedRing, TraceSink};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// Safety valve against policy livelock (same bound as the simulator).
const EVENT_BUDGET: u64 = 2_000_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// The task on `core` finished, provided the core's epoch still
    /// equals `epoch` when popped (stale completions are discarded).
    Completion {
        core: CoreId,
        epoch: u64,
    },
    Arrival {
        task: TaskId,
    },
}

impl EventKind {
    /// Same-timestamp priority, mirroring the simulator's classes
    /// (class 1 is the governor tick, which userspace-governed cores
    /// never schedule).
    fn class_order(&self) -> u8 {
        match self {
            EventKind::Completion { .. } => 0,
            EventKind::Arrival { .. } => 2,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first. Times are finite by construction.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must be finite")
            .then_with(|| other.kind.class_order().cmp(&self.kind.class_order()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite(), "cannot schedule an event at t={time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    fn peek(&self) -> Option<&Event> {
        self.heap.peek()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Future,
    Ready,
    Running,
    Done,
}

struct Job {
    task: Task,
    remaining: f64,
    phase: JobPhase,
    record: TaskRecord,
}

struct Core {
    rate: RateIdx,
    max_allowed: RateIdx,
    epoch: u64,
    running: Option<TaskId>,
    last_sync: f64,
    busy_time: f64,
}

/// Everything one completed round of service produced, in the same
/// accounting the simulator's report uses (so wire responses and the
/// determinism tests can compare the two directly).
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Records of completed tasks, in completion order.
    pub records: Vec<TaskRecord>,
    /// Total active energy in joules (integral of busy power).
    pub active_energy_joules: f64,
    /// Sum of turnaround times, accumulated in task-id order (the same
    /// summation order as `SimReport::total_turnaround`, so the floats
    /// match bit for bit).
    pub total_turnaround_s: f64,
    /// Time the last task completed.
    pub makespan_s: f64,
}

impl RoundReport {
    /// The paper's monetary objective over this round.
    #[must_use]
    pub fn total_cost(&self, params: CostParams) -> f64 {
        CostBreakdown::from_totals(params, self.active_energy_joules, self.total_turnaround_s)
            .total()
    }

    /// Merge per-shard reports, accumulated in the given (deterministic
    /// shard) order: records concatenate, energy and turnaround sum,
    /// makespan takes the maximum. Merging a single report is the exact
    /// identity (`0.0 + x == x`, `max(0.0, x) == x` for the
    /// non-negative totals a round produces), so a one-shard service
    /// keeps the bit-identical replay contract.
    #[must_use]
    pub fn merge(reports: &[RoundReport]) -> RoundReport {
        let mut merged = RoundReport {
            records: Vec::with_capacity(reports.iter().map(|r| r.records.len()).sum()),
            active_energy_joules: 0.0,
            total_turnaround_s: 0.0,
            makespan_s: 0.0,
        };
        for r in reports {
            merged.records.extend(r.records.iter().copied());
            merged.active_energy_joules += r.active_energy_joules;
            merged.total_turnaround_s += r.total_turnaround_s;
            merged.makespan_s = merged.makespan_s.max(r.makespan_s);
        }
        merged
    }
}

/// Where the executor lands its per-core frequency decisions.
///
/// The default backend ([`SimulatedActuator`]) runs the paper's full
/// sysfs protocol against a simulated tree — userspace governor,
/// `scaling_setspeed` write, readback verification — and is what the
/// bit-identical replay contract is pinned against. [`NoopActuator`]
/// acknowledges without modeling anything, for raw-throughput runs
/// where the sysfs bookkeeping is pure overhead.
pub trait RateActuator: Send {
    /// Apply `rate` to core `cpu`; `true` means applied and verified.
    fn apply(&mut self, cpu: usize, rate: RateIdx) -> bool;
    /// Backend name, for reports and debugging.
    fn name(&self) -> &'static str;
}

/// The paper's sysfs protocol over a simulated per-core tree.
#[derive(Debug)]
pub struct SimulatedActuator {
    inner: DvfsActuator<SimulatedSysfs>,
}

impl SimulatedActuator {
    /// One simulated sysfs tree per core, using core 0's rate table
    /// (the service platform is homogeneous).
    #[must_use]
    pub fn new(platform: &Platform) -> Self {
        let table = platform.core(0).expect("platform has cores").rates.clone();
        let backend = SimulatedSysfs::new(platform.num_cores(), &table);
        let inner = DvfsActuator::new(backend, table)
            .expect("simulated sysfs accepts the userspace governor");
        SimulatedActuator { inner }
    }
}

impl RateActuator for SimulatedActuator {
    fn apply(&mut self, cpu: usize, rate: RateIdx) -> bool {
        self.inner.apply(cpu, rate).is_ok()
    }
    fn name(&self) -> &'static str {
        "simulated"
    }
}

/// Accepts every decision without modeling a sysfs tree.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopActuator;

impl RateActuator for NoopActuator {
    fn apply(&mut self, _cpu: usize, _rate: RateIdx) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "noop"
    }
}

/// Config-selectable actuator backend (`--actuator simulated|noop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActuatorKind {
    /// Full simulated-sysfs protocol with readback verification.
    #[default]
    Simulated,
    /// Count applications, touch nothing.
    Noop,
}

impl ActuatorKind {
    /// Build the backend for `platform`.
    #[must_use]
    pub fn build(self, platform: &Platform) -> Box<dyn RateActuator> {
        match self {
            ActuatorKind::Simulated => Box::new(SimulatedActuator::new(platform)),
            ActuatorKind::Noop => Box::new(NoopActuator),
        }
    }
}

/// A wall-clock executor: cores, a monotone clock the service advances,
/// an event heap for arrivals and projected completions, and the rate
/// actuator every frequency decision is applied to.
pub struct RealTimeExecutor {
    platform: Platform,
    cores: Vec<Core>,
    jobs: BTreeMap<TaskId, Job>,
    queue: EventQueue,
    now: f64,
    done: usize,
    total: usize,
    active_energy: f64,
    last_completion: f64,
    processed: u64,
    /// Completions since the last [`RealTimeExecutor::take_completions`] drain.
    fresh_completions: Vec<TaskId>,
    /// Every completion this round, in order (for the round report).
    completion_order: Vec<TaskId>,
    actuator: Box<dyn RateActuator>,
    actuations: u64,
    actuation_errors: u64,
    /// Optional lifecycle trace ring, shared with the shard that owns
    /// this executor (the shard drains it at round boundaries). Events
    /// carry executor seconds only, preserving the replay contract.
    sink: Option<SharedRing>,
}

impl RealTimeExecutor {
    /// Build an executor over `platform` with userspace-governed cores
    /// (the policy owns every frequency) and the default
    /// [`SimulatedActuator`] backend.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        Self::with_actuator(platform, ActuatorKind::Simulated)
    }

    /// Like [`RealTimeExecutor::new`], with an explicit actuator
    /// backend.
    #[must_use]
    pub fn with_actuator(platform: Platform, kind: ActuatorKind) -> Self {
        let cores = (0..platform.num_cores())
            .map(|j| {
                let table = &platform.core(j).expect("in range").rates;
                Core {
                    // Userspace governor: an idle machine settles at the
                    // lowest level, matching the simulator's start state.
                    rate: 0,
                    max_allowed: table.max_rate(),
                    epoch: 0,
                    running: None,
                    last_sync: 0.0,
                    busy_time: 0.0,
                }
            })
            .collect();
        let actuator = kind.build(&platform);
        RealTimeExecutor {
            platform,
            cores,
            jobs: BTreeMap::new(),
            queue: EventQueue::default(),
            now: 0.0,
            done: 0,
            total: 0,
            active_energy: 0.0,
            last_completion: 0.0,
            processed: 0,
            fresh_completions: Vec::new(),
            completion_order: Vec::new(),
            actuator,
            actuations: 0,
            actuation_errors: 0,
            sink: None,
        }
    }

    /// Attach (or detach, with `None`) the shard's shared trace ring.
    pub fn set_trace_ring(&mut self, sink: Option<SharedRing>) {
        self.sink = sink;
    }

    fn trace_record(&mut self, kind: dvfs_trace::EventKind) {
        let now = self.now;
        if let Some(sink) = self.sink.as_mut() {
            TraceSink::record(sink, now, kind);
        }
    }

    fn table(&self, j: CoreId) -> &RateTable {
        &self.platform.core(j).expect("core in range").rates
    }

    fn actuate(&mut self, j: CoreId, rate: RateIdx) {
        if self.actuator.apply(j, rate) {
            self.actuations += 1;
        } else {
            self.actuation_errors += 1;
        }
    }

    /// Advance all cores' progress/energy accounting to `self.now`.
    /// Mirrors the simulator's `sync_all` with contention factor 1.0
    /// and no DVFS stall (both exact identities — see module docs).
    fn sync_all(&mut self) {
        for j in 0..self.cores.len() {
            let dt = self.now - self.cores[j].last_sync;
            debug_assert!(dt >= -1e-9, "time went backwards on core {j}");
            if dt > 0.0 {
                if let Some(tid) = self.cores[j].running {
                    let rp = self.table(j).rate(self.cores[j].rate);
                    let cycles_done = (1.0 / rp.time_per_cycle) * dt;
                    let energy = rp.active_power_watts() * dt;
                    let job = self.jobs.get_mut(&tid).expect("running job exists");
                    job.remaining -= cycles_done;
                    job.record.energy_joules += energy;
                    self.active_energy += energy;
                    self.cores[j].busy_time += dt;
                }
            }
            self.cores[j].last_sync = self.now;
        }
    }

    /// Re-project core `j`'s completion event from its current rate and
    /// remaining work, invalidating any outstanding projection.
    fn reschedule(&mut self, j: CoreId) {
        self.cores[j].epoch += 1;
        if let Some(tid) = self.cores[j].running {
            let remaining = self.jobs[&tid].remaining.max(0.0);
            let rp = self.table(j).rate(self.cores[j].rate);
            let eff = 1.0 / rp.time_per_cycle;
            let t_fin = self.now + remaining / eff;
            self.queue.push(
                t_fin,
                EventKind::Completion {
                    core: j,
                    epoch: self.cores[j].epoch,
                },
            );
        }
    }

    fn process_event(&mut self, policy: &mut dyn Scheduler, ev: Event) {
        self.processed += 1;
        assert!(
            self.processed <= EVENT_BUDGET,
            "event budget exceeded: likely a policy livelock"
        );
        debug_assert!(ev.time >= self.now - 1e-9, "event time precedes now");
        self.now = self.now.max(ev.time);
        match ev.kind {
            EventKind::Arrival { task } => {
                self.sync_all();
                let job = self.jobs.get_mut(&task).expect("arrival for known task");
                debug_assert_eq!(job.phase, JobPhase::Future);
                job.phase = JobPhase::Ready;
                let t = job.task.clone();
                policy.on_arrival(self, &t);
            }
            EventKind::Completion { core, epoch } => {
                if self.cores[core].epoch != epoch {
                    return; // stale projection
                }
                self.sync_all();
                let tid = self.cores[core]
                    .running
                    .expect("valid completion implies a running task");
                {
                    let job = self.jobs.get_mut(&tid).expect("job exists");
                    debug_assert!(
                        job.remaining.abs() < 1.0,
                        "completion fired with {} cycles left",
                        job.remaining
                    );
                    job.remaining = 0.0;
                    job.phase = JobPhase::Done;
                    job.record.completion = Some(self.now);
                }
                self.cores[core].running = None;
                self.done += 1;
                self.last_completion = self.now;
                self.fresh_completions.push(tid);
                self.completion_order.push(tid);
                if self.sink.is_some() {
                    let rec = self.jobs[&tid].record;
                    self.trace_record(dvfs_trace::EventKind::Complete {
                        task: tid.0,
                        core: core as u32,
                        energy_j: rec.energy_joules,
                        turnaround_s: self.now - rec.arrival,
                    });
                }
                self.reschedule(core);
                let t = self.jobs[&tid].task.clone();
                policy.on_completion(self, core, &t);
            }
        }
    }

    fn insert_job(&mut self, task: &Task, record_arrival: f64, event_at: f64) {
        let prev = self.jobs.insert(
            task.id,
            Job {
                task: task.clone(),
                remaining: task.cycles as f64,
                phase: JobPhase::Future,
                record: TaskRecord {
                    id: task.id,
                    class: task.class,
                    cycles: task.cycles,
                    arrival: record_arrival,
                    first_start: None,
                    completion: None,
                    energy_joules: 0.0,
                    preemptions: 0,
                },
            },
        );
        assert!(prev.is_none(), "duplicate task id {}", task.id);
        self.queue
            .push(event_at, EventKind::Arrival { task: task.id });
        self.total += 1;
    }

    /// Register one task: the arrival fires at `task.arrival` or now,
    /// whichever is later.
    ///
    /// # Panics
    /// Panics on a duplicate task id.
    pub fn push_task(&mut self, task: &Task) {
        let arrival = task.arrival.max(self.now);
        self.insert_job(task, arrival, arrival);
    }

    /// Register a task migrated from another shard. The arrival *event*
    /// fires no earlier than this executor's clock, but the record keeps
    /// the task's original arrival stamp: the time it spent queued on
    /// the source shard stays in its turnaround, so migration cannot
    /// flatter the cost report by resetting the waiting clock.
    ///
    /// # Panics
    /// Panics on a duplicate task id.
    pub fn push_migrated(&mut self, task: &Task) {
        self.insert_job(task, task.arrival, task.arrival.max(self.now));
    }

    /// Remove a task that arrived but was never dispatched (the steal
    /// half of cross-shard migration), returning the original [`Task`]
    /// so it can be re-registered elsewhere. Returns `None` — removing
    /// nothing — for running, completed, unknown, or still-future
    /// tasks: a future task's pending arrival event would dangle, and a
    /// running task's progress would be lost. The caller must also drop
    /// the task from its policy's queue; the executor only forgets the
    /// job.
    pub fn remove_ready(&mut self, task: TaskId) -> Option<Task> {
        match self.jobs.get(&task) {
            Some(job) if job.phase == JobPhase::Ready => {}
            _ => return None,
        }
        let job = self.jobs.remove(&task).expect("phase checked above");
        self.total -= 1;
        Some(job.task)
    }

    /// Advance the executor clock to `t`, processing every event due at
    /// or before it. Time then rests exactly at `t` (cores idle or
    /// mid-task), ready for more [`RealTimeExecutor::push_task`] calls.
    ///
    /// # Panics
    /// Panics when `t` is not finite or precedes the current time by
    /// more than rounding error, or when the event budget is exceeded.
    pub fn step_until(&mut self, policy: &mut dyn Scheduler, t: f64) {
        assert!(t.is_finite(), "step_until: time must be finite");
        assert!(
            t >= self.now - 1e-9,
            "step_until: t={t} precedes now={}",
            self.now
        );
        while self.queue.peek().is_some_and(|ev| ev.time <= t) {
            let ev = self.queue.pop().expect("peeked");
            self.process_event(policy, ev);
        }
        self.now = self.now.max(t);
        self.sync_all();
    }

    /// Run every registered task to completion as fast as events allow
    /// (the replay / drain / graceful-shutdown path).
    ///
    /// # Panics
    /// Panics when the event queue drains while tasks remain unfinished
    /// (the policy failed to dispatch them), or when the event budget is
    /// exceeded.
    pub fn run_to_completion(&mut self, policy: &mut dyn Scheduler) {
        while self.done < self.total {
            let ev = self.queue.pop().unwrap_or_else(|| {
                panic!(
                    "event queue drained with {} of {} tasks unfinished: the policy \
                     failed to dispatch them",
                    self.total - self.done,
                    self.total
                )
            });
            self.process_event(policy, ev);
        }
        self.sync_all();
    }

    /// Current executor time in seconds.
    #[must_use]
    pub fn exec_now(&self) -> f64 {
        self.now
    }

    /// Tasks registered but not yet completed.
    #[must_use]
    pub fn pending_tasks(&self) -> usize {
        self.total - self.done
    }

    /// Tasks registered but neither running nor completed — the
    /// engine-held backlog the router and rebalancer fold into their
    /// load scores (admission depth alone is blind to these).
    #[must_use]
    pub fn queued_tasks(&self) -> usize {
        let running = self.cores.iter().filter(|c| c.running.is_some()).count();
        self.total - self.done - running
    }

    /// Drain the records of tasks completed since the previous drain
    /// (completion order) — the paced streaming path.
    pub fn take_completions(&mut self) -> Vec<TaskRecord> {
        std::mem::take(&mut self.fresh_completions)
            .into_iter()
            .map(|tid| self.jobs[&tid].record)
            .collect()
    }

    /// Drain the actuation counters: `(applied, errored)` since the
    /// previous drain.
    pub fn take_actuations(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.actuations),
            std::mem::take(&mut self.actuation_errors),
        )
    }

    /// Summarize the round so far. Totals are accumulated in the same
    /// order the simulator's report uses, so a drained replay matches a
    /// library run bit for bit.
    #[must_use]
    pub fn round_report(&self) -> RoundReport {
        // `jobs` is a BTreeMap, so this sums in task-id order — exactly
        // like SimReport's BTreeMap.
        let total_turnaround_s = self
            .jobs
            .values()
            .filter_map(|job| job.record.turnaround())
            .sum::<f64>();
        RoundReport {
            records: self
                .completion_order
                .iter()
                .map(|tid| self.jobs[tid].record)
                .collect(),
            active_energy_joules: self.active_energy,
            total_turnaround_s,
            makespan_s: self.last_completion,
        }
    }
}

impl ExecutorView for RealTimeExecutor {
    fn now(&self) -> f64 {
        self.now
    }

    fn num_cores(&self) -> usize {
        self.cores.len()
    }

    fn rate_table(&self, j: CoreId) -> &RateTable {
        self.table(j)
    }

    fn max_allowed_rate(&self, j: CoreId) -> RateIdx {
        self.cores[j].max_allowed
    }

    fn current_rate(&self, j: CoreId) -> RateIdx {
        self.cores[j].rate
    }

    fn running_task(&self, j: CoreId) -> Option<TaskId> {
        self.cores[j].running
    }

    fn remaining_cycles(&self, t: TaskId) -> f64 {
        self.jobs[&t].remaining.max(0.0)
    }

    fn set_rate(&mut self, j: CoreId, rate: RateIdx) {
        assert!(
            rate <= self.cores[j].max_allowed,
            "rate {rate} above allowed cap {} on core {j}",
            self.cores[j].max_allowed
        );
        if self.cores[j].rate == rate {
            return;
        }
        self.sync_all();
        let from = self.cores[j].rate;
        self.cores[j].rate = rate;
        self.actuate(j, rate);
        self.trace_record(dvfs_trace::EventKind::RateChange {
            core: j as u32,
            from: from as u32,
            to: rate as u32,
        });
        self.reschedule(j);
    }

    fn dispatch(&mut self, j: CoreId, task: TaskId, rate: Option<RateIdx>) {
        assert!(
            self.cores[j].running.is_none(),
            "dispatch onto busy core {j}"
        );
        self.sync_all();
        if let Some(r) = rate {
            assert!(
                r <= self.cores[j].max_allowed,
                "rate {r} above allowed cap on core {j}"
            );
            self.cores[j].rate = r;
        }
        let now = self.now;
        let job = self.jobs.get_mut(&task).expect("dispatch unknown task");
        assert_eq!(
            job.phase,
            JobPhase::Ready,
            "task {task} not ready for dispatch"
        );
        job.phase = JobPhase::Running;
        if job.record.first_start.is_none() {
            job.record.first_start = Some(now);
        }
        self.cores[j].running = Some(task);
        let rate_now = self.cores[j].rate;
        self.actuate(j, rate_now);
        if self.sink.is_some() {
            // Mirror `reschedule`'s exact arithmetic so predicted energy
            // is bit-comparable with the measured accrual when the task
            // runs in one uninterrupted slice.
            let remaining = self.jobs[&task].remaining.max(0.0);
            let rp = self.table(j).rate(rate_now);
            let eff = 1.0 / rp.time_per_cycle;
            let predicted_time_s = remaining / eff;
            let predicted_energy_j = rp.active_power_watts() * predicted_time_s;
            self.trace_record(dvfs_trace::EventKind::Dispatch {
                task: task.0,
                core: j as u32,
                rate: rate_now as u32,
                predicted_energy_j,
                predicted_time_s,
            });
        }
        self.reschedule(j);
    }

    fn preempt(&mut self, j: CoreId) -> TaskId {
        let tid = self.cores[j].running.expect("preempt on an idle core");
        self.sync_all();
        let job = self.jobs.get_mut(&tid).expect("job exists");
        job.phase = JobPhase::Ready;
        job.record.preemptions += 1;
        self.cores[j].running = None;
        self.trace_record(dvfs_trace::EventKind::Preempt {
            task: tid.0,
            core: j as u32,
        });
        self.reschedule(j);
        tid
    }

    fn trace(&mut self) -> Option<&mut dyn TraceSink> {
        self.sink.as_mut().map(|s| s as &mut dyn TraceSink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::service_platform;
    use dvfs_core::LeastMarginalCost;
    use dvfs_model::TaskClass;

    fn lmc(cores: usize) -> LeastMarginalCost {
        LeastMarginalCost::new(&service_platform(cores), CostParams::online_paper())
    }

    #[test]
    fn replay_matches_the_simulator_bit_for_bit() {
        let tasks: Vec<Task> = (0..16)
            .map(|i| {
                let class = if i % 3 == 0 {
                    TaskClass::Interactive
                } else {
                    TaskClass::NonInteractive
                };
                Task::online(i, (i + 1) * 60_000_000, i as f64 * 0.015, None, class).unwrap()
            })
            .collect();

        let mut rt = RealTimeExecutor::new(service_platform(2));
        let mut policy = lmc(2);
        for t in &tasks {
            rt.push_task(t);
        }
        rt.run_to_completion(&mut policy);
        let got = rt.round_report();

        let mut sim = dvfs_sim::Simulator::new(dvfs_sim::SimConfig::new(service_platform(2)));
        let mut policy = lmc(2);
        sim.add_tasks(&tasks);
        let want = sim.run(&mut policy);

        assert_eq!(got.active_energy_joules, want.active_energy_joules);
        assert_eq!(got.total_turnaround_s, want.total_turnaround());
        assert_eq!(got.makespan_s, want.makespan);
        assert_eq!(got.records.len(), tasks.len());
        for rec in &got.records {
            let reference = want.tasks[&rec.id];
            assert_eq!(rec.completion, reference.completion, "task {}", rec.id);
            assert_eq!(rec.energy_joules, reference.energy_joules);
            assert_eq!(rec.first_start, reference.first_start);
            assert_eq!(rec.preemptions, reference.preemptions);
        }
    }

    #[test]
    fn step_until_streams_completions_and_actuations() {
        let mut rt = RealTimeExecutor::new(service_platform(1));
        let mut policy = lmc(1);
        rt.push_task(
            &Task::online(0, 1_600_000_000, 0.0, None, TaskClass::NonInteractive).unwrap(),
        );
        rt.step_until(&mut policy, 0.5);
        assert_eq!(rt.pending_tasks(), 1, "mid-flight at t=0.5");
        assert!(rt.take_completions().is_empty());
        rt.step_until(&mut policy, 5.0);
        assert_eq!(rt.pending_tasks(), 0);
        let records = rt.take_completions();
        assert_eq!(records.len(), 1);
        assert!(records[0].completion.unwrap() <= 1.0 + 1e-9);
        let (applied, errored) = rt.take_actuations();
        assert!(applied >= 1, "dispatch must hit the actuator");
        assert_eq!(errored, 0);
        // Drained: a second take reports nothing.
        assert_eq!(rt.take_actuations(), (0, 0));
    }

    #[test]
    fn merging_one_report_is_the_identity_and_two_reports_sum() {
        let run = |ids: &[u64]| {
            let mut rt = RealTimeExecutor::new(service_platform(1));
            let mut policy = lmc(1);
            for &i in ids {
                rt.push_task(
                    &Task::online(
                        i,
                        (i + 1) * 40_000_000,
                        0.0,
                        None,
                        TaskClass::NonInteractive,
                    )
                    .unwrap(),
                );
            }
            rt.run_to_completion(&mut policy);
            rt.round_report()
        };
        let a = run(&[0, 1]);
        let b = run(&[2, 3, 4]);

        let identity = RoundReport::merge(std::slice::from_ref(&a));
        assert_eq!(identity.active_energy_joules, a.active_energy_joules);
        assert_eq!(identity.total_turnaround_s, a.total_turnaround_s);
        assert_eq!(identity.makespan_s, a.makespan_s);
        assert_eq!(identity.records.len(), a.records.len());

        let both = RoundReport::merge(&[a.clone(), b.clone()]);
        assert_eq!(both.records.len(), 5);
        assert_eq!(
            both.active_energy_joules,
            a.active_energy_joules + b.active_energy_joules
        );
        assert_eq!(
            both.total_turnaround_s,
            a.total_turnaround_s + b.total_turnaround_s
        );
        assert_eq!(both.makespan_s, a.makespan_s.max(b.makespan_s));
    }

    #[test]
    #[should_panic(expected = "duplicate task id")]
    fn duplicate_ids_panic() {
        let mut rt = RealTimeExecutor::new(service_platform(1));
        let t = Task::online(7, 1_000, 0.0, None, TaskClass::Interactive).unwrap();
        rt.push_task(&t);
        rt.push_task(&t);
    }

    #[test]
    fn steal_and_migrate_preserve_the_original_arrival() {
        let mut rt = RealTimeExecutor::new(service_platform(1));
        let mut policy = lmc(1);
        // Two tasks at t=0 on one core: the first dispatches, the
        // second stays queued in the ledger.
        rt.push_task(&Task::online(0, 40_000_000, 0.0, None, TaskClass::NonInteractive).unwrap());
        rt.push_task(&Task::online(1, 800_000_000, 0.0, None, TaskClass::NonInteractive).unwrap());
        rt.step_until(&mut policy, 0.0);
        assert_eq!(rt.pending_tasks(), 2);
        assert_eq!(rt.queued_tasks(), 1, "one running, one queued");
        // Running and unknown tasks are not stealable.
        assert!(rt.remove_ready(TaskId(0)).is_none());
        assert!(rt.remove_ready(TaskId(9)).is_none());
        let stolen = rt.remove_ready(TaskId(1)).expect("queued task steals");
        assert_eq!(stolen.cycles, 800_000_000, "no progress was lost");
        assert_eq!(rt.pending_tasks(), 1);
        assert_eq!(rt.queued_tasks(), 0);
        assert!(rt.remove_ready(TaskId(1)).is_none(), "already stolen");
        // Inject into a cold executor whose clock is ahead: the arrival
        // event clamps forward, the record's arrival does not.
        let mut cold = RealTimeExecutor::new(service_platform(1));
        let mut cold_policy = lmc(1);
        cold.step_until(&mut cold_policy, 2.0);
        cold.push_migrated(&stolen);
        cold.run_to_completion(&mut cold_policy);
        let report = cold.round_report();
        assert_eq!(report.records.len(), 1);
        let rec = report.records[0];
        assert_eq!(rec.arrival, 0.0, "original arrival survives migration");
        assert!(rec.first_start.unwrap() >= 2.0, "started on the cold clock");
    }

    #[test]
    fn late_arrivals_clamp_to_executor_now() {
        let mut rt = RealTimeExecutor::new(service_platform(1));
        let mut policy = lmc(1);
        rt.step_until(&mut policy, 2.0);
        rt.push_task(&Task::online(0, 1_000, 0.5, None, TaskClass::Interactive).unwrap());
        rt.step_until(&mut policy, 3.0);
        let records = rt.take_completions();
        assert_eq!(records.len(), 1);
        assert!((records[0].arrival - 2.0).abs() < 1e-12, "arrival clamped");
    }
}
